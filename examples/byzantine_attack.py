#!/usr/bin/env python
"""Lying devices trying to spread a fake firmware digest.

Scenario from the paper's introduction: a base station disseminates a short
authenticated value (think: the digest of a firmware image) through an ad hoc
network in which some devices have been compromised.  The compromised devices
run the protocol faithfully but are initialised with a *fake* message — the
hardest attack to spot, because they look perfectly well-behaved.

The example compares plain NeighborWatchRB, its 2-voting variant and the
unprotected epidemic flood under increasing fractions of compromised devices,
and prints how many devices end up accepting the fake value.

Run with:  python examples/byzantine_attack.py
"""

from __future__ import annotations

from repro import FaultPlan, ScenarioConfig, run_scenario, uniform_deployment
from repro.adversary import fraction_to_count, random_fault_selection
from repro.analysis import format_table

MAP_SIZE = 10.0
NUM_NODES = 160
RADIUS = 3.0
MESSAGE = (1, 0, 1, 1)
FRACTIONS = (0.0, 0.05, 0.15)
PROTOCOLS = (
    ("epidemic flood (no protection)", "epidemic"),
    ("NeighborWatchRB", "neighborwatch"),
    ("NeighborWatchRB 2-vote", "neighborwatch2"),
)


def main() -> None:
    deployment = uniform_deployment(NUM_NODES, MAP_SIZE, MAP_SIZE, rng=7)
    rows = []
    for label, protocol in PROTOCOLS:
        for fraction in FRACTIONS:
            count = fraction_to_count(NUM_NODES, fraction)
            liars = tuple(
                random_fault_selection(NUM_NODES, count, exclude=[deployment.source_index], rng=99)
            )
            config = ScenarioConfig(
                protocol=protocol,
                radius=RADIUS,
                message_length=len(MESSAGE),
                message=MESSAGE,
                seed=7,
            )
            result = run_scenario(deployment, config, FaultPlan(liars=liars))
            rows.append(
                {
                    "protocol": label,
                    "compromised": f"{fraction:.0%}",
                    "delivered_%": round(100 * result.completion_fraction, 1),
                    "correct_%": round(100 * result.correctness_fraction, 1),
                    "rounds": result.completion_rounds,
                }
            )
    print(format_table(rows, title="Who accepts the fake message?"))
    print(
        "\nThe unprotected flood is poisoned by even a handful of compromised devices;\n"
        "NeighborWatchRB keeps deliveries authentic until whole regions are compromised,\n"
        "and the 2-voting variant holds out longer still (at the cost of extra time)."
    )


if __name__ == "__main__":
    main()
