#!/usr/bin/env python
"""The dual-mode deployment the paper recommends in practice.

Broadcasting *every* payload bit with a Byzantine-tolerant protocol is
expensive.  The paper's practical suggestion: flood the full payload with the
fast (unprotected) epidemic protocol, and secure only a short digest of it
with NeighborWatchRB; devices accept the payload only when its digest matches
the authenticated one.  This example measures the end-to-end overhead of that
construction over plain flooding and verifies that nobody accepts a forged
payload.

Run with:  python examples/dual_mode_digest.py
"""

from __future__ import annotations

from repro import ScenarioConfig, run_scenario, uniform_deployment
from repro.analysis import format_mapping
from repro.core import combine_dual_mode, polynomial_digest
from repro.core.digest import recommended_digest_length
from repro.experiments import airtime_bits

MAP_SIZE = 10.0
NUM_NODES = 150
RADIUS = 3.0
PAYLOAD_BITS = 24
DIGEST_RATIO = 0.125


def main() -> None:
    deployment = uniform_deployment(NUM_NODES, MAP_SIZE, MAP_SIZE, rng=9)
    payload = tuple((i * 5 + 1) % 2 for i in range(PAYLOAD_BITS))
    digest_len = recommended_digest_length(PAYLOAD_BITS, DIGEST_RATIO)
    digest = polynomial_digest(payload, digest_len)

    payload_run = run_scenario(
        deployment,
        ScenarioConfig(protocol="epidemic", radius=RADIUS,
                       message_length=PAYLOAD_BITS, message=payload, seed=9),
    )
    digest_run = run_scenario(
        deployment,
        ScenarioConfig(protocol="neighborwatch", radius=RADIUS,
                       message_length=digest_len, message=digest, seed=10),
    )
    combined = combine_dual_mode(payload, payload_run, digest_run)

    payload_airtime = airtime_bits("epidemic", payload_run.completion_rounds, PAYLOAD_BITS)
    digest_airtime = airtime_bits("neighborwatch", digest_run.completion_rounds, digest_len)
    overhead = (payload_airtime + digest_airtime) / payload_airtime

    print(format_mapping(
        {
            "payload bits": PAYLOAD_BITS,
            "digest bits (secured with NeighborWatchRB)": digest_len,
            "epidemic payload air-time (bit-times)": payload_airtime,
            "digest broadcast air-time (bit-times)": digest_airtime,
            "overhead over plain flooding": f"{overhead:.2f}x",
            "devices accepting the payload": f"{combined.acceptance_fraction:.1%}",
            "accepted payloads that are authentic": f"{combined.correctness_fraction:.1%}",
            "any forged payload accepted?": combined.any_incorrect_acceptance,
        },
        title="Dual-mode broadcast (epidemic payload + authenticated digest)",
    ))


if __name__ == "__main__":
    main()
