#!/usr/bin/env python
"""Quickstart: authenticated broadcast over a small sensor field.

Deploys 150 devices uniformly at random on a 10x10-unit map, lets the device
closest to the center broadcast a 4-bit message with NeighborWatchRB, and
prints the four metrics the paper's evaluation reports (completion time,
completion percentage, broadcast count, correctness percentage).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ScenarioConfig, run_scenario, uniform_deployment
from repro.analysis import format_mapping
from repro.topology import connectivity_report


def main() -> None:
    # 1. Deploy the devices.  The source is the device closest to the map center.
    deployment = uniform_deployment(150, 10.0, 10.0, rng=42)
    report = connectivity_report(deployment.positions, radius=3.0, source=deployment.source_index)
    print(f"Deployed {deployment.num_nodes} devices (density {deployment.density:.2f} per unit area)")
    print(f"Network: {report.diameter_hops_from_source} hops deep, "
          f"{report.reachable_from_source:.0%} of devices reachable from the source\n")

    # 2. Configure the broadcast: NeighborWatchRB, radius 3, 4-bit message.
    config = ScenarioConfig(
        protocol="neighborwatch",
        radius=3.0,
        message_length=4,
        message=(1, 0, 1, 1),
        seed=42,
    )

    # 3. Run the simulation to completion.
    result = run_scenario(deployment, config)

    # 4. Report the paper's four metrics.
    print(format_mapping(
        {
            "terminated": result.terminated,
            "completion time (rounds)": result.completion_rounds,
            "devices completing the protocol": f"{result.completion_fraction:.1%}",
            "honest broadcasts used": result.honest_broadcasts,
            "deliveries that are correct": f"{result.correctness_fraction:.1%}",
        },
        title="NeighborWatchRB broadcast of (1, 0, 1, 1)",
    ))


if __name__ == "__main__":
    main()
