#!/usr/bin/env python
"""Jamming attack on an alarm broadcast.

A sensor field must disseminate a short alarm even while a fraction of the
devices have been captured and turned into jammers.  The jammers target the
protocol's veto rounds (the most damaging single broadcast they can make) but
each has a limited energy budget.  The example sweeps the per-jammer budget
and shows the paper's observation that the damage is *proportional* to the
energy the adversary spends — and that the alarm is always delivered intact
once the jammers run dry.

Run with:  python examples/jamming_sensor_field.py
"""

from __future__ import annotations

from repro import FaultPlan, ScenarioConfig, run_scenario, uniform_deployment
from repro.adversary import fraction_to_count, random_fault_selection
from repro.analysis import format_table
from repro.experiments import fit_linear_trend

MAP_SIZE = 10.0
NUM_NODES = 150
RADIUS = 3.0
JAMMER_FRACTION = 0.10
BUDGETS = (0, 5, 10, 20)


def main() -> None:
    deployment = uniform_deployment(NUM_NODES, MAP_SIZE, MAP_SIZE, rng=5)
    num_jammers = fraction_to_count(NUM_NODES, JAMMER_FRACTION)
    jammers = tuple(
        random_fault_selection(NUM_NODES, num_jammers, exclude=[deployment.source_index], rng=17)
    )
    config = ScenarioConfig(protocol="neighborwatch", radius=RADIUS, message_length=4, seed=5)

    rows = []
    for budget in BUDGETS:
        faults = FaultPlan(jammers=jammers, jammer_budget=budget, jam_probability=0.2)
        result = run_scenario(deployment, config, faults)
        rows.append(
            {
                "per-jammer budget": budget,
                "rounds": result.completion_rounds,
                "delivered_%": round(100 * result.completion_fraction, 1),
                "correct_%": round(100 * result.correctness_fraction, 1),
                "jam broadcasts spent": result.adversary_broadcasts,
            }
        )
    print(format_table(rows, title=f"Alarm broadcast with {num_jammers} jammers ({JAMMER_FRACTION:.0%})"))

    slope, intercept, r2 = fit_linear_trend(rows, x_key="per-jammer budget", y_key="rounds")
    print(
        f"\nDelay grows roughly linearly with the jamming budget: "
        f"~{slope:.0f} extra rounds per unit of budget (R^2 = {r2:.2f})."
    )
    print("Authenticity is never affected — jamming can only buy time, not forge the alarm.")


if __name__ == "__main__":
    main()
