#!/usr/bin/env python
"""Parallel sweep execution: the same experiment, serial, fanned out and cached.

Runs a small jamming sweep (completion time vs adversarial broadcast budget)
three ways — inline, through a four-worker process pool, and through the
content-addressed result store — verifies that all three produce identical
rows seed-for-seed, and prints the timings.  Because every repetition derives
all of its randomness from ``base_seed + i``, the worker count is purely a
throughput knob and a cached repetition is *the* repetition: the store can
only ever return the same bits the simulator would recompute.

The same fan-out and cache are available from the command line for every
registered experiment:

    python -m repro.experiments list
    python -m repro.experiments run JAM --scale small --workers 4
    python -m repro.experiments run JAM --scale small --cache-dir ~/.cache/repro
    # rerun: reads everything back, simulates nothing
    python -m repro.experiments run JAM --scale small --cache-dir ~/.cache/repro --resume

Run with:  python examples/parallel_sweep.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.analysis import format_table
from repro.experiments import JammingSpec, SweepExecutor, run_jamming
from repro.store import ResultStore


def main() -> None:
    spec = JammingSpec(
        map_size=10.0,
        num_nodes=150,
        radius=3.0,
        message_length=2,
        budgets=(0, 4, 8),
        repetitions=4,
    )

    started = time.perf_counter()
    serial_rows = run_jamming(spec)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    with SweepExecutor(workers=4) as executor:
        parallel_rows = run_jamming(spec, executor=executor)
    parallel_seconds = time.perf_counter() - started

    assert parallel_rows == serial_rows, "parallel execution must be bit-identical"

    # The result store makes the sweep incremental: the first run persists
    # every repetition, the second answers them all from disk.
    with tempfile.TemporaryDirectory() as cache_dir:
        store = ResultStore(cache_dir)
        cold_rows = run_jamming(spec, store=store)
        started = time.perf_counter()
        warm_rows = run_jamming(spec, store=store)
        warm_seconds = time.perf_counter() - started
        assert warm_rows == cold_rows == serial_rows, "cache must be bit-identical"
        cache_line = (
            f"cache: {store.stats.writes} repetitions persisted, warm rerun "
            f"{store.stats.hits} hits / 0 simulations in {warm_seconds:.2f}s"
        )

    print(format_table(
        serial_rows,
        ["budget", "rounds", "completion_%", "correct_%", "adversary_broadcasts"],
        title="JAM sweep (identical for every worker count, cached or not)",
    ))
    print(
        f"\nserial: {serial_seconds:.2f}s   workers=4: {parallel_seconds:.2f}s   "
        f"(machine has {os.cpu_count()} CPU(s))"
    )
    print(cache_line)


if __name__ == "__main__":
    main()
