#!/usr/bin/env python
"""Parallel sweep execution: the same experiment, serial and fanned out.

Runs a small jamming sweep (completion time vs adversarial broadcast budget)
twice — once inline and once through a four-worker process pool — verifies
that the two produce identical rows seed-for-seed, and prints the timings.
Because every repetition derives all of its randomness from ``base_seed + i``,
the worker count is purely a throughput knob; results never change.

The same fan-out is available from the command line for every registered
experiment:

    python -m repro.experiments --list
    python -m repro.experiments JAM --scale small --workers 4

Run with:  python examples/parallel_sweep.py
"""

from __future__ import annotations

import os
import time

from repro.analysis import format_table
from repro.experiments import JammingSpec, SweepExecutor, run_jamming


def main() -> None:
    spec = JammingSpec(
        map_size=10.0,
        num_nodes=150,
        radius=3.0,
        message_length=2,
        budgets=(0, 4, 8),
        repetitions=4,
    )

    started = time.perf_counter()
    serial_rows = run_jamming(spec)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    with SweepExecutor(workers=4) as executor:
        parallel_rows = run_jamming(spec, executor=executor)
    parallel_seconds = time.perf_counter() - started

    assert parallel_rows == serial_rows, "parallel execution must be bit-identical"

    print(format_table(
        serial_rows,
        ["budget", "rounds", "completion_%", "correct_%", "adversary_broadcasts"],
        title="JAM sweep (identical for every worker count)",
    ))
    print(
        f"\nserial: {serial_seconds:.2f}s   workers=4: {parallel_seconds:.2f}s   "
        f"(machine has {os.cpu_count()} CPU(s))"
    )


if __name__ == "__main__":
    main()
