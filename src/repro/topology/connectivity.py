"""Connectivity analysis of deployments.

Several of the paper's experiments are explained by connectivity arguments:
NeighborWatchRB completes as long as the network remains connected, the
2-voting variant needs every node to have two "independent" feeding squares,
and MultiPathRB needs ``t + 1`` node-disjoint paths within single
neighborhoods.  These helpers compute the relevant graph quantities so the
experiments and tests can check them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from .geometry import neighborhood_matrix

__all__ = [
    "communication_graph",
    "is_connected_to",
    "reachable_fraction",
    "hop_counts_from",
    "ConnectivityReport",
    "connectivity_report",
]


def communication_graph(positions: np.ndarray, radius: float, norm: str = "l2") -> nx.Graph:
    """Build the radio communication graph as a :class:`networkx.Graph`."""
    adj = neighborhood_matrix(positions, radius, norm=norm)
    graph = nx.Graph()
    graph.add_nodes_from(range(adj.shape[0]))
    edges = np.argwhere(np.triu(adj, k=1))
    graph.add_edges_from((int(a), int(b)) for a, b in edges)
    return graph


def hop_counts_from(
    positions: np.ndarray, radius: float, source: int, norm: str = "l2"
) -> np.ndarray:
    """BFS hop distance from ``source`` to every node (``-1`` if unreachable).

    Implemented directly on the boolean adjacency matrix with NumPy frontier
    expansion, which is considerably faster than generic graph libraries for
    the dense radio graphs the experiments use.
    """
    adj = neighborhood_matrix(positions, radius, norm=norm)
    n = adj.shape[0]
    if not (0 <= source < n):
        raise ValueError("source index out of range")
    hops = np.full(n, -1, dtype=int)
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    hops[source] = 0
    level = 0
    visited = frontier.copy()
    while frontier.any():
        level += 1
        nxt = adj[frontier].any(axis=0) & ~visited
        if not nxt.any():
            break
        hops[nxt] = level
        visited |= nxt
        frontier = nxt
    return hops


def is_connected_to(positions: np.ndarray, radius: float, source: int, norm: str = "l2") -> np.ndarray:
    """Boolean mask of nodes reachable from ``source`` in the radio graph."""
    return hop_counts_from(positions, radius, source, norm=norm) >= 0


def reachable_fraction(positions: np.ndarray, radius: float, source: int, norm: str = "l2") -> float:
    """Fraction of devices reachable from the source (including the source)."""
    mask = is_connected_to(positions, radius, source, norm=norm)
    return float(mask.sum()) / mask.shape[0]


@dataclass(frozen=True, slots=True)
class ConnectivityReport:
    """Summary of the connectivity structure of a deployment."""

    num_nodes: int
    num_components: int
    largest_component_fraction: float
    reachable_from_source: float
    mean_degree: float
    min_degree: int
    diameter_hops_from_source: int

    def is_source_component_dominant(self, threshold: float = 0.95) -> bool:
        """Whether (almost) the whole network can hear the source eventually."""
        return self.reachable_from_source >= threshold


def connectivity_report(
    positions: np.ndarray, radius: float, source: int, norm: str = "l2"
) -> ConnectivityReport:
    """Compute a :class:`ConnectivityReport` for a deployment."""
    adj = neighborhood_matrix(positions, radius, norm=norm)
    degrees = adj.sum(axis=1)
    graph = communication_graph(positions, radius, norm=norm)
    components = list(nx.connected_components(graph))
    largest = max((len(c) for c in components), default=0)
    hops = hop_counts_from(positions, radius, source, norm=norm)
    reachable = hops >= 0
    return ConnectivityReport(
        num_nodes=int(adj.shape[0]),
        num_components=len(components),
        largest_component_fraction=largest / adj.shape[0] if adj.shape[0] else 0.0,
        reachable_from_source=float(reachable.sum()) / adj.shape[0],
        mean_degree=float(degrees.mean()) if adj.shape[0] else 0.0,
        min_degree=int(degrees.min()) if adj.shape[0] else 0,
        diameter_hops_from_source=int(hops[reachable].max()) if reachable.any() else 0,
    )
