"""Grid deployments and grid-bucketed spatial queries.

The paper's running-time analysis places one device at every integer grid
point of an ``width x height`` rectangle and measures communication in the
L-infinity norm.  These helpers build that topology (optionally sub-sampled)
and compute the quantities the analysis refers to (diameter, neighborhood
size, maximum tolerable number of Byzantine devices).

:class:`GridBuckets` is the scale-enabling piece: a spatial hash of an
``(N, 2)`` position array into square cells, answering radius queries and
building CSR neighbor structures without ever touching an ``N x N`` matrix.
Its results are *exact* — candidate pairs are over-collected from surrounding
cells and then filtered with the very same elementwise distance expressions
the dense code paths use, so the returned neighbor sets (and therefore
everything built on top of them: link states, schedules, tilings) are
bit-identical to the brute-force computation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["GridSpec", "grid_positions", "grid_index_of", "GridTopology", "GridBuckets"]


@dataclass(frozen=True, slots=True)
class GridSpec:
    """Specification of an analytical unit grid.

    Attributes
    ----------
    width, height:
        Number of grid points along each axis (so coordinates run from 0 to
        ``width - 1`` / ``height - 1``).
    spacing:
        Distance between adjacent grid points.  The paper uses unit spacing.
    """

    width: int
    height: int
    spacing: float = 1.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("grid dimensions must be positive")
        if self.spacing <= 0:
            raise ValueError("grid spacing must be positive")

    @property
    def num_points(self) -> int:
        return self.width * self.height

    @property
    def extent(self) -> tuple[float, float]:
        """Physical extent of the grid along each axis."""
        return ((self.width - 1) * self.spacing, (self.height - 1) * self.spacing)


def grid_positions(spec: GridSpec) -> np.ndarray:
    """Return the ``(width*height, 2)`` array of grid point coordinates.

    Points are ordered row-major: index ``i`` corresponds to
    ``(i % width, i // width)`` scaled by ``spacing``.
    """
    xs = np.arange(spec.width, dtype=float) * spec.spacing
    ys = np.arange(spec.height, dtype=float) * spec.spacing
    gx, gy = np.meshgrid(xs, ys)
    return np.column_stack([gx.ravel(), gy.ravel()])


def grid_index_of(spec: GridSpec, x: int, y: int) -> int:
    """Index into :func:`grid_positions` of the grid point ``(x, y)``."""
    if not (0 <= x < spec.width and 0 <= y < spec.height):
        raise ValueError(f"grid point ({x}, {y}) outside {spec.width}x{spec.height} grid")
    return y * spec.width + x


@dataclass(slots=True)
class GridTopology:
    """A fully materialised analytical grid topology.

    Combines the grid specification with the communication radius ``R`` and
    exposes the derived quantities used by the paper's theorems:

    * ``neighborhood_size`` -- ``(2R+1)^2 - 1`` devices per neighborhood,
    * ``max_tolerable_t`` -- Koo's bound ``t < R(2R+1)/2``,
    * ``diameter_hops`` -- the hop diameter ``D`` used in Theorem 5.
    """

    spec: GridSpec
    radius: float
    positions: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("communication radius must be positive")
        self.positions = grid_positions(self.spec)

    @property
    def num_nodes(self) -> int:
        return self.spec.num_points

    @property
    def radius_in_cells(self) -> int:
        """Communication radius expressed in grid cells (rounded down)."""
        return int(math.floor(self.radius / self.spec.spacing + 1e-9))

    @property
    def neighborhood_size(self) -> int:
        """Number of other grid points inside one L-infinity neighborhood."""
        r = self.radius_in_cells
        return (2 * r + 1) ** 2 - 1

    @property
    def max_tolerable_t(self) -> int:
        """Largest ``t`` satisfying Koo's bound ``t < R(2R+1)/2`` (strictly)."""
        r = self.radius_in_cells
        bound = 0.5 * r * (2 * r + 1)
        t = int(math.ceil(bound)) - 1
        return max(t, 0)

    @property
    def neighborwatch_tolerable_t(self) -> int:
        """Largest ``t`` tolerated by NeighborWatchRB: ``t < ceil(R/2)^2``."""
        r = self.radius_in_cells
        return max(int(math.ceil(r / 2)) ** 2 - 1, 0)

    @property
    def diameter_hops(self) -> int:
        """Hop diameter of the grid under the L-infinity communication model."""
        ex, ey = self.spec.extent
        return int(math.ceil(max(ex, ey) / self.radius))

    def index_of(self, x: int, y: int) -> int:
        return grid_index_of(self.spec, x, y)

    def center_index(self) -> int:
        """Index of the grid point closest to the geometric center."""
        return self.index_of(self.spec.width // 2, self.spec.height // 2)


def _bucket_distances(block: np.ndarray, candidates: np.ndarray, norm: str) -> np.ndarray:
    """Distance matrix between two position blocks, mirroring the dense kernels.

    Uses exactly the elementwise expression sequence of
    :func:`repro.topology.geometry.pairwise_distances` and the channels'
    ``_distances`` helpers (subtract, abs/max for L-infinity; subtract,
    square, 2-term sum, sqrt for L2).  Elementwise float64 ufuncs give the
    same bits regardless of array shape, so filtering candidate pairs with
    these values reproduces the dense predicate exactly.
    """
    diff = block[:, None, :] - candidates[None, :, :]
    if norm == "linf":
        return np.max(np.abs(diff), axis=-1)
    if norm == "l2":
        return np.sqrt(np.sum(diff**2, axis=-1))
    raise ValueError(f"unknown norm {norm!r}; expected 'linf' or 'l2'")


class GridBuckets:
    """Spatial hash of positions into square cells for exact radius queries.

    Parameters
    ----------
    positions:
        ``(N, 2)`` float array of device coordinates.
    cell_size:
        Side of the hash cells.  A cell size equal to the query threshold
        keeps the candidate window at the 5x5 surrounding cells; any positive
        value is correct (only the constant factor moves).

    Queries return neighbor sets identical to the brute-force dense
    computation: candidate cells are taken with one extra ring beyond
    ``ceil(threshold / cell_size)`` (insurance against boundary rounding) and
    candidates are filtered with :func:`_bucket_distances`, the same
    elementwise arithmetic as the dense paths.
    """

    __slots__ = ("positions", "cell_size", "_cells", "_cell_of")

    def __init__(self, positions: np.ndarray, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        pos = np.asarray(positions, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError(f"positions must have shape (N, 2), got {pos.shape}")
        self.positions = pos
        self.cell_size = float(cell_size)
        cols = np.floor(pos[:, 0] / self.cell_size).astype(np.int64)
        rows = np.floor(pos[:, 1] / self.cell_size).astype(np.int64)
        self._cell_of = np.stack([cols, rows], axis=1)
        # Bucket members keyed by (col, row); argsort is stable, so each
        # bucket's member array is ascending in node id.
        self._cells: dict[tuple[int, int], np.ndarray] = {}
        if pos.shape[0]:
            span = rows.max() - rows.min() + 1
            flat = (cols - cols.min()) * span + (rows - rows.min())
            order = np.argsort(flat, kind="stable")
            sorted_flat = flat[order]
            boundaries = np.flatnonzero(np.diff(sorted_flat)) + 1
            for chunk in np.split(order, boundaries):
                first = int(chunk[0])
                self._cells[(int(cols[first]), int(rows[first]))] = chunk

    @property
    def num_cells(self) -> int:
        return len(self._cells)

    def _candidates_around(self, col: int, row: int, reach: int) -> np.ndarray:
        """Ids in the ``(2*reach+1)^2`` cell window around ``(col, row)``, ascending."""
        chunks = []
        cells = self._cells
        for dc in range(-reach, reach + 1):
            for dr in range(-reach, reach + 1):
                members = cells.get((col + dc, row + dr))
                if members is not None:
                    chunks.append(members)
        if not chunks:
            return np.empty(0, dtype=np.intp)
        out = np.concatenate(chunks)
        out.sort()
        return out

    def _reach(self, threshold: float) -> int:
        # One extra ring beyond the geometric bound: a pair excluded by the
        # window then has per-coordinate separation strictly greater than
        # threshold + cell_size, far outside any floating-point rounding of
        # the distance predicate.
        return int(math.ceil(threshold / self.cell_size)) + 1

    def query(self, center, threshold: float, norm: str = "l2") -> np.ndarray:
        """Ids of positions within ``threshold`` of ``center`` (ascending).

        Equivalent to filtering the brute-force distance row with
        ``distance <= threshold`` — callers that need the dense paths'
        tolerance fold it into ``threshold`` themselves.
        """
        c = np.asarray(center, dtype=float).reshape(2)
        col = int(math.floor(c[0] / self.cell_size))
        row = int(math.floor(c[1] / self.cell_size))
        candidates = self._candidates_around(col, row, self._reach(threshold))
        if not candidates.size:
            return candidates
        dist = _bucket_distances(c[None, :], self.positions[candidates], norm)[0]
        return candidates[dist <= threshold]

    def neighbor_arrays(
        self, threshold: float, norm: str = "l2", *, include_self: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR ``(indptr, indices)`` of the radius-``threshold`` neighbor graph.

        Row ``i`` of the structure (``indices[indptr[i]:indptr[i+1]]``, always
        ascending) lists exactly the ids the dense predicate
        ``distance(i, j) <= threshold`` accepts, computed one occupied cell at
        a time so peak memory is ``O(occupancy * window)`` instead of
        ``O(N^2)``.
        """
        n = self.positions.shape[0]
        rows_of: list = [None] * n
        reach = self._reach(threshold)
        for (col, row), members in self._cells.items():
            candidates = self._candidates_around(col, row, reach)
            dist = _bucket_distances(
                self.positions[members], self.positions[candidates], norm
            )
            mask = dist <= threshold
            if not include_self:
                own_col = np.searchsorted(candidates, members)
                mask[np.arange(members.size), own_col] = False
            for local, node in enumerate(members):
                rows_of[int(node)] = candidates[mask[local]]
        indptr = np.zeros(n + 1, dtype=np.int64)
        for i in range(n):
            row_ids = rows_of[i]
            indptr[i + 1] = indptr[i] + (row_ids.size if row_ids is not None else 0)
        if n and indptr[-1]:
            indices = np.concatenate([r for r in rows_of if r is not None and r.size])
        else:
            indices = np.empty(0, dtype=np.intp)
        indices = indices.astype(np.intp, copy=False)
        return indptr, indices
