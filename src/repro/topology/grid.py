"""Grid deployments for the analytical model.

The paper's running-time analysis places one device at every integer grid
point of an ``width x height`` rectangle and measures communication in the
L-infinity norm.  These helpers build that topology (optionally sub-sampled)
and compute the quantities the analysis refers to (diameter, neighborhood
size, maximum tolerable number of Byzantine devices).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["GridSpec", "grid_positions", "grid_index_of", "GridTopology"]


@dataclass(frozen=True, slots=True)
class GridSpec:
    """Specification of an analytical unit grid.

    Attributes
    ----------
    width, height:
        Number of grid points along each axis (so coordinates run from 0 to
        ``width - 1`` / ``height - 1``).
    spacing:
        Distance between adjacent grid points.  The paper uses unit spacing.
    """

    width: int
    height: int
    spacing: float = 1.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("grid dimensions must be positive")
        if self.spacing <= 0:
            raise ValueError("grid spacing must be positive")

    @property
    def num_points(self) -> int:
        return self.width * self.height

    @property
    def extent(self) -> tuple[float, float]:
        """Physical extent of the grid along each axis."""
        return ((self.width - 1) * self.spacing, (self.height - 1) * self.spacing)


def grid_positions(spec: GridSpec) -> np.ndarray:
    """Return the ``(width*height, 2)`` array of grid point coordinates.

    Points are ordered row-major: index ``i`` corresponds to
    ``(i % width, i // width)`` scaled by ``spacing``.
    """
    xs = np.arange(spec.width, dtype=float) * spec.spacing
    ys = np.arange(spec.height, dtype=float) * spec.spacing
    gx, gy = np.meshgrid(xs, ys)
    return np.column_stack([gx.ravel(), gy.ravel()])


def grid_index_of(spec: GridSpec, x: int, y: int) -> int:
    """Index into :func:`grid_positions` of the grid point ``(x, y)``."""
    if not (0 <= x < spec.width and 0 <= y < spec.height):
        raise ValueError(f"grid point ({x}, {y}) outside {spec.width}x{spec.height} grid")
    return y * spec.width + x


@dataclass(slots=True)
class GridTopology:
    """A fully materialised analytical grid topology.

    Combines the grid specification with the communication radius ``R`` and
    exposes the derived quantities used by the paper's theorems:

    * ``neighborhood_size`` -- ``(2R+1)^2 - 1`` devices per neighborhood,
    * ``max_tolerable_t`` -- Koo's bound ``t < R(2R+1)/2``,
    * ``diameter_hops`` -- the hop diameter ``D`` used in Theorem 5.
    """

    spec: GridSpec
    radius: float
    positions: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("communication radius must be positive")
        self.positions = grid_positions(self.spec)

    @property
    def num_nodes(self) -> int:
        return self.spec.num_points

    @property
    def radius_in_cells(self) -> int:
        """Communication radius expressed in grid cells (rounded down)."""
        return int(math.floor(self.radius / self.spec.spacing + 1e-9))

    @property
    def neighborhood_size(self) -> int:
        """Number of other grid points inside one L-infinity neighborhood."""
        r = self.radius_in_cells
        return (2 * r + 1) ** 2 - 1

    @property
    def max_tolerable_t(self) -> int:
        """Largest ``t`` satisfying Koo's bound ``t < R(2R+1)/2`` (strictly)."""
        r = self.radius_in_cells
        bound = 0.5 * r * (2 * r + 1)
        t = int(math.ceil(bound)) - 1
        return max(t, 0)

    @property
    def neighborwatch_tolerable_t(self) -> int:
        """Largest ``t`` tolerated by NeighborWatchRB: ``t < ceil(R/2)^2``."""
        r = self.radius_in_cells
        return max(int(math.ceil(r / 2)) ** 2 - 1, 0)

    @property
    def diameter_hops(self) -> int:
        """Hop diameter of the grid under the L-infinity communication model."""
        ex, ey = self.spec.extent
        return int(math.ceil(max(ex, ey) / self.radius))

    def index_of(self, x: int, y: int) -> int:
        return grid_index_of(self.spec, x, y)

    def center_index(self) -> int:
        """Index of the grid point closest to the geometric center."""
        return self.index_of(self.spec.width // 2, self.spec.height // 2)
