"""Geometric primitives used throughout the reproduction.

The paper analyses the protocols on a two-dimensional grid using the L-infinity
norm (a node ``w`` is a neighbor of ``v`` if both coordinate differences are at
most the communication radius ``R``), while the simulations use Euclidean (L2)
distances under a Friis free-space propagation model.  This module provides the
distance computations, neighborhood queries and bounding helpers shared by the
analytical and simulated topologies.

All bulk operations are vectorised with NumPy: positions are ``(N, 2)`` float
arrays and neighborhood queries return boolean masks or index arrays so that
the simulator never loops over node pairs in Python.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Point",
    "as_positions",
    "linf_distance",
    "l2_distance",
    "pairwise_distances",
    "neighbors_within",
    "neighborhood_matrix",
    "neighborhood_counts",
    "bounding_box",
    "fits_in_common_neighborhood",
    "linf_diameter_hops",
    "grid_hop_distance",
]


@dataclass(frozen=True, slots=True)
class Point:
    """A 2-D location in the deployment plane.

    The class is intentionally tiny: protocols mostly operate on raw floats or
    NumPy arrays, but a frozen dataclass gives a hashable, readable handle for
    a single device position (e.g. the broadcast source).
    """

    x: float
    y: float

    def as_array(self) -> np.ndarray:
        """Return the point as a ``(2,)`` float array."""
        return np.array([self.x, self.y], dtype=float)

    def linf(self, other: "Point") -> float:
        """L-infinity distance to ``other``."""
        return max(abs(self.x - other.x), abs(self.y - other.y))

    def l2(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)


def as_positions(points: Iterable[Sequence[float]] | np.ndarray) -> np.ndarray:
    """Coerce an iterable of 2-D coordinates into an ``(N, 2)`` float array.

    Accepts lists of tuples, lists of :class:`Point`, or an existing array.
    Raises ``ValueError`` for inputs that are not two dimensional.
    """
    if isinstance(points, np.ndarray):
        arr = np.asarray(points, dtype=float)
    else:
        rows = []
        for p in points:
            if isinstance(p, Point):
                rows.append((p.x, p.y))
            else:
                rows.append((float(p[0]), float(p[1])))
        arr = np.asarray(rows, dtype=float) if rows else np.empty((0, 2), dtype=float)
    if arr.ndim != 2 or (arr.size and arr.shape[1] != 2):
        raise ValueError(f"positions must have shape (N, 2), got {arr.shape}")
    return arr


def linf_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """L-infinity distance between broadcast-compatible position arrays."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return np.max(np.abs(a - b), axis=-1)


def l2_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance between broadcast-compatible position arrays."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return np.sqrt(np.sum((a - b) ** 2, axis=-1))


def pairwise_distances(positions: np.ndarray, norm: str = "linf") -> np.ndarray:
    """Full ``(N, N)`` pairwise distance matrix under the requested norm.

    ``norm`` is either ``"linf"`` (analytical model) or ``"l2"`` (simulation
    model).  The computation is fully vectorised; an ``N`` of a few thousand
    nodes fits comfortably in memory (N^2 * 8 bytes).
    """
    pos = as_positions(positions)
    diff = pos[:, None, :] - pos[None, :, :]
    if norm == "linf":
        return np.max(np.abs(diff), axis=-1)
    if norm == "l2":
        return np.sqrt(np.sum(diff**2, axis=-1))
    raise ValueError(f"unknown norm {norm!r}; expected 'linf' or 'l2'")


def neighbors_within(
    positions: np.ndarray,
    center: Sequence[float],
    radius: float,
    norm: str = "linf",
    *,
    strict: bool = False,
) -> np.ndarray:
    """Indices of positions within ``radius`` of ``center`` under ``norm``.

    ``strict`` excludes points exactly at distance ``radius``.  The center
    itself is included if it is one of the positions (callers that need to
    exclude the node itself filter by index).
    """
    pos = as_positions(positions)
    c = np.asarray(center, dtype=float)
    if norm == "linf":
        d = np.max(np.abs(pos - c[None, :]), axis=1)
    elif norm == "l2":
        d = np.sqrt(np.sum((pos - c[None, :]) ** 2, axis=1))
    else:
        raise ValueError(f"unknown norm {norm!r}")
    if strict:
        return np.nonzero(d < radius)[0]
    return np.nonzero(d <= radius)[0]


def neighborhood_matrix(
    positions: np.ndarray, radius: float, norm: str = "linf", include_self: bool = False
) -> np.ndarray:
    """Boolean ``(N, N)`` adjacency matrix of the radio neighborhood graph."""
    dist = pairwise_distances(positions, norm=norm)
    adj = dist <= radius
    if not include_self:
        np.fill_diagonal(adj, False)
    return adj


def neighborhood_counts(positions: np.ndarray, radius: float, norm: str = "linf") -> np.ndarray:
    """Number of neighbors of every node (excluding itself)."""
    return neighborhood_matrix(positions, radius, norm=norm).sum(axis=1)


def bounding_box(positions: np.ndarray) -> tuple[float, float, float, float]:
    """Axis-aligned bounding box ``(xmin, ymin, xmax, ymax)`` of the positions."""
    pos = as_positions(positions)
    if pos.shape[0] == 0:
        return (0.0, 0.0, 0.0, 0.0)
    return (
        float(pos[:, 0].min()),
        float(pos[:, 1].min()),
        float(pos[:, 0].max()),
        float(pos[:, 1].max()),
    )


def fits_in_common_neighborhood(positions: np.ndarray, radius: float) -> bool:
    """Whether all positions lie inside a single L-infinity neighborhood.

    Under the L-infinity norm a set of points fits inside *some* neighborhood
    of radius ``radius`` (an axis-aligned square of side ``2*radius``) exactly
    when the extent of the set in each coordinate is at most ``2*radius``.
    This is the geometric test used by MultiPathRB's commit rule: the sources
    and causes of the supporting COMMIT/HEARD messages must all lie in a
    common neighborhood, ensuring at least one of them is honest.
    """
    pos = as_positions(positions)
    if pos.shape[0] == 0:
        return True
    xmin, ymin, xmax, ymax = bounding_box(pos)
    return (xmax - xmin) <= 2 * radius + 1e-9 and (ymax - ymin) <= 2 * radius + 1e-9


def linf_diameter_hops(positions: np.ndarray, radius: float) -> int:
    """Upper bound on the network diameter in hops for the L-infinity model.

    For a well-populated deployment the hop distance between the two most
    distant devices is roughly the L-infinity distance divided by the
    communication radius.  The analytical running-time bound of the paper is
    stated in terms of this diameter ``D``.
    """
    pos = as_positions(positions)
    if pos.shape[0] < 2:
        return 0
    xmin, ymin, xmax, ymax = bounding_box(pos)
    extent = max(xmax - xmin, ymax - ymin)
    if radius <= 0:
        raise ValueError("radius must be positive")
    return int(math.ceil(extent / radius))


def grid_hop_distance(a: Sequence[float], b: Sequence[float], radius: float) -> int:
    """Minimum number of hops between two grid points under the L-infinity model."""
    if radius <= 0:
        raise ValueError("radius must be positive")
    d = max(abs(float(a[0]) - float(b[0])), abs(float(a[1]) - float(b[1])))
    return int(math.ceil(d / radius))
