"""Deployment topologies: analytical grids, random and clustered deployments."""

from .geometry import (
    Point,
    as_positions,
    bounding_box,
    fits_in_common_neighborhood,
    grid_hop_distance,
    l2_distance,
    linf_diameter_hops,
    linf_distance,
    neighborhood_counts,
    neighborhood_matrix,
    neighbors_within,
    pairwise_distances,
)
from .grid import GridSpec, GridTopology, grid_index_of, grid_positions
from .deployment import (
    Deployment,
    clustered_deployment,
    density,
    grid_jittered_deployment,
    marsaglia_normal_pairs,
    uniform_deployment,
)
from .connectivity import (
    ConnectivityReport,
    communication_graph,
    connectivity_report,
    hop_counts_from,
    is_connected_to,
    reachable_fraction,
)

__all__ = [
    "Point",
    "as_positions",
    "bounding_box",
    "fits_in_common_neighborhood",
    "grid_hop_distance",
    "l2_distance",
    "linf_diameter_hops",
    "linf_distance",
    "neighborhood_counts",
    "neighborhood_matrix",
    "neighbors_within",
    "pairwise_distances",
    "GridSpec",
    "GridTopology",
    "grid_index_of",
    "grid_positions",
    "Deployment",
    "clustered_deployment",
    "density",
    "grid_jittered_deployment",
    "marsaglia_normal_pairs",
    "uniform_deployment",
    "ConnectivityReport",
    "communication_graph",
    "connectivity_report",
    "hop_counts_from",
    "is_connected_to",
    "reachable_fraction",
]
