"""Random deployments used by the simulation experiments.

The paper's evaluation deploys devices on maps of 20x20 to 60x60 length units,
either uniformly at random or in clusters.  The clustered deployment picks a
fixed set of cluster centers, assigns each device to a random cluster and
spreads the devices around their center according to a normal distribution
generated with Marsaglia's polar method (the reference the paper cites is
Knuth's description of that algorithm).  Both generators are reproduced here
with seeded NumPy random generators so that every experiment is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .geometry import as_positions

__all__ = [
    "Deployment",
    "uniform_deployment",
    "clustered_deployment",
    "grid_jittered_deployment",
    "marsaglia_normal_pairs",
    "density",
]


@dataclass(slots=True)
class Deployment:
    """A concrete placement of devices on a rectangular map.

    Attributes
    ----------
    positions:
        ``(N, 2)`` array of device coordinates.
    width, height:
        Map dimensions in length units.
    source_index:
        Index of the broadcast source device.  The paper places the source at
        the center of the map; generators follow that convention by default.
    metadata:
        Free-form generation parameters kept for provenance (seed, kind, ...).
    """

    positions: np.ndarray
    width: float
    height: float
    source_index: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.positions = as_positions(self.positions)
        if self.num_nodes == 0:
            raise ValueError("a deployment must contain at least one device")
        if not (0 <= self.source_index < self.num_nodes):
            raise ValueError("source_index out of range")

    @property
    def num_nodes(self) -> int:
        return int(self.positions.shape[0])

    @property
    def area(self) -> float:
        return float(self.width) * float(self.height)

    @property
    def density(self) -> float:
        """Devices per unit area, the density metric used throughout Section 6."""
        return self.num_nodes / self.area

    @property
    def source_position(self) -> np.ndarray:
        return self.positions[self.source_index]

    def with_source_at_center(self) -> "Deployment":
        """Return a copy whose source is the device closest to the map center."""
        center = np.array([self.width / 2.0, self.height / 2.0])
        d = np.max(np.abs(self.positions - center[None, :]), axis=1)
        idx = int(np.argmin(d))
        return Deployment(
            positions=self.positions,
            width=self.width,
            height=self.height,
            source_index=idx,
            metadata=dict(self.metadata),
        )

    def subset(self, indices: Sequence[int]) -> "Deployment":
        """Deployment restricted to ``indices`` (used by crash experiments)."""
        indices = np.asarray(indices, dtype=int)
        if self.source_index not in set(int(i) for i in indices):
            raise ValueError("subset must retain the source device")
        new_source = int(np.nonzero(indices == self.source_index)[0][0])
        return Deployment(
            positions=self.positions[indices],
            width=self.width,
            height=self.height,
            source_index=new_source,
            metadata={**self.metadata, "subset_of": self.num_nodes},
        )


def density(num_nodes: int, width: float, height: float) -> float:
    """Deployment density: total number of nodes divided by the map area."""
    if width <= 0 or height <= 0:
        raise ValueError("map dimensions must be positive")
    return num_nodes / (width * height)


def uniform_deployment(
    num_nodes: int,
    width: float,
    height: float,
    *,
    rng: np.random.Generator | int | None = None,
    source_at_center: bool = True,
) -> Deployment:
    """Deploy ``num_nodes`` devices uniformly at random on a ``width x height`` map."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    gen = np.random.default_rng(rng)
    pos = np.column_stack(
        [gen.uniform(0.0, width, size=num_nodes), gen.uniform(0.0, height, size=num_nodes)]
    )
    dep = Deployment(
        positions=pos,
        width=width,
        height=height,
        source_index=0,
        metadata={"kind": "uniform", "num_nodes": num_nodes},
    )
    return dep.with_source_at_center() if source_at_center else dep


def marsaglia_normal_pairs(n: int, gen: np.random.Generator) -> np.ndarray:
    """Generate ``n`` pairs of independent standard normal variates.

    Implements Marsaglia's polar method directly (rather than calling
    ``gen.normal``) because the paper explicitly cites this algorithm for its
    clustered deployments; the output distribution is of course the same.
    Returns an ``(n, 2)`` array.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    out = np.empty((n, 2), dtype=float)
    filled = 0
    while filled < n:
        # Draw candidate points in the unit square, keep those inside the unit
        # circle (excluding the origin) and transform them to normals.
        budget = max(2 * (n - filled), 16)
        u = gen.uniform(-1.0, 1.0, size=budget)
        v = gen.uniform(-1.0, 1.0, size=budget)
        s = u * u + v * v
        ok = (s > 0.0) & (s < 1.0)
        u, v, s = u[ok], v[ok], s[ok]
        factor = np.sqrt(-2.0 * np.log(s) / s)
        take = min(len(s), n - filled)
        out[filled : filled + take, 0] = (u * factor)[:take]
        out[filled : filled + take, 1] = (v * factor)[:take]
        filled += take
    return out


def clustered_deployment(
    num_nodes: int,
    width: float,
    height: float,
    *,
    num_clusters: int = 8,
    cluster_std: float | None = None,
    rng: np.random.Generator | int | None = None,
    source_at_center: bool = True,
) -> Deployment:
    """Deploy devices in randomly placed clusters (Section 6.2 of the paper).

    Cluster centers are chosen uniformly at random, each device is assigned to
    a uniformly random cluster, and its offset from the cluster center is a
    2-D normal variate produced by Marsaglia's polar method.  Devices falling
    outside the map are clipped back onto it (mirroring what a real deployment
    on a bounded field would do).
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if num_clusters <= 0:
        raise ValueError("num_clusters must be positive")
    gen = np.random.default_rng(rng)
    if cluster_std is None:
        # Spread clusters so that they cover a meaningful fraction of the map
        # without degenerating into a uniform deployment.
        cluster_std = min(width, height) / 8.0
    centers = np.column_stack(
        [gen.uniform(0.0, width, size=num_clusters), gen.uniform(0.0, height, size=num_clusters)]
    )
    assignment = gen.integers(0, num_clusters, size=num_nodes)
    offsets = marsaglia_normal_pairs(num_nodes, gen) * cluster_std
    pos = centers[assignment] + offsets
    pos[:, 0] = np.clip(pos[:, 0], 0.0, width)
    pos[:, 1] = np.clip(pos[:, 1], 0.0, height)
    dep = Deployment(
        positions=pos,
        width=width,
        height=height,
        source_index=0,
        metadata={
            "kind": "clustered",
            "num_nodes": num_nodes,
            "num_clusters": num_clusters,
            "cluster_std": cluster_std,
        },
    )
    return dep.with_source_at_center() if source_at_center else dep


def grid_jittered_deployment(
    width: float,
    height: float,
    spacing: float = 1.0,
    *,
    jitter: float = 0.0,
    rng: np.random.Generator | int | None = None,
    source_at_center: bool = True,
) -> Deployment:
    """Deploy devices on a regular grid, optionally jittered.

    With ``jitter=0`` this reproduces the analytical model's unit grid on a
    bounded map, which is convenient for integration tests that compare the
    simulator against the theory.  A small positive ``jitter`` perturbs each
    device uniformly in ``[-jitter, jitter]^2``.
    """
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    gen = np.random.default_rng(rng)
    xs = np.arange(0.0, width + 1e-9, spacing)
    ys = np.arange(0.0, height + 1e-9, spacing)
    gx, gy = np.meshgrid(xs, ys)
    pos = np.column_stack([gx.ravel(), gy.ravel()])
    if jitter > 0:
        pos = pos + gen.uniform(-jitter, jitter, size=pos.shape)
        pos[:, 0] = np.clip(pos[:, 0], 0.0, width)
        pos[:, 1] = np.clip(pos[:, 1], 0.0, height)
    dep = Deployment(
        positions=pos,
        width=width,
        height=height,
        source_index=0,
        metadata={"kind": "grid", "spacing": spacing, "jitter": jitter},
    )
    return dep.with_source_at_center() if source_at_center else dep
