"""Open, string-keyed component registries.

Before PR 5 the set of simulatable components was closed: protocols and
channels were enum members (``ProtocolName`` / ``ChannelName``) consumed by
``if``-chains in :mod:`repro.sim.builder`, and adding a scenario ingredient
meant editing the enum, every chain, and usually an experiment module.  This
module replaces that with *open registries*: a component self-registers under
a string key via a decorator at its definition site, and everything downstream
(the scenario builder, the declarative experiment drivers, the CLI) looks it
up by key.

Registries
----------
========================  ===========================================================
:data:`PROTOCOLS`         :class:`ProtocolPlugin` instances ("neighborwatch", ...)
:data:`CHANNELS`          :class:`ChannelPlugin` instances ("unitdisk", "friis")
:data:`DEPLOYMENTS`       picklable deployment-factory dataclasses ("uniform", ...)
:data:`FAULT_PLANS`       picklable fault-plan factory dataclasses ("random_liar", ...)
:data:`METRICS`           row builders deriving table rows from sweep points
:data:`DRIVERS`           experiment drivers executing a resolved ExperimentSpec
:data:`EXPERIMENT_SPECS`  the built-in :class:`~repro.experiments.spec.ExperimentSpec`
:data:`EXECUTOR_BACKENDS` :class:`~repro.sim.backends.ExecutorBackend` classes
                          ("serial", "process-pool", "chaos", "queue")
:data:`STORE_BACKENDS`    :class:`~repro.store.ResultStore` classes
                          ("local", "shared")
========================  ===========================================================

Usage::

    from repro.registry import register_protocol, ProtocolPlugin

    @register_protocol("myproto", aliases=("mp2",))
    class MyProtocolPlugin(ProtocolPlugin):
        protocol_classes = (MyProtocolNode,)
        def build(self, config): ...
        def build_liar(self, config, fake_message): ...
        def build_schedule(self, deployment, config): ...

Lookups are alias-tolerant (case, ``-`` and ``_`` are ignored, so ``"2-vote"``
finds ``"neighborwatch2"`` through its ``"2vote"`` alias) and an unknown key
raises a :class:`RegistryError` listing every available key.  Duplicate
registration of a key or alias raises immediately.  Component contracts are
validated lazily on first lookup (entries register while their module is still
executing, so e.g. pickling a factory class by qualified name only works once
the module finished importing): protocol plugins must declare the shareable
contract the cohort runtime requires, factories must be picklable dataclasses
so :func:`repro.sim.runner.fingerprint_payload` can reduce them stably.

The built-in components register when their home module imports; each registry
knows those modules and imports them on first use, so ``PROTOCOLS.get("nw")``
works without any explicit bootstrap import.
"""

from __future__ import annotations

import dataclasses
import importlib
import math
import pickle
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

__all__ = [
    "RegistryError",
    "Registry",
    "ProtocolPlugin",
    "ChannelPlugin",
    "PROTOCOLS",
    "CHANNELS",
    "DEPLOYMENTS",
    "FAULT_PLANS",
    "METRICS",
    "DRIVERS",
    "EXPERIMENT_SPECS",
    "EXECUTOR_BACKENDS",
    "STORE_BACKENDS",
    "register_protocol",
    "register_channel",
    "register_deployment",
    "register_fault_plan",
    "register_metric",
    "register_driver",
    "register_experiment_spec",
    "register_executor_backend",
    "register_store_backend",
]


class RegistryError(KeyError, ValueError):
    """Unknown key or invalid registration; the message lists the candidates.

    Subclasses both ``KeyError`` (the experiment registry's historical lookup
    contract) and ``ValueError`` (the ``ProtocolName.parse`` /
    ``ChannelName`` contract the registries replaced), so existing callers'
    ``except`` clauses keep working.
    """

    def __str__(self) -> str:  # KeyError would wrap the message in quotes
        return self.args[0] if self.args else ""


def _squash(key: str) -> str:
    """Lookup normalization: case, ``-`` and ``_`` are insignificant."""
    return str(key).strip().lower().replace("-", "").replace("_", "")


class Registry:
    """An ordered, alias-tolerant mapping from string keys to components.

    Parameters
    ----------
    kind:
        Human name of the component class ("protocol", "channel", ...), used
        in error messages.
    validator:
        Optional ``validator(key, obj)`` contract check, run once per entry on
        its first lookup (see the module docstring for why not at
        registration); a failed check raises :class:`RegistryError`.
    builtin_modules:
        Modules whose import registers the built-in components of this
        registry; imported on first use.
    """

    def __init__(
        self,
        kind: str,
        *,
        validator: Optional[Callable[[str, Any], None]] = None,
        builtin_modules: Sequence[str] = (),
        instantiate: bool = False,
    ) -> None:
        self.kind = kind
        self._validator = validator
        self._builtin_modules = tuple(builtin_modules)
        self._builtins_loaded = not self._builtin_modules
        self._instantiate = instantiate
        self._entries: dict[str, Any] = {}
        self._aliases: dict[str, str] = {}  # squashed alias/key -> canonical key
        self._validated: set[str] = set()

    # -- registration ---------------------------------------------------------------------
    def register(self, key: str, obj: Any = None, *, aliases: Sequence[str] = ()):
        """Register ``obj`` under ``key``; usable as a decorator when ``obj`` is omitted.

        Registries constructed with ``instantiate=True`` (:data:`PROTOCOLS`,
        :data:`CHANNELS`, :data:`DRIVERS` — whose entries are stateless
        strategy objects) store an *instance* when a class is decorated; every
        other registry stores the class itself.  The decorated object is
        returned unchanged either way.
        """
        if obj is None:
            return lambda target: self.register(key, target, aliases=aliases) or target

        canonical = str(key)
        squashed = _squash(canonical)
        if not squashed:
            raise RegistryError(f"cannot register an empty {self.kind} key")
        for candidate in (squashed, *map(_squash, aliases)):
            if candidate in self._aliases:
                raise RegistryError(
                    f"duplicate {self.kind} registration: {candidate!r} already "
                    f"resolves to {self._aliases[candidate]!r}"
                )
        entry = obj() if self._instantiate and isinstance(obj, type) else obj
        if hasattr(entry, "key") and getattr(entry, "key", None) is None:
            try:
                entry.key = canonical
            except (AttributeError, dataclasses.FrozenInstanceError):
                pass
        self._entries[canonical] = entry
        self._aliases[squashed] = canonical
        for alias in aliases:
            self._aliases[_squash(alias)] = canonical
        return obj

    # -- lookup ---------------------------------------------------------------------------
    def _ensure_builtins(self) -> None:
        if self._builtins_loaded:
            return
        self._builtins_loaded = True
        for module in self._builtin_modules:
            importlib.import_module(module)

    def canonical(self, key: str) -> str:
        """The canonical key ``key`` resolves to, or a listing RegistryError."""
        self._ensure_builtins()
        if isinstance(key, str) and key in self._entries:
            return key
        resolved = self._aliases.get(_squash(key))
        if resolved is None:
            available = ", ".join(self._entries) or "(none registered)"
            extra_aliases = sorted(
                alias for alias, target in self._aliases.items() if alias != _squash(target)
            )
            alias_note = f" (aliases: {', '.join(extra_aliases)})" if extra_aliases else ""
            raise RegistryError(
                f"unknown {self.kind} {key!r}; available: {available}{alias_note}"
            )
        return resolved

    def get(self, key: str) -> Any:
        """The component registered under ``key`` (alias-tolerant)."""
        canonical = self.canonical(key)
        entry = self._entries[canonical]
        if self._validator is not None and canonical not in self._validated:
            self._validator(canonical, entry)
            self._validated.add(canonical)
        return entry

    def validate_all(self) -> None:
        """Run the contract check on every registered entry (test hook)."""
        self._ensure_builtins()
        for key in list(self._entries):
            self.get(key)

    # -- mapping protocol -----------------------------------------------------------------
    def keys(self) -> list[str]:
        self._ensure_builtins()
        return list(self._entries)

    def items(self) -> list[tuple[str, Any]]:
        self._ensure_builtins()
        return [(key, self.get(key)) for key in self._entries]

    def __contains__(self, key: object) -> bool:
        try:
            self.canonical(str(key))
        except RegistryError:
            return False
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        self._ensure_builtins()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, keys={self.keys()!r})"


# -- plugin contracts ---------------------------------------------------------------------
class ProtocolPlugin:
    """Everything the simulator needs to know to run one protocol key.

    Subclasses implement the three builders and may override the derived-bound
    hooks.  ``protocol_classes`` lists every :class:`~repro.core.protocol.Protocol`
    subclass the plugin instantiates; registration validates that each one
    declares the shareable contract the cohort runtime requires
    (``shareable``, ``shared_observation_attr``, and a ``cohort_key``
    override whenever ``shareable`` is true — see the PR 4 notes in
    ROADMAP.md).
    """

    #: Canonical registry key; filled in at registration.
    key: Optional[str] = None
    #: Protocol classes this plugin instantiates (checked for the contract).
    protocol_classes: tuple = ()

    def build(self, config) -> Any:
        """An honest protocol instance for ``config`` (a ScenarioConfig)."""
        raise NotImplementedError

    def build_liar(self, config, fake_message) -> Any:
        """A lying device: runs the honest protocol preloaded with ``fake_message``."""
        raise NotImplementedError

    def build_schedule(self, deployment, config) -> Any:
        """The TDMA schedule this protocol runs on."""
        raise NotImplementedError

    # -- derived-bound hooks (overridable) ------------------------------------------------
    def pipeline_hops(self, config, map_extent: float) -> int:
        """Hop count entering the generous round cap (default: radio-range hops)."""
        return max(1, int(math.ceil(map_extent / max(config.radius, 1e-9))))

    def bits_per_hop(self, config, num_slots: int) -> int:
        """1Hop bits one hop of progress costs (MultiPathRB streams whole frames)."""
        return 1

    def airtime_multiplier(self, message_length: int) -> int:
        """Payload bits one slotted round occupies on the air (epidemic: whole frames)."""
        return 1


class ChannelPlugin:
    """Builds a :class:`~repro.sim.radio.Channel` from a ScenarioConfig."""

    key: Optional[str] = None

    def build(self, config) -> Any:
        raise NotImplementedError


# -- contract validators ------------------------------------------------------------------
def _validate_protocol_plugin(key: str, plugin: Any) -> None:
    for method in ("build", "build_liar", "build_schedule"):
        if not callable(getattr(plugin, method, None)):
            raise RegistryError(f"protocol {key!r} plugin lacks a callable {method}()")
    classes = tuple(getattr(plugin, "protocol_classes", ()))
    if not classes:
        raise RegistryError(
            f"protocol {key!r} must declare protocol_classes (the Protocol "
            "subclasses it instantiates) so the cohort-runtime contract can be checked"
        )
    from .core.protocol import Protocol

    for cls in classes:
        shareable = getattr(cls, "shareable", None)
        if not isinstance(shareable, bool):
            raise RegistryError(
                f"protocol {key!r}: {cls.__name__} must declare 'shareable' as a bool"
            )
        if not hasattr(cls, "shared_observation_attr"):
            raise RegistryError(
                f"protocol {key!r}: {cls.__name__} must declare 'shared_observation_attr'"
            )
        if shareable and cls.cohort_key is Protocol.cohort_key:
            raise RegistryError(
                f"protocol {key!r}: {cls.__name__} is shareable but does not override "
                "cohort_key(); the cohort runtime cannot group it safely"
            )
    _require_picklable("protocol", key, plugin)


def _validate_channel_plugin(key: str, plugin: Any) -> None:
    if not callable(getattr(plugin, "build", None)):
        raise RegistryError(f"channel {key!r} plugin lacks a callable build()")
    _require_picklable("channel", key, plugin)


def _validate_factory_class(kind: str):
    def validate(key: str, cls: Any) -> None:
        if not (isinstance(cls, type) and dataclasses.is_dataclass(cls)):
            raise RegistryError(
                f"{kind} {key!r} must be a dataclass *class* so "
                "fingerprint_payload() can reduce its instances stably"
            )
        if not callable(cls):
            raise RegistryError(f"{kind} {key!r} must be callable")
        _require_picklable(kind, key, cls)

    return validate


def _require_picklable(kind: str, key: str, obj: Any) -> None:
    try:
        pickle.dumps(obj)
    except Exception as exc:
        raise RegistryError(
            f"{kind} {key!r} is not picklable ({exc}); registered components must "
            "survive the parallel sweep executor's process boundary"
        ) from exc


def _validate_experiment_spec(key: str, spec: Any) -> None:
    name = getattr(spec, "name", None)
    if not isinstance(name, str) or not name:
        raise RegistryError(f"experiment {key!r} must be an ExperimentSpec with a name")


def _validate_executor_backend(key: str, cls: Any) -> None:
    if not isinstance(cls, type):
        raise RegistryError(
            f"executor backend {key!r} must be a class (construction needs the "
            "executor's knobs, so instances cannot be shared)"
        )
    for method in ("from_knobs", "run_attempts", "close"):
        if not callable(getattr(cls, method, None)):
            raise RegistryError(f"executor backend {key!r} lacks a callable {method}()")


def _validate_store_backend(key: str, cls: Any) -> None:
    if not isinstance(cls, type):
        raise RegistryError(
            f"store backend {key!r} must be a class (constructed per cache directory)"
        )
    for method in ("get", "put", "contains"):
        if not callable(getattr(cls, method, None)):
            raise RegistryError(f"store backend {key!r} lacks a callable {method}()")


# -- the registries -----------------------------------------------------------------------
_CORE_PROTOCOL_MODULES = (
    "repro.core.neighborwatch",
    "repro.core.multipath",
    "repro.core.epidemic",
)

PROTOCOLS = Registry(
    "protocol",
    validator=_validate_protocol_plugin,
    builtin_modules=_CORE_PROTOCOL_MODULES,
    instantiate=True,
)
CHANNELS = Registry(
    "channel",
    validator=_validate_channel_plugin,
    builtin_modules=("repro.sim.radio",),
    instantiate=True,
)
DEPLOYMENTS = Registry(
    "deployment",
    validator=_validate_factory_class("deployment"),
    builtin_modules=("repro.experiments.factories",),
)
FAULT_PLANS = Registry(
    "fault plan",
    validator=_validate_factory_class("fault plan"),
    builtin_modules=("repro.experiments.factories",),
)
METRICS = Registry("metric", builtin_modules=("repro.experiments.metrics",))
DRIVERS = Registry("driver", builtin_modules=("repro.experiments.driver",), instantiate=True)
EXPERIMENT_SPECS = Registry(
    "experiment",
    validator=_validate_experiment_spec,
    builtin_modules=("repro.experiments.builtin",),
)
EXECUTOR_BACKENDS = Registry(
    "executor backend",
    validator=_validate_executor_backend,
    builtin_modules=("repro.sim.backends", "repro.service.backend"),
)
STORE_BACKENDS = Registry(
    "store backend",
    validator=_validate_store_backend,
    builtin_modules=("repro.store.shared",),
)


def register_protocol(key: str, *, aliases: Sequence[str] = ()):
    """Class decorator registering a :class:`ProtocolPlugin` under ``key``."""
    return PROTOCOLS.register(key, aliases=aliases)


def register_channel(key: str, *, aliases: Sequence[str] = ()):
    """Class decorator registering a :class:`ChannelPlugin` under ``key``."""
    return CHANNELS.register(key, aliases=aliases)


def register_deployment(key: str, *, aliases: Sequence[str] = ()):
    """Class decorator registering a picklable deployment-factory dataclass."""
    return DEPLOYMENTS.register(key, aliases=aliases)


def register_fault_plan(key: str, *, aliases: Sequence[str] = ()):
    """Class decorator registering a picklable fault-plan factory dataclass."""
    return FAULT_PLANS.register(key, aliases=aliases)


def register_metric(key: str, *, aliases: Sequence[str] = ()):
    """Decorator registering a row builder ``(ctx, tasks, points) -> rows``."""
    return METRICS.register(key, aliases=aliases)


def register_driver(key: str, *, aliases: Sequence[str] = ()):
    """Class decorator registering an experiment driver."""
    return DRIVERS.register(key, aliases=aliases)


def register_experiment_spec(spec, *, aliases: Sequence[str] = ()):
    """Register an :class:`~repro.experiments.spec.ExperimentSpec` under its name."""
    return EXPERIMENT_SPECS.register(spec.name, spec, aliases=aliases)


def register_executor_backend(key: str, *, aliases: Sequence[str] = ()):
    """Class decorator registering an :class:`~repro.sim.backends.ExecutorBackend`."""
    return EXECUTOR_BACKENDS.register(key, aliases=aliases)


def register_store_backend(key: str, *, aliases: Sequence[str] = ()):
    """Class decorator registering a :class:`~repro.store.ResultStore` variant."""
    return STORE_BACKENDS.register(key, aliases=aliases)
