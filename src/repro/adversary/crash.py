"""Crash failures.

Crashed devices take no steps at all: they never broadcast, never acknowledge
and never relay.  In the paper's first experiment (Figure 5) varying the
number of crashed devices is how the *effective deployment density* is varied,
and each protocol's completion percentage is measured as a function of it.

In the simulator a crashed device is simply a :class:`~repro.sim.node.SimNode`
with no protocol attached; these helpers compute which devices to crash for a
target density or survivor count.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..topology.deployment import Deployment
from .placement import random_fault_selection

__all__ = ["crashes_for_target_density", "crashes_for_survivor_count", "survivors"]


def crashes_for_survivor_count(
    deployment: Deployment,
    survivors_count: int,
    *,
    rng: np.random.Generator | int | None = None,
) -> list[int]:
    """Crash devices uniformly at random so that ``survivors_count`` remain active."""
    n = deployment.num_nodes
    if not (1 <= survivors_count <= n):
        raise ValueError("survivors_count must be between 1 and the deployment size")
    crash_count = n - survivors_count
    return random_fault_selection(n, crash_count, exclude=[deployment.source_index], rng=rng)


def crashes_for_target_density(
    deployment: Deployment,
    target_density: float,
    *,
    rng: np.random.Generator | int | None = None,
) -> list[int]:
    """Crash devices so that the density of *active* devices matches ``target_density``."""
    if target_density <= 0:
        raise ValueError("target_density must be positive")
    survivors_count = int(round(target_density * deployment.area))
    survivors_count = max(1, min(survivors_count, deployment.num_nodes))
    return crashes_for_survivor_count(deployment, survivors_count, rng=rng)


def survivors(num_nodes: int, crashed: Sequence[int]) -> list[int]:
    """Indices of devices that did not crash."""
    crashed_set = set(int(i) for i in crashed)
    return [i for i in range(num_nodes) if i not in crashed_set]
