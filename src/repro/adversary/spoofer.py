"""Scripted and spoofing adversaries used by the correctness tests.

Theorem 1 and Theorem 2 are adversarial statements: *whatever* a Byzantine
device broadcasts, a receiver never accepts a pair/message the honest sender
did not send, and any disruption costs the adversary budget.  To test them we
need adversaries that can inject arbitrary frames at arbitrary rounds — spoof
a data bit, forge an acknowledgement, suppress nothing (impossible), or jam a
veto round.  :class:`ScriptedAdversary` executes an explicit per-round script;
:class:`BitFlipSpoofer` targets the data rounds of a victim slot to try to
flip the transmitted bits (the classic spoofing attack the 2Bit-Protocol's
acknowledgement/veto structure defends against).
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from ..core.messages import Frame, FrameKind
from .base import Adversary

__all__ = ["ScriptedAdversary", "BitFlipSpoofer"]

#: A script maps ``(cycle, slot, phase)`` to the frame kind to broadcast.
Script = Mapping[tuple[int, int, int], FrameKind]


class ScriptedAdversary(Adversary):
    """Broadcast exactly the frames listed in an explicit script.

    The script maps ``(cycle, slot, phase)`` triples to frame kinds; rounds not
    in the script are silent.  A ``predicate`` variant accepts a callable for
    open-ended behaviours (e.g. "jam phase 4 of every slot of cycle 0").

    ``shareable = False`` (inherited, restated): scripts and budgets are
    per-device, so scripted adversaries always run as singleton cohorts.
    """

    shareable = False

    def __init__(
        self,
        script: Optional[Script] = None,
        *,
        predicate: Optional[Callable[[int, int, int], Optional[FrameKind]]] = None,
        budget: Optional[int] = None,
    ) -> None:
        super().__init__(budget)
        if script is None and predicate is None:
            raise ValueError("provide a script or a predicate")
        self._script = dict(script) if script is not None else {}
        self._predicate = predicate

    def _frame_kind_for(self, cycle: int, slot: int, phase: int) -> Optional[FrameKind]:
        kind = self._script.get((cycle, slot, phase))
        if kind is None and self._predicate is not None:
            kind = self._predicate(cycle, slot, phase)
        return kind

    def wants_slot(self, slot_cycle: int, slot: int) -> bool:
        if self.budget.exhausted:
            return False
        if self._predicate is not None:
            return True
        return any((c, s) == (slot_cycle, slot) for (c, s, _p) in self._script)

    def act(self, slot_cycle: int, slot: int, phase: int) -> Optional[Frame]:
        kind = self._frame_kind_for(slot_cycle, slot, phase)
        if kind is None:
            return None
        if not self.budget.spend():
            return None
        return Frame(kind, self.context.node_id)


class BitFlipSpoofer(Adversary):
    """Attack a victim slot by broadcasting during its data rounds.

    Broadcasting during round R1/R3 of a slot in which the honest sender stays
    silent makes receivers believe a ``1`` was sent where the sender meant
    ``0`` — the acknowledgement round then disagrees with the sender's view
    and the sender vetoes, so the exchange fails rather than delivering a
    corrupted bit.  This adversary lets the tests exercise exactly that path.
    """

    def __init__(
        self,
        victim_slot: int,
        *,
        phases: tuple[int, ...] = (0, 2),
        budget: Optional[int] = None,
        start_cycle: int = 0,
        end_cycle: Optional[int] = None,
    ) -> None:
        super().__init__(budget)
        self.victim_slot = int(victim_slot)
        self.phases = tuple(int(p) for p in phases)
        self.start_cycle = int(start_cycle)
        self.end_cycle = end_cycle

    def _active(self, cycle: int) -> bool:
        if cycle < self.start_cycle:
            return False
        if self.end_cycle is not None and cycle > self.end_cycle:
            return False
        return True

    def wants_slot(self, slot_cycle: int, slot: int) -> bool:
        return slot == self.victim_slot and self._active(slot_cycle) and not self.budget.exhausted

    def act(self, slot_cycle: int, slot: int, phase: int) -> Optional[Frame]:
        if slot != self.victim_slot or phase not in self.phases or not self._active(slot_cycle):
            return None
        if not self.budget.spend():
            return None
        return Frame(FrameKind.DATA_BIT, self.context.node_id, (1,))
