"""Base class for explicitly adversarial device behaviours.

Byzantine devices come in two flavours in this reproduction, matching the
paper's evaluation:

* *protocol-abusing* devices — the lying devices of Section 6.1 — simply run
  the honest protocol classes preloaded with a fake message (see
  :mod:`repro.adversary.liar`); they need no special machinery.
* *channel-abusing* devices — jammers, spoofers, scripted attackers — do not
  follow the schedule at all.  They derive from :class:`Adversary`, which
  plugs into the simulation engine through the same
  :class:`~repro.core.protocol.Protocol` interface but may transmit during any
  slot (``may_transmit_anywhere``) and never delivers anything.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.messages import Bits
from ..core.protocol import Observation, Protocol
from .budget import BroadcastBudget

__all__ = ["Adversary"]


class Adversary(Protocol):
    """Common behaviour of channel-abusing Byzantine devices."""

    may_transmit_anywhere: bool = True

    #: Adversaries are never executed as shared cohorts.  Their behaviour is
    #: device-specific by nature (private RNG streams, per-device budgets,
    #: scripted rounds), and the cohort runtime additionally refuses to share
    #: any dishonest device — the declaration here makes the contract explicit
    #: for every subclass.
    shareable: bool = False

    def __init__(self, budget: Optional[int] = None) -> None:
        self.budget = BroadcastBudget(budget)

    # Adversaries do not, by default, care about any slot as listeners; the
    # engine consults :meth:`wants_slot` before every slot instead.
    def interests(self) -> Iterable[int]:
        return ()

    def observe(self, slot_cycle: int, slot: int, phase: int, observation: Observation) -> None:
        """Adversaries may inspect the channel; the default ignores it."""

    # -- outcome: adversaries never deliver anything ---------------------------------
    @property
    def delivered(self) -> bool:
        return False

    @property
    def delivered_message(self) -> Optional[Bits]:
        return None

    @property
    def broadcasts_spent(self) -> int:
        """Broadcasts charged against the adversarial budget so far."""
        return self.budget.spent
