"""Broadcast budgets for Byzantine devices.

The paper's running-time analysis is parameterised by ``beta``, the maximum
number of broadcasts Byzantine devices perform per neighborhood: continual
jamming would trivially prevent termination but is not sustainable (it drains
batteries and exposes the jammers), so the adversary is charged for every
broadcast and the protocols guarantee delivery within ``O(beta*D + log|Sigma|)``
rounds.  :class:`BroadcastBudget` implements that accounting for the simulated
adversaries; an unlimited budget (``None``) reproduces the paper's lying
experiments, which do not bound the malicious devices.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["BroadcastBudget"]


class BroadcastBudget:
    """Counter of adversarial broadcasts with an optional cap."""

    __slots__ = ("_limit", "_spent")

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 0:
            raise ValueError("budget limit must be non-negative")
        self._limit = limit
        self._spent = 0

    @property
    def limit(self) -> Optional[int]:
        return self._limit

    @property
    def spent(self) -> int:
        """Broadcasts performed so far."""
        return self._spent

    @property
    def remaining(self) -> Optional[int]:
        """Broadcasts still allowed (``None`` for an unlimited budget)."""
        if self._limit is None:
            return None
        return max(self._limit - self._spent, 0)

    @property
    def exhausted(self) -> bool:
        return self._limit is not None and self._spent >= self._limit

    def can_spend(self, amount: int = 1) -> bool:
        """Whether ``amount`` more broadcasts fit in the budget."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if self._limit is None:
            return True
        return self._spent + amount <= self._limit

    def spend(self, amount: int = 1) -> bool:
        """Consume ``amount`` broadcasts; returns False (and spends nothing) if over budget."""
        if not self.can_spend(amount):
            return False
        self._spent += amount
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BroadcastBudget(limit={self._limit}, spent={self._spent})"
