"""Lying devices: Byzantine nodes that propagate a fake message.

The paper simulates its "malicious attack" scenario by initialising corrupt
devices with a fake message while otherwise running the correct protocol
(Section 6.1): they look perfectly well-behaved to their neighbors, which is
what makes the attack dangerous.  Concretely:

* for **NeighborWatchRB** the lying devices act as sources initialised with
  the fake message — they try to relay the fake bits through their square's
  broadcast interval, and succeed only if no honest device shares (and
  therefore vetoes) the square;
* for **MultiPathRB** the lying devices broadcast COMMIT messages for the fake
  value and never relay HEARD messages from correct nodes;
* for the **epidemic** baseline a lying device simply floods the fake payload
  (the baseline has no defence whatsoever, which is the paper's point).

How each protocol's liar is *constructed* is owned by that protocol's
registered plugin (``ProtocolPlugin.build_liar``, the path the simulation
builder takes); the helpers here are thin conveniences that delegate through
``repro.registry.PROTOCOLS``, so there is exactly one construction rule per
protocol.

Cohort runtime note: although the honest protocol *classes* used here are
``shareable``, the devices built by these factories are registered with
``honest=False`` in the simulation, and the cohort runtime never shares
dishonest devices — every lying device runs as a singleton cohort, exactly as
the scalar oracle executes it (their ``preloaded_message`` also keys them
apart from honest cohorts via ``cohort_key``, as defence in depth).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..core.epidemic import EpidemicNode
from ..core.messages import Bits, validate_bits
from ..core.multipath import MultiPathNode
from ..core.neighborwatch import NeighborWatchConfig, NeighborWatchNode
from ..core.protocol import Protocol
from ..registry import PROTOCOLS

__all__ = [
    "fake_message_for",
    "lying_neighborwatch_node",
    "lying_multipath_node",
    "lying_epidemic_node",
    "lying_node_factory",
]


def fake_message_for(message: Iterable[int]) -> Bits:
    """The canonical fake message used in the lying experiments.

    The complement of the true message maximises the damage of a successful
    lie (every bit differs), matching the spirit of the paper's evaluation
    where corrupt devices try to persuade honest devices to adopt an
    *incorrect value*.
    """
    bits = validate_bits(message)
    return tuple(1 - b for b in bits)


def _plugin_liar(protocol: str, fake_message: Sequence[int], *, tolerance: int = 3) -> Protocol:
    """Build a liar through the protocol plugin (the single construction rule)."""
    from ..sim.config import ScenarioConfig

    scenario = ScenarioConfig(protocol=protocol, multipath_tolerance=int(tolerance))
    return PROTOCOLS.get(scenario.protocol).build_liar(scenario, fake_message)


def lying_neighborwatch_node(
    fake_message: Sequence[int], config: Optional[NeighborWatchConfig] = None
) -> NeighborWatchNode:
    """A NeighborWatchRB device preloaded with a fake message.

    An explicit ``config`` (e.g. a custom voting rule) bypasses the plugin's
    default; ``None`` delegates to the registered construction rule.
    """
    if config is not None:
        return NeighborWatchNode(config=config, preloaded_message=fake_message)
    return _plugin_liar("neighborwatch", fake_message)


def lying_multipath_node(
    fake_message: Sequence[int], tolerance: int = 3
) -> MultiPathNode:
    """A MultiPathRB device that floods fake COMMITs and suppresses HEARD relays."""
    return _plugin_liar("multipath", fake_message, tolerance=tolerance)


def lying_epidemic_node(fake_message: Sequence[int]) -> EpidemicNode:
    """An epidemic device that floods a fake payload."""
    return _plugin_liar("epidemic", fake_message)


def lying_node_factory(protocol: str, fake_message: Sequence[int], **kwargs) -> Protocol:
    """Dispatch helper: a lying device for any registered protocol key.

    ``protocol`` is a registry key or alias (``"neighborwatch"``, ``"nw2"``,
    ``"multipath"``, ...); keyword arguments are forwarded where meaningful
    (``tolerance`` for MultiPathRB, an explicit NeighborWatch ``config``).
    Unknown keys raise a listing :class:`~repro.registry.RegistryError`.
    """
    from ..core.neighborwatch import NeighborWatchPlugin

    canonical = PROTOCOLS.canonical(protocol)
    config = kwargs.get("config")
    if config is not None and isinstance(PROTOCOLS.get(canonical), NeighborWatchPlugin):
        # The explicit-config override only exists for the NeighborWatch
        # family (a custom voting rule); other protocols always take their
        # plugin's construction rule.
        return NeighborWatchNode(config=config, preloaded_message=fake_message)
    return _plugin_liar(canonical, fake_message, tolerance=int(kwargs.get("tolerance", 3)))
