"""Lying devices: Byzantine nodes that propagate a fake message.

The paper simulates its "malicious attack" scenario by initialising corrupt
devices with a fake message while otherwise running the correct protocol
(Section 6.1): they look perfectly well-behaved to their neighbors, which is
what makes the attack dangerous.  Concretely:

* for **NeighborWatchRB** the lying devices act as sources initialised with
  the fake message — they try to relay the fake bits through their square's
  broadcast interval, and succeed only if no honest device shares (and
  therefore vetoes) the square;
* for **MultiPathRB** the lying devices broadcast COMMIT messages for the fake
  value and never relay HEARD messages from correct nodes;
* for the **epidemic** baseline a lying device simply floods the fake payload
  (the baseline has no defence whatsoever, which is the paper's point).

These helpers construct appropriately preloaded instances of the honest
protocol classes so the simulation engine treats them exactly like any other
device (their dishonesty lives purely in their initial state and configuration).

Cohort runtime note: although the honest protocol *classes* used here are
``shareable``, the devices built by these factories are registered with
``honest=False`` in the simulation, and the cohort runtime never shares
dishonest devices — every lying device runs as a singleton cohort, exactly as
the scalar oracle executes it (their ``preloaded_message`` also keys them
apart from honest cohorts via ``cohort_key``, as defence in depth).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..core.epidemic import EpidemicConfig, EpidemicNode
from ..core.messages import Bits, validate_bits
from ..core.multipath import MultiPathConfig, MultiPathNode
from ..core.neighborwatch import NeighborWatchConfig, NeighborWatchNode
from ..core.protocol import Protocol

__all__ = [
    "fake_message_for",
    "lying_neighborwatch_node",
    "lying_multipath_node",
    "lying_epidemic_node",
    "lying_node_factory",
]


def fake_message_for(message: Iterable[int]) -> Bits:
    """The canonical fake message used in the lying experiments.

    The complement of the true message maximises the damage of a successful
    lie (every bit differs), matching the spirit of the paper's evaluation
    where corrupt devices try to persuade honest devices to adopt an
    *incorrect value*.
    """
    bits = validate_bits(message)
    return tuple(1 - b for b in bits)


def lying_neighborwatch_node(
    fake_message: Sequence[int], config: Optional[NeighborWatchConfig] = None
) -> NeighborWatchNode:
    """A NeighborWatchRB device preloaded with a fake message."""
    return NeighborWatchNode(config=config, preloaded_message=fake_message)


def lying_multipath_node(
    fake_message: Sequence[int], tolerance: int = 3
) -> MultiPathNode:
    """A MultiPathRB device that floods fake COMMITs and suppresses HEARD relays."""
    config = MultiPathConfig(tolerance=tolerance, relay_heard=False)
    return MultiPathNode(config=config, preloaded_message=fake_message)


def lying_epidemic_node(fake_message: Sequence[int]) -> EpidemicNode:
    """An epidemic device that floods a fake payload."""
    return EpidemicNode(config=EpidemicConfig(), preloaded_message=fake_message)


def lying_node_factory(protocol: str, fake_message: Sequence[int], **kwargs) -> Protocol:
    """Dispatch helper used by the simulation builder.

    ``protocol`` is one of ``"neighborwatch"``, ``"neighborwatch2"``,
    ``"multipath"`` or ``"epidemic"``; keyword arguments are forwarded to the
    specific constructor (e.g. ``tolerance`` for MultiPathRB).
    """
    name = protocol.lower()
    if name in ("neighborwatch", "nw"):
        return lying_neighborwatch_node(fake_message, config=kwargs.get("config"))
    if name in ("neighborwatch2", "nw2"):
        config = kwargs.get("config") or NeighborWatchConfig(votes_required=2)
        return lying_neighborwatch_node(fake_message, config=config)
    if name in ("multipath", "mp"):
        return lying_multipath_node(fake_message, tolerance=int(kwargs.get("tolerance", 3)))
    if name in ("epidemic", "flood"):
        return lying_epidemic_node(fake_message)
    raise ValueError(f"unknown protocol {protocol!r}")
