"""Selection and placement of faulty devices.

The experiments need to decide *which* devices misbehave.  The paper's
evaluation mostly corrupts devices uniformly at random (a fixed fraction of
the deployment, never the source); the theory, by contrast, is a worst-case
statement over placements, so the tests also use targeted placements —
concentrating the adversaries inside a single square or a single neighborhood
— to exercise the tolerance thresholds exactly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.regions import SquareGrid
from ..topology.geometry import as_positions

__all__ = [
    "random_fault_selection",
    "fraction_to_count",
    "faults_in_square",
    "faults_in_neighborhood",
    "max_faults_per_neighborhood",
]


def fraction_to_count(num_nodes: int, fraction: float) -> int:
    """Number of faulty devices corresponding to a population fraction."""
    if not (0.0 <= fraction <= 1.0):
        raise ValueError("fraction must be in [0, 1]")
    return int(round(num_nodes * fraction))


def random_fault_selection(
    num_nodes: int,
    count: int,
    *,
    exclude: Sequence[int] = (),
    rng: np.random.Generator | int | None = None,
) -> list[int]:
    """Select ``count`` devices uniformly at random, never picking ``exclude``.

    The broadcast source is always excluded by the callers (a faulty source
    makes the problem vacuous — there is nothing authentic to deliver).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    gen = np.random.default_rng(rng)
    excluded = set(int(i) for i in exclude)
    candidates = [i for i in range(num_nodes) if i not in excluded]
    if count > len(candidates):
        raise ValueError(f"cannot select {count} faulty devices out of {len(candidates)} candidates")
    picked = gen.choice(len(candidates), size=count, replace=False) if count else np.empty(0, dtype=int)
    return sorted(int(candidates[i]) for i in picked)


def faults_in_square(
    positions: np.ndarray,
    grid: SquareGrid,
    square: tuple[int, int],
    *,
    exclude: Sequence[int] = (),
) -> list[int]:
    """All devices inside one square of the partition (targeted worst case).

    Corrupting every device of a square is exactly the scenario in which plain
    NeighborWatchRB loses authenticity, so the tests use this placement to
    verify both the failure mode and the 2-voting variant's defence.
    """
    excluded = set(int(i) for i in exclude)
    occupancy = grid.occupancy(as_positions(positions))
    return sorted(i for i in occupancy.get(square, []) if i not in excluded)


def faults_in_neighborhood(
    positions: np.ndarray,
    center: Sequence[float],
    radius: float,
    count: int,
    *,
    norm: str = "l2",
    exclude: Sequence[int] = (),
    rng: np.random.Generator | int | None = None,
) -> list[int]:
    """Select up to ``count`` devices within one neighborhood (targeted jamming)."""
    gen = np.random.default_rng(rng)
    pos = as_positions(positions)
    c = np.asarray(center, dtype=float)
    if norm == "linf":
        dist = np.max(np.abs(pos - c[None, :]), axis=1)
    else:
        dist = np.sqrt(np.sum((pos - c[None, :]) ** 2, axis=1))
    excluded = set(int(i) for i in exclude)
    candidates = [int(i) for i in np.nonzero(dist <= radius)[0] if int(i) not in excluded]
    if count >= len(candidates):
        return sorted(candidates)
    picked = gen.choice(len(candidates), size=count, replace=False)
    return sorted(int(candidates[i]) for i in picked)


def max_faults_per_neighborhood(
    positions: np.ndarray, faulty: Sequence[int], radius: float, *, norm: str = "l2"
) -> int:
    """The parameter ``t`` realised by a placement: the maximum number of
    faulty devices within any single device's neighborhood."""
    pos = as_positions(positions)
    faulty_idx = np.asarray(sorted(set(int(i) for i in faulty)), dtype=int)
    if faulty_idx.size == 0:
        return 0
    fpos = pos[faulty_idx]
    diff = pos[:, None, :] - fpos[None, :, :]
    if norm == "linf":
        dist = np.max(np.abs(diff), axis=-1)
    else:
        dist = np.sqrt(np.sum(diff**2, axis=-1))
    return int((dist <= radius).sum(axis=1).max())
