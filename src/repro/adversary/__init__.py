"""Fault and adversary models: crash, jamming, lying, spoofing."""

from .base import Adversary
from .budget import BroadcastBudget
from .crash import crashes_for_survivor_count, crashes_for_target_density, survivors
from .jammer import ContinuousJammer, VetoJammer
from .liar import (
    fake_message_for,
    lying_epidemic_node,
    lying_multipath_node,
    lying_neighborwatch_node,
    lying_node_factory,
)
from .placement import (
    faults_in_neighborhood,
    faults_in_square,
    fraction_to_count,
    max_faults_per_neighborhood,
    random_fault_selection,
)
from .spoofer import BitFlipSpoofer, ScriptedAdversary

__all__ = [
    "Adversary",
    "BroadcastBudget",
    "crashes_for_survivor_count",
    "crashes_for_target_density",
    "survivors",
    "ContinuousJammer",
    "VetoJammer",
    "fake_message_for",
    "lying_epidemic_node",
    "lying_multipath_node",
    "lying_neighborwatch_node",
    "lying_node_factory",
    "faults_in_neighborhood",
    "faults_in_square",
    "fraction_to_count",
    "max_faults_per_neighborhood",
    "random_fault_selection",
    "BitFlipSpoofer",
    "ScriptedAdversary",
]
