"""Jamming adversaries.

The paper's jamming experiments (Section 6.1) select 10% of the devices at
random, give each a broadcast budget, and have every malicious device
broadcast a jamming message in each veto round with probability 1/5 — a value
the authors found to be approximately optimal for the jammers, because it
avoids wasting budget on redundant jamming.  :class:`VetoJammer` reproduces
exactly that behaviour; :class:`ContinuousJammer` is a stress variant that
jams every round of every slot until its budget runs out (useful to verify
that the protocols degrade linearly with the budget, never worse).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.messages import Frame, FrameKind
from ..core.protocol import Observation
from .base import Adversary

__all__ = ["VetoJammer", "ContinuousJammer"]

#: The two veto phases of the six-round broadcast interval.
VETO_PHASES = (4, 5)


class VetoJammer(Adversary):
    """Jam veto rounds with a fixed probability, subject to a broadcast budget.

    ``shareable = False`` (inherited from :class:`Adversary`, restated for
    emphasis): every jamming decision consumes this device's *private* RNG
    stream in ``wants_slot``, so sharing one machine across jammers would move
    their stream positions — the cohort runtime must treat each jammer as a
    singleton, and does.

    Parameters
    ----------
    budget:
        Maximum number of jamming broadcasts (``None`` for unlimited).
    jam_probability:
        Probability of jamming each targeted phase of each slot (paper: 1/5).
    rng:
        Seeded generator driving the jamming decisions.
    target_phases:
        Phases of the slot to target; defaults to the veto rounds, which is
        where a single broadcast does the most damage (it converts an entire
        otherwise-successful 2Bit exchange into a failure).
    """

    def __init__(
        self,
        budget: Optional[int] = None,
        *,
        jam_probability: float = 0.2,
        rng: Optional[np.random.Generator] = None,
        target_phases: tuple[int, ...] = VETO_PHASES,
    ) -> None:
        super().__init__(budget)
        if not (0.0 <= jam_probability <= 1.0):
            raise ValueError("jam_probability must be in [0, 1]")
        if not target_phases:
            raise ValueError("target_phases must not be empty")
        self.jam_probability = float(jam_probability)
        self.target_phases = tuple(int(p) for p in target_phases)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._planned: dict[int, bool] = {}

    def wants_slot(self, slot_cycle: int, slot: int) -> bool:
        """Decide (and cache) whether any phase of this slot will be jammed."""
        if self.budget.exhausted:
            return False
        decisions = {
            phase: bool(self._rng.random() < self.jam_probability) for phase in self.target_phases
        }
        self._planned = decisions
        return any(decisions.values())

    def act(self, slot_cycle: int, slot: int, phase: int) -> Optional[Frame]:
        if not self._planned.get(phase, False):
            return None
        if not self.budget.spend():
            return None
        return self._interned_frame(FrameKind.JAM)

    def observe(self, slot_cycle: int, slot: int, phase: int, observation: Observation) -> None:
        # A veto jammer does not adapt to what it hears.
        return


class ContinuousJammer(Adversary):
    """Jam every phase of every slot until the budget is exhausted.

    This is the most aggressive behaviour the model allows; with budget
    ``beta`` it delays delivery by Theta(beta) slots per hop, which is the
    worst case the running-time analysis (Theorem 5) charges for.
    """

    def __init__(self, budget: Optional[int] = None) -> None:
        super().__init__(budget)

    def wants_slot(self, slot_cycle: int, slot: int) -> bool:
        return not self.budget.exhausted

    def act(self, slot_cycle: int, slot: int, phase: int) -> Optional[Frame]:
        if not self.budget.spend():
            return None
        return self._interned_frame(FrameKind.JAM)
