"""NeighborWatchRB: multi-hop authenticated broadcast via meta-node squares.

The plane is partitioned into squares small enough that any device in a square
can talk directly to any device in the eight neighboring squares.  All honest
devices in a square behave identically — they form a single *meta-node* — and
actively prevent any device of their square from disseminating information the
whole square has not committed to ("neighborhood watch").  Concretely:

* every device maintains, for each neighboring square (plus the source, when
  in range), a 1Hop-Protocol receiver buffering the bits that square has
  authentically relayed so far;
* a device *commits* to bit ``i`` once it has received bits ``1..i`` from one
  of those neighbors (the **2-voting** variant requires two distinct
  neighboring squares to agree on the prefix; bits heard directly from the
  source always suffice on their own because Theorem 2 authenticates them);
* during its own square's broadcast interval a device acts as a 1Hop sender
  for its next committed-but-not-yet-relayed bit; devices of the square with
  nothing new to send *block* the interval by broadcasting in both veto
  rounds, so data leaves the square only when every honest member has
  committed to it;
* an idle square also vetoes its own interval (the *idle veto*), so that a
  silent interval is never mistaken for a genuine ``(0, 0)`` pair by the
  neighbors (see DESIGN.md).

The protocol tolerates any number of Byzantine devices as long as every square
contains at least one honest device — ``t < ceil(R/2)^2`` in the analytical
model (Theorem 3) — and the 2-voting variant pushes this to roughly
``t < R^2 / 2`` because a fake bit must then be vouched for by two fully
Byzantine squares.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional

import numpy as np

from .messages import Bits, Frame, FrameKind, validate_bits
from .onehop import OneHopReceiver, OneHopSender
from .protocol import NodeContext, Observation, Protocol
from .schedule import SOURCE_SLOT, SquareSchedule
from .twobit import TwoBitBlocker

__all__ = ["NeighborWatchConfig", "NeighborWatchNode"]


class _Role(enum.Enum):
    """What the device is doing during the current slot."""

    IDLE = "idle"
    SENDER = "sender"
    BLOCKER = "blocker"
    RECEIVER = "receiver"


class NeighborWatchConfig:
    """Tunable parameters of NeighborWatchRB.

    Parameters
    ----------
    votes_required:
        ``1`` for plain NeighborWatchRB, ``2`` for the 2-voting variant.
    idle_veto:
        Whether devices veto their own square's interval when they have
        nothing to send.  Required for soundness of the parity scheme (see
        DESIGN.md); exposed for the ablation benchmark.
    """

    __slots__ = ("votes_required", "idle_veto")

    def __init__(self, votes_required: int = 1, idle_veto: bool = True) -> None:
        if votes_required not in (1, 2):
            raise ValueError("votes_required must be 1 or 2")
        self.votes_required = int(votes_required)
        self.idle_veto = bool(idle_veto)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NeighborWatchConfig(votes={self.votes_required}, idle_veto={self.idle_veto})"


class NeighborWatchNode(Protocol):
    """Per-device behaviour of NeighborWatchRB.

    Parameters
    ----------
    config:
        Protocol variant parameters.
    preloaded_message:
        When given, the device starts with this bit string already committed.
        The honest source uses it implicitly (via ``context.source_message``);
        the *lying* Byzantine devices of Section 6.1 are simulated exactly as
        the paper describes, by preloading them with a fake message while they
        otherwise run the correct protocol.
    """

    def __init__(
        self,
        config: Optional[NeighborWatchConfig] = None,
        *,
        preloaded_message: Optional[Iterable[int]] = None,
    ) -> None:
        self.config = config if config is not None else NeighborWatchConfig()
        self._preloaded = validate_bits(preloaded_message) if preloaded_message is not None else None
        self._committed: list[int] = []
        self._receivers: dict[int, OneHopReceiver] = {}
        self._sender = OneHopSender()
        self._role: _Role = _Role.IDLE
        self._active_receiver: Optional[OneHopReceiver] = None
        self._blocker: Optional[TwoBitBlocker] = None
        self._sending_active = False
        self._my_slot: int = -1
        self._is_source = False
        self._delivered_message: Optional[Bits] = None

    # -- setup ------------------------------------------------------------------------
    def setup(self, context: NodeContext) -> None:
        super().setup(context)
        schedule = context.schedule
        if not isinstance(schedule, SquareSchedule):
            raise TypeError("NeighborWatchRB requires a SquareSchedule")
        self._schedule = schedule
        self._is_source = context.is_source
        self._my_slot = schedule.slot_of_node(context.node_id)
        k = context.message_length

        if self._is_source:
            # The source behaves independently of any square: it already holds
            # the message and only ever transmits during the first interval.
            self._committed = list(context.source_message or ())
            self._sender.extend(self._committed)
            return

        if self._preloaded is not None:
            # Lying devices start with a (fake) message already committed.
            self._committed = list(self._preloaded[:k])
            self._sender.extend(self._committed)

        my_square = schedule.square_of_node(context.node_id)
        for neighbor in schedule.grid.neighbors(my_square):
            slot = schedule.slot_of_square(neighbor)
            if slot != self._my_slot:
                self._receivers.setdefault(slot, OneHopReceiver(expected_length=k))
        # Listen to the source only when it is actually within range; the
        # schedule gives every device the source's location, mirroring the
        # paper's assumption that slot 0 is known to belong to the source.
        src_pos = schedule.positions[schedule.source_index]
        my_pos = np.asarray(context.position, dtype=float)
        if self._schedule_norm_distance(my_pos, src_pos) <= context.radius + 1e-12:
            self._receivers[SOURCE_SLOT] = OneHopReceiver(expected_length=k)

    def _schedule_norm_distance(self, a: np.ndarray, b: np.ndarray) -> float:
        # The square partition guarantees range for neighbors; for the source we
        # measure with the Euclidean norm used by the simulation deployments.
        return float(np.sqrt(np.sum((np.asarray(a, float) - np.asarray(b, float)) ** 2)))

    # -- schedule interface ---------------------------------------------------------------
    def interests(self) -> Iterable[int]:
        if self._is_source:
            return (SOURCE_SLOT,)
        slots = set(self._receivers)
        slots.add(self._my_slot)
        return sorted(slots)

    # -- slot lifecycle ----------------------------------------------------------------------
    def _begin_slot(self, slot: int) -> None:
        self._role = _Role.IDLE
        self._active_receiver = None
        self._blocker = None
        self._sending_active = False

        if slot == self._my_slot:
            if self._sender.has_pending:
                self._role = _Role.SENDER
                self._sending_active = self._sender.begin_slot()
            elif self.config.idle_veto:
                self._role = _Role.BLOCKER
                self._blocker = TwoBitBlocker(always=True)
            else:
                self._role = _Role.BLOCKER
                self._blocker = TwoBitBlocker(always=False)
            return

        receiver = self._receivers.get(slot)
        if receiver is not None:
            if receiver.begin_slot():
                self._role = _Role.RECEIVER
                self._active_receiver = receiver
            else:
                self._role = _Role.IDLE

    def act(self, slot_cycle: int, slot: int, phase: int) -> Optional[Frame]:
        if phase == 0:
            self._begin_slot(slot)
        transmit = False
        kind = FrameKind.DATA_BIT
        if self._role is _Role.SENDER:
            transmit = self._sender.action(phase)
            kind = FrameKind.DATA_BIT if phase in (0, 2) else FrameKind.VETO
        elif self._role is _Role.BLOCKER and self._blocker is not None:
            transmit = self._blocker.action(phase)
            kind = FrameKind.VETO
        elif self._role is _Role.RECEIVER and self._active_receiver is not None:
            transmit = self._active_receiver.action(phase)
            kind = FrameKind.ACK if phase in (1, 3) else FrameKind.VETO
        if not transmit:
            return None
        return self._interned_frame(kind)

    def observe(self, slot_cycle: int, slot: int, phase: int, observation: Observation) -> None:
        busy = observation.busy
        if self._role is _Role.SENDER:
            self._sender.observe(phase, busy)
        elif self._role is _Role.BLOCKER and self._blocker is not None:
            self._blocker.observe(phase, busy)
        elif self._role is _Role.RECEIVER and self._active_receiver is not None:
            self._active_receiver.observe(phase, busy)

    def end_slot(self, slot_cycle: int, slot: int) -> None:
        if self._role is _Role.SENDER:
            self._sender.finish_slot()
        elif self._role is _Role.RECEIVER and self._active_receiver is not None:
            self._active_receiver.finish_slot()
            self._update_commits()
        self._role = _Role.IDLE
        self._active_receiver = None
        self._blocker = None

    # -- commit logic -------------------------------------------------------------------------
    def _update_commits(self) -> None:
        """Extend the committed prefix according to the (2-)voting rule."""
        k = self.context.message_length
        extended = True
        while extended and len(self._committed) < k:
            extended = False
            index = len(self._committed)
            votes: dict[int, int] = {}
            source_vote: Optional[int] = None
            for slot, receiver in self._receivers.items():
                bits = receiver.received_bits
                if len(bits) <= index:
                    continue
                if tuple(bits[:index]) != tuple(self._committed):
                    # This neighbor's stream conflicts with what we already
                    # committed; it cannot vouch for the next bit.
                    continue
                value = bits[index]
                if slot == SOURCE_SLOT:
                    source_vote = value
                votes[value] = votes.get(value, 0) + 1
            chosen: Optional[int] = None
            if source_vote is not None:
                # Bits received directly from the source are authenticated by
                # Theorem 2 and therefore commit regardless of the vote count.
                chosen = source_vote
            else:
                for value in (0, 1):
                    if votes.get(value, 0) >= self.config.votes_required:
                        chosen = value
                        break
            if chosen is not None:
                self._committed.append(chosen)
                self._sender.extend((chosen,))
                extended = True

    # -- outcome ----------------------------------------------------------------------------------
    @property
    def committed_bits(self) -> Bits:
        """The prefix of the message this device has committed to so far."""
        return tuple(self._committed)

    @property
    def relayed_count(self) -> int:
        """Number of committed bits already relayed to the neighboring squares."""
        return self._sender.sent_count

    @property
    def delivered(self) -> bool:
        return len(self._committed) >= self.context.message_length

    @property
    def delivered_message(self) -> Optional[Bits]:
        if not self.delivered:
            return None
        if self._delivered_message is None:
            self._delivered_message = tuple(self._committed[: self.context.message_length])
        return self._delivered_message
