"""NeighborWatchRB: multi-hop authenticated broadcast via meta-node squares.

The plane is partitioned into squares small enough that any device in a square
can talk directly to any device in the eight neighboring squares.  All honest
devices in a square behave identically — they form a single *meta-node* — and
actively prevent any device of their square from disseminating information the
whole square has not committed to ("neighborhood watch").  Concretely:

* every device maintains, for each neighboring square (plus the source, when
  in range), a 1Hop-Protocol receiver buffering the bits that square has
  authentically relayed so far;
* a device *commits* to bit ``i`` once it has received bits ``1..i`` from one
  of those neighbors (the **2-voting** variant requires two distinct
  neighboring squares to agree on the prefix; bits heard directly from the
  source always suffice on their own because Theorem 2 authenticates them);
* during its own square's broadcast interval a device acts as a 1Hop sender
  for its next committed-but-not-yet-relayed bit; devices of the square with
  nothing new to send *block* the interval by broadcasting in both veto
  rounds, so data leaves the square only when every honest member has
  committed to it;
* an idle square also vetoes its own interval (the *idle veto*), so that a
  silent interval is never mistaken for a genuine ``(0, 0)`` pair by the
  neighbors (see DESIGN.md).

The protocol tolerates any number of Byzantine devices as long as every square
contains at least one honest device — ``t < ceil(R/2)^2`` in the analytical
model (Theorem 3) — and the 2-voting variant pushes this to roughly
``t < R^2 / 2`` because a fake bit must then be vouched for by two fully
Byzantine squares.
"""

from __future__ import annotations

import enum
import math
from typing import Iterable, Optional

import numpy as np

from ..registry import ProtocolPlugin, register_protocol
from .messages import Bits, Frame, FrameKind, validate_bits
from .onehop import OneHopReceiver, OneHopSender
from .protocol import NodeContext, Observation, Protocol
from .regions import SquareGrid
from .runtime import END_PHASE, OPAQUE_LISTEN, PhaseContext, action_spec
from .schedule import SOURCE_SLOT, SquareSchedule
from .twobit import TwoBitBlocker

__all__ = ["NeighborWatchConfig", "NeighborWatchNode", "NeighborWatchPlugin", "NeighborWatch2VotePlugin"]


class _Role(enum.Enum):
    """What the device is doing during the current slot."""

    IDLE = "idle"
    SENDER = "sender"
    BLOCKER = "blocker"
    RECEIVER = "receiver"


class NeighborWatchConfig:
    """Tunable parameters of NeighborWatchRB.

    Parameters
    ----------
    votes_required:
        ``1`` for plain NeighborWatchRB, ``2`` for the 2-voting variant.
    idle_veto:
        Whether devices veto their own square's interval when they have
        nothing to send.  Required for soundness of the parity scheme (see
        DESIGN.md); exposed for the ablation benchmark.
    """

    __slots__ = ("votes_required", "idle_veto")

    def __init__(self, votes_required: int = 1, idle_veto: bool = True) -> None:
        if votes_required not in (1, 2):
            raise ValueError("votes_required must be 1 or 2")
        self.votes_required = int(votes_required)
        self.idle_veto = bool(idle_veto)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NeighborWatchConfig(votes={self.votes_required}, idle_veto={self.idle_veto})"


class NeighborWatchNode(Protocol):
    """Per-device behaviour of NeighborWatchRB.

    The state machine exists once, as the ``_act_core``/``_observe_core``/
    ``_end_core`` transitions, with two equally thin entry points: the legacy
    per-device ``act``/``observe``/``end_slot`` interface (oracle engine
    path) and the typed phase-machine interface ``phase_act``/
    ``phase_observe``/``phase_end`` used by the cohort runtime.
    NeighborWatchRB is the paper's meta-node protocol — all honest devices of
    a square behave identically until their observations diverge — and its
    transitions consume no randomness and never consult the device identity
    after setup, so it is :attr:`shareable`: the cohort runtime evaluates one
    machine per group of state-identical square members.  The transitions
    consume only channel *activity* (``shared_observation_attr = "busy"``),
    so members that decode different frames but agree on activity stay
    shared.

    Parameters
    ----------
    config:
        Protocol variant parameters.
    preloaded_message:
        When given, the device starts with this bit string already committed.
        The honest source uses it implicitly (via ``context.source_message``);
        the *lying* Byzantine devices of Section 6.1 are simulated exactly as
        the paper describes, by preloading them with a fake message while they
        otherwise run the correct protocol.
    """

    shareable = True
    shared_observation_attr = "busy"
    soa_compilable = True

    def __init__(
        self,
        config: Optional[NeighborWatchConfig] = None,
        *,
        preloaded_message: Optional[Iterable[int]] = None,
    ) -> None:
        self.config = config if config is not None else NeighborWatchConfig()
        self._preloaded = validate_bits(preloaded_message) if preloaded_message is not None else None
        self._committed: list[int] = []
        self._receivers: dict[int, OneHopReceiver] = {}
        self._sender = OneHopSender()
        self._role: _Role = _Role.IDLE
        self._active_receiver: Optional[OneHopReceiver] = None
        self._blocker: Optional[TwoBitBlocker] = None
        self._sending_active = False
        self._my_slot: int = -1
        self._is_source = False
        self._delivered_message: Optional[Bits] = None

    # -- setup ------------------------------------------------------------------------
    def setup(self, context: NodeContext) -> None:
        super().setup(context)
        schedule = context.schedule
        if not isinstance(schedule, SquareSchedule):
            raise TypeError("NeighborWatchRB requires a SquareSchedule")
        self._schedule = schedule
        self._is_source = context.is_source
        self._my_slot = schedule.slot_of_node(context.node_id)
        k = context.message_length

        if self._is_source:
            # The source behaves independently of any square: it already holds
            # the message and only ever transmits during the first interval.
            self._committed = list(context.source_message or ())
            self._sender.extend(self._committed)
            return

        if self._preloaded is not None:
            # Lying devices start with a (fake) message already committed.
            self._committed = list(self._preloaded[:k])
            self._sender.extend(self._committed)

        my_square = schedule.square_of_node(context.node_id)
        for neighbor in schedule.grid.neighbors(my_square):
            slot = schedule.slot_of_square(neighbor)
            if slot != self._my_slot:
                self._receivers.setdefault(slot, OneHopReceiver(expected_length=k))
        # Listen to the source only when it is actually within range; the
        # schedule gives every device the source's location, mirroring the
        # paper's assumption that slot 0 is known to belong to the source.
        src_pos = schedule.positions[schedule.source_index]
        my_pos = np.asarray(context.position, dtype=float)
        if self._schedule_norm_distance(my_pos, src_pos) <= context.radius + 1e-12:
            self._receivers[SOURCE_SLOT] = OneHopReceiver(expected_length=k)

    def _schedule_norm_distance(self, a: np.ndarray, b: np.ndarray) -> float:
        # The square partition guarantees range for neighbors; for the source we
        # measure with the Euclidean norm used by the simulation deployments.
        return float(np.sqrt(np.sum((np.asarray(a, float) - np.asarray(b, float)) ** 2)))

    # -- schedule interface ---------------------------------------------------------------
    def interests(self) -> Iterable[int]:
        if self._is_source:
            return (SOURCE_SLOT,)
        slots = set(self._receivers)
        slots.add(self._my_slot)
        return sorted(slots)

    def cohort_key(self):
        """Everything that distinguishes this device's post-setup state.

        Devices of the same square share ``_my_slot`` and the neighbor-square
        receiver slots; whether the *source* receiver is present depends on
        the device's distance to the source, so the receiver slot set is part
        of the key (it also fixes the interest set).  Preloaded (lying)
        devices and the source hold different initial commitments and are
        keyed apart; config parameters change the transition function itself.
        """
        return (
            self.config.votes_required,
            self.config.idle_veto,
            self._my_slot,
            frozenset(self._receivers),
            self._is_source,
            self._preloaded,
            self.context.message_length,
        )

    def soa_state_spec(self, slot: int) -> Optional[dict]:
        """Role of this device in ``slot`` for the SoA compiler.

        In its own slot the device either streams bits from ``_sender`` or
        blocks (``idle_veto`` fixes whether an idle owner vetoes
        unconditionally); in a receiver slot the kernel drives the bound
        :class:`OneHopReceiver` stream and re-runs the commit pipeline after
        an accepted bit.
        """
        if slot == self._my_slot:
            return {
                "role": "owner",
                "sender": self._sender,
                "idle_veto": self.config.idle_veto,
            }
        receiver = self._receivers.get(slot)
        if receiver is None:
            return None
        return {
            "role": "receiver",
            "receiver": receiver,
            "update_commits": self._update_commits,
        }

    # -- slot lifecycle ----------------------------------------------------------------------
    def _begin_slot(self, slot: int) -> None:
        self._role = _Role.IDLE
        self._active_receiver = None
        self._blocker = None
        self._sending_active = False

        if slot == self._my_slot:
            if self._sender.has_pending:
                self._role = _Role.SENDER
                self._sending_active = self._sender.begin_slot()
            elif self.config.idle_veto:
                self._role = _Role.BLOCKER
                self._blocker = TwoBitBlocker(always=True)
            else:
                self._role = _Role.BLOCKER
                self._blocker = TwoBitBlocker(always=False)
            return

        receiver = self._receivers.get(slot)
        if receiver is not None:
            if receiver.begin_slot():
                self._role = _Role.RECEIVER
                self._active_receiver = receiver
            else:
                self._role = _Role.IDLE

    # -- phase machine (primary) and per-device adapters -----------------------------------
    # The phase_* transitions hold the logic directly (no inner-core
    # indirection): the cohort runtime calls them once per cohort per round,
    # so a wrapper frame there costs more than the per-device ``act`` adapter
    # does on the rarely-taken singleton/oracle path.
    def phase_act(self, ctx: PhaseContext):
        """Transmit decision plus observation relevance for one round.

        Listening rounds return ``None`` only when the observation can reach
        state the role actually consumes (a sender's ack/veto rounds, a
        receiver's data/veto rounds, a *conditional* blocker's sensing
        rounds); every other listened round is
        :data:`~repro.core.runtime.OPAQUE_LISTEN` — the 2Bit sub-machines
        discard those observations, so cohort members may perceive different
        marginal activity there without diverging.
        """
        phase = ctx.phase
        if phase == 0:
            self._begin_slot(ctx.slot)
        role = self._role
        if role is _Role.SENDER:
            if self._sender.action(phase):
                return action_spec(FrameKind.DATA_BIT if phase in (0, 2) else FrameKind.VETO)
            return None if phase in (1, 3, 5) else OPAQUE_LISTEN
        if role is _Role.BLOCKER:
            blocker = self._blocker
            if blocker is not None:
                if blocker.action(phase):
                    return action_spec(FrameKind.VETO)
                if not blocker.always and phase < 4:
                    return None
            return OPAQUE_LISTEN
        if role is _Role.RECEIVER:
            receiver = self._active_receiver
            if receiver is not None:
                if receiver.action(phase):
                    return action_spec(FrameKind.ACK if phase in (1, 3) else FrameKind.VETO)
                return None if phase in (0, 2, 4) else OPAQUE_LISTEN
        return OPAQUE_LISTEN

    def phase_observe(self, ctx: PhaseContext, observation: Observation) -> None:
        busy = observation.busy
        phase = ctx.phase
        if self._role is _Role.SENDER:
            self._sender.observe(phase, busy)
        elif self._role is _Role.BLOCKER and self._blocker is not None:
            self._blocker.observe(phase, busy)
        elif self._role is _Role.RECEIVER and self._active_receiver is not None:
            self._active_receiver.observe(phase, busy)

    def phase_end(self, ctx: PhaseContext) -> None:
        if self._role is _Role.SENDER:
            if self._sender.finish_slot():
                self._cohort_state_dirty = True
        elif self._role is _Role.RECEIVER and self._active_receiver is not None:
            # Signature-relevant state only moves when the exchange accepted a
            # new bit (commits and the outgoing queue are derived from the
            # receiver streams), so that is the re-merge dirty trigger.
            if self._active_receiver.finish_slot() is not None:
                self._cohort_state_dirty = True
            self._update_commits()
        self._role = _Role.IDLE
        self._active_receiver = None
        self._blocker = None

    def act(self, slot_cycle: int, slot: int, phase: int) -> Optional[Frame]:
        spec = self.phase_act(PhaseContext(slot_cycle, slot, phase))
        if spec is None or spec is OPAQUE_LISTEN:
            return None
        return self._interned_frame(spec.kind)

    def observe(self, slot_cycle: int, slot: int, phase: int, observation: Observation) -> None:
        self.phase_observe(PhaseContext(slot_cycle, slot, phase), observation)

    def end_slot(self, slot_cycle: int, slot: int) -> None:
        self.phase_end(PhaseContext(slot_cycle, slot, END_PHASE))

    def state_signature(self) -> tuple:
        """Slot-boundary state for cohort re-merging.

        Between slots the per-slot role machinery is reset, so the committed
        prefix, the outgoing stream watermark and the per-neighbor receiver
        streams are the complete behaviour-relevant state.  A member that
        missed a bit re-converges with its siblings once the retransmission
        lands, at which point the signatures agree again and the runtime may
        re-merge the split cohorts.  Receiver order is positional: every
        member of a family builds ``_receivers`` by the same deterministic
        setup walk (and clones preserve insertion order), so no sorting is
        needed in this hot helper.
        """
        return (
            tuple(self._committed),
            self._sender.state_signature(),
            tuple(r.state_signature() for r in self._receivers.values()),
        )

    def clone_for_split(self) -> "NeighborWatchNode":
        """Native state copy for cohort splits (mid-slot safe).

        Shares the immutable collaborators (config, schedule, preloaded
        message) and hand-copies the genuinely per-device state; the in-slot
        aliases (``_active_receiver`` pointing into ``_receivers``) are
        re-established against the copies.  ~30x faster than the generic
        ``copy.deepcopy`` fallback, which matters because splits happen
        inside the simulation hot path.
        """
        clone = type(self).__new__(type(self))
        clone.config = self.config
        clone._preloaded = self._preloaded
        clone._committed = list(self._committed)
        clone._sender = self._sender.clone()
        clone._role = self._role
        clone._blocker = None if self._blocker is None else self._blocker.clone()
        clone._sending_active = self._sending_active
        clone._my_slot = self._my_slot
        clone._is_source = self._is_source
        clone._delivered_message = self._delivered_message
        clone._schedule = self._schedule
        clone.context = self.context
        clone._frame_cache = None
        receivers = {}
        active = None
        for slot, receiver in self._receivers.items():
            copy_receiver = receiver.clone()
            receivers[slot] = copy_receiver
            if receiver is self._active_receiver:
                active = copy_receiver
        clone._receivers = receivers
        clone._active_receiver = active
        return clone

    # -- commit logic -------------------------------------------------------------------------
    def _update_commits(self) -> None:
        """Extend the committed prefix according to the (2-)voting rule."""
        k = self.context.message_length
        committed = self._committed
        if len(committed) >= k:
            return
        receivers = self._receivers
        votes_required = self.config.votes_required
        extended = True
        while extended and len(committed) < k:
            extended = False
            index = len(committed)
            votes0 = 0
            votes1 = 0
            source_vote: Optional[int] = None
            for slot, receiver in receivers.items():
                bits = receiver.peek_received()
                if len(bits) <= index:
                    continue
                if bits[:index] != committed:
                    # This neighbor's stream conflicts with what we already
                    # committed; it cannot vouch for the next bit.
                    continue
                value = bits[index]
                if slot == SOURCE_SLOT:
                    source_vote = value
                if value:
                    votes1 += 1
                else:
                    votes0 += 1
            chosen: Optional[int] = None
            if source_vote is not None:
                # Bits received directly from the source are authenticated by
                # Theorem 2 and therefore commit regardless of the vote count.
                chosen = source_vote
            elif votes0 >= votes_required:
                chosen = 0
            elif votes1 >= votes_required:
                chosen = 1
            if chosen is not None:
                committed.append(chosen)
                self._sender.extend((chosen,))
                extended = True

    # -- outcome ----------------------------------------------------------------------------------
    @property
    def committed_bits(self) -> Bits:
        """The prefix of the message this device has committed to so far."""
        return tuple(self._committed)

    @property
    def relayed_count(self) -> int:
        """Number of committed bits already relayed to the neighboring squares."""
        return self._sender.sent_count

    @property
    def delivered(self) -> bool:
        return len(self._committed) >= self.context.message_length

    @property
    def delivered_message(self) -> Optional[Bits]:
        if not self.delivered:
            return None
        if self._delivered_message is None:
            self._delivered_message = tuple(self._committed[: self.context.message_length])
        return self._delivered_message


# -- registry plugins ---------------------------------------------------------------------
@register_protocol("neighborwatch", aliases=("neighborwatchrb", "nw"))
class NeighborWatchPlugin(ProtocolPlugin):
    """Registry plugin wiring NeighborWatchRB into the scenario builder.

    Relaying is square-by-square, so the pipeline hop length entering the
    generous round cap is the square side rather than the radio range.
    """

    votes_required = 1
    protocol_classes = (NeighborWatchNode,)

    def build(self, config) -> NeighborWatchNode:
        return NeighborWatchNode(
            NeighborWatchConfig(votes_required=self.votes_required, idle_veto=config.idle_veto)
        )

    def build_liar(self, config, fake_message) -> NeighborWatchNode:
        liar_config = (
            NeighborWatchConfig(votes_required=self.votes_required)
            if self.votes_required != 1
            else None
        )
        return NeighborWatchNode(config=liar_config, preloaded_message=fake_message)

    def build_schedule(self, deployment, config) -> SquareSchedule:
        grid = SquareGrid(deployment.width, deployment.height, config.effective_square_side())
        return SquareSchedule(
            grid,
            config.radius,
            deployment.positions,
            deployment.source_index,
            separation=config.separation,
        )

    def pipeline_hops(self, config, map_extent: float) -> int:
        return max(1, int(math.ceil(map_extent / config.effective_square_side())))


@register_protocol("neighborwatch2", aliases=("neighborwatch2vote", "nw2", "2vote"))
class NeighborWatch2VotePlugin(NeighborWatchPlugin):
    """The 2-voting variant: same machinery, two distinct vouching squares."""

    votes_required = 2
