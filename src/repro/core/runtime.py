"""Phase-machine protocol runtime: the typed contract behind cohort execution.

The simulation engine historically drove every device through an *implicit*
object protocol — ``act(cycle, slot, phase)`` returning a ready-made
:class:`~repro.core.messages.Frame` and ``observe(...)`` consuming a channel
observation.  That interface is per-device by construction: the returned frame
embeds the device id, so two devices in identical protocol states still cannot
share a single state-machine evaluation.

This module makes the state machine explicit.  A protocol that participates in
shared (cohort) execution implements three *phase transitions* over a typed
:class:`PhaseContext`:

``phase_act(ctx) -> Optional[ActionSpec]``
    The transmit decision for one round.  Crucially the result is a
    *member-independent* :class:`ActionSpec` — a frame kind plus payload,
    without a sender id — so one evaluation can be fanned out to every member
    of a cohort (each member materialises its own on-air frame).
``phase_observe(ctx, observation)``
    Deliver the channel observation of a listened round.
``phase_end(ctx)``
    Finalise the per-slot state machine (``ctx.phase`` is :data:`END_PHASE`).

The shareability contract
-------------------------
A protocol may declare itself ``shareable = True`` only when its transitions
are pure functions of ``(state, observations)`` that

* consume **no randomness** (sharing one evaluation across members must not
  move any RNG stream — bit-identity is a hard contract, see ROADMAP), and
* depend on the device identity **only at setup time** (anything derived from
  ``context.node_id`` / ``context.position`` after ``setup`` — e.g. the
  position-dependent vote geometry of MultiPathRB — disqualifies sharing; such
  protocols keep ``shareable = False`` and run as singleton cohorts), and
* group correctly: :meth:`~repro.core.protocol.Protocol.cohort_key` must
  capture *everything* that distinguishes the device's post-setup state,
  including its interest set — two devices mapping to the same key must be
  byte-for-byte interchangeable state machines.

Divergence is handled by cloning: when two cohort members observe different
things, the shared machine is deep-copied per observation class
(:func:`clone_machine`) and execution continues on the finer partition.
State-machine state must therefore be plain deep-copyable Python data; large
immutable collaborators (the schedule, the node context, protocol config
objects) are *shared* across clones via
:meth:`~repro.core.protocol.Protocol.shared_on_clone`.

The SoA lowering contract
-------------------------
The third execution tier (:mod:`repro.sim.soa`) goes one step beyond sharing:
for *simple* phase machines it compiles each slot's participants into packed
per-group state masks and replays the slot with a handful of bitwise
operations instead of per-device (or per-cohort) ``phase_act`` /
``phase_observe`` calls.  A protocol family opts in by declaring
``soa_compilable = True`` and implementing
:meth:`~repro.core.protocol.Protocol.soa_state_spec`, and may do so only when

* its transitions consume **no randomness** and read **nothing** of an
  observation beyond the declared
  :attr:`~repro.core.protocol.Protocol.shared_observation_attr` projection
  (for the bit-exchange stack: ``busy``) or — for payload protocols such as
  the epidemic counters — the decoded frame of an uncontended round, and
* a slot's evolution is a *closed function* of the group's state: every
  device whose state the slot can change declares the slot in its interest
  set, so the compiler sees the full support of the transition, and
* the slot kernel mutates the **same protocol objects** the scalar path
  would: SoA keeps no shadow state beyond per-slot role masks that are
  recomputable from the objects, which is what lets any slot occurrence fall
  back to the scalar loop (adversary extras, flex transmitters) and resume
  compiled execution afterwards.

Bit-identity remains the hard contract: record order, RNG draw order (the
tier is only eligible on channel configurations that consume no RNG) and
every exported row must match the per-device oracle byte for byte.
"""

from __future__ import annotations

import copy
from typing import NamedTuple

from .messages import FrameKind

__all__ = [
    "END_PHASE",
    "OPAQUE_LISTEN",
    "PhaseContext",
    "ActionSpec",
    "PhaseDrivenProtocol",
    "clone_machine",
]

#: Sentinel phase used for the end-of-slot transition (:meth:`phase_end`).
END_PHASE = -1


class _OpaqueListen:
    """Singleton tag for 'listen, but the observation cannot change my state'."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "OPAQUE_LISTEN"


#: Returned by ``phase_act`` instead of ``None`` when the device listens but
#: its state machine provably discards this round's observation (a 2Bit
#: sender during data rounds, a receiver during ack rounds, an uncondition­al
#: blocker, an idle machine).  The engine still resolves the round for the
#: device — listener sets, and therefore the channel RNG stream, are
#: bit-identical to the per-device path — but the cohort runtime neither
#: delivers the observation nor splits the cohort when members diverge in
#: such a round, which is what keeps meta-node sharing intact on channels
#: where far-away co-slot transmitters bleed marginal power across the map.
#: Declaring a round opaque that the transitions actually read breaks
#: bit-identity — the oracle-equivalence suite is the enforcement.
OPAQUE_LISTEN = _OpaqueListen()


class PhaseContext(NamedTuple):
    """Typed context of one phase transition.

    ``slot_cycle`` and ``slot`` locate the broadcast interval in the global
    TDMA schedule; ``phase`` is the 0-based round within the slot, or
    :data:`END_PHASE` for the end-of-slot transition.  The cohort runtime
    allocates one context per phase and shares it across every cohort in the
    slot, so transitions must treat it as immutable.  (A NamedTuple rather
    than a frozen dataclass: contexts are built once per device-round on the
    per-device path, and tuple construction is several times cheaper than a
    frozen dataclass's ``object.__setattr__`` init.)
    """

    slot_cycle: int
    slot: int
    phase: int


class ActionSpec(NamedTuple):
    """A member-independent transmit decision: frame kind plus payload.

    Deliberately excludes the sender id — the runtime (or the per-device
    adapter in :class:`PhaseDrivenProtocol`) turns a spec into a concrete
    :class:`~repro.core.messages.Frame` per member, so one shared evaluation
    serves a whole cohort.  Specs for the payload-less protocol alphabet are
    interned via :func:`action_spec`.
    """

    kind: FrameKind
    payload: tuple = ()


#: Interned payload-less specs, one per frame kind (the whole alphabet of the
#: bit-exchange protocols); avoids a per-round allocation in phase_act.
_BARE_SPECS: dict[FrameKind, ActionSpec] = {kind: ActionSpec(kind) for kind in FrameKind}


def action_spec(kind: FrameKind, payload: tuple = ()) -> ActionSpec:
    """The (interned, when payload-less) spec for ``kind``/``payload``."""
    if not payload:
        return _BARE_SPECS[kind]
    return ActionSpec(kind, payload)


class PhaseDrivenProtocol:
    """Mixin for protocols whose :meth:`phase_*` transitions are primary.

    Supplies the legacy engine-facing ``act``/``observe``/``end_slot`` methods
    as thin adapters over the phase machine, so the state machine exists
    exactly once and the scalar (oracle) engine path and the cohort runtime
    exercise the same code.  ``act`` materialises the member's concrete frame
    from the member-independent :class:`ActionSpec`: payload-less specs go
    through the per-instance frame intern
    (:meth:`~repro.core.protocol.Protocol._interned_frame`, identical to the
    historical frames), payload-carrying specs build a fresh value-equal
    frame stamped with this device's id.
    """

    def act(self, slot_cycle: int, slot: int, phase: int):
        spec = self.phase_act(PhaseContext(slot_cycle, slot, phase))
        if spec is None or spec is OPAQUE_LISTEN:
            return None
        if spec.payload:
            from .messages import Frame

            return Frame(spec.kind, self.context.node_id, spec.payload)
        return self._interned_frame(spec.kind)

    def observe(self, slot_cycle: int, slot: int, phase: int, observation) -> None:
        self.phase_observe(PhaseContext(slot_cycle, slot, phase), observation)

    def end_slot(self, slot_cycle: int, slot: int) -> None:
        self.phase_end(PhaseContext(slot_cycle, slot, END_PHASE))

    def phase_end(self, ctx: PhaseContext) -> None:
        """Default end-of-slot transition: nothing to finalise.

        Overrides the base :class:`~repro.core.protocol.Protocol` adapter
        (which delegates ``phase_end`` *to* ``end_slot``) so a phase-driven
        protocol without per-slot finalisation does not recurse through the
        two adapters; protocols with real end-of-slot work override this.
        """


def clone_machine(machine):
    """Copy a protocol state machine for a cohort split.

    Prefers the protocol's native
    :meth:`~repro.core.protocol.Protocol.clone_for_split` (hand-written state
    copies are ~30x cheaper than the generic machinery, and splits happen in
    the simulation hot path).  The fallback is a ``copy.deepcopy`` whose memo
    is pre-seeded with the objects the protocol declares shared
    (:meth:`~repro.core.protocol.Protocol.shared_on_clone` — typically the
    node context, the schedule and the config), so the copy touches only the
    genuinely per-device state (receiver buffers, embedded 2Bit machines,
    committed prefixes).  The clone's frame intern is reset because its cached
    frames carry the donor's node id; the caller is expected to rebind
    ``clone.context`` to the new cohort leader's context.
    """
    clone = machine.clone_for_split()
    if clone is None:
        memo: dict = {}
        for obj in machine.shared_on_clone():
            if obj is not None:
                memo[id(obj)] = obj
        clone = copy.deepcopy(machine, memo)
    clone._frame_cache = None
    return clone
