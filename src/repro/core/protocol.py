"""Protocol interface shared by honest protocols and adversaries.

The paper's protocols are *slot synchronous*: time is divided into schedule
slots of six rounds (the "broadcast interval"), nodes know the global schedule
(it is derived from their location), and in every round a device either
broadcasts a frame or listens.  The simulator drives protocol objects through
exactly that interface:

* :meth:`Protocol.interests` declares which schedule slots the device ever
  cares about (its own slots plus the slots of the squares/nodes it listens
  to).  The engine uses this for sparse slot processing — a node that has no
  interest in a slot neither transmits nor observes during that slot, which is
  sound because nothing it ignores can affect its state.
* :meth:`Protocol.act` is called for every phase (round within the slot) of an
  interesting slot and returns either a :class:`~repro.core.messages.Frame` to
  broadcast or ``None`` to listen.
* :meth:`Protocol.observe` delivers the channel observation for phases in
  which the device listened.

Adversaries implement the same interface (plus a per-slot activity hint) so
that the engine treats honest and Byzantine devices uniformly.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Iterable, Optional

from .messages import Bits, Frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .runtime import ActionSpec, PhaseContext
    from .schedule import Schedule

__all__ = [
    "ChannelState",
    "Observation",
    "SILENCE",
    "NodeContext",
    "Protocol",
    "DeliveryStatus",
]


class ChannelState(enum.IntEnum):
    """What a listening device perceives in one round.

    ``SILENT``   -- no activity at all: the crucial un-forgeable signal.
    ``MESSAGE``  -- exactly one frame was decoded (possibly via capture).
    ``COLLISION``-- the carrier-sensing MAC reports energy on the channel but
                    no frame could be decoded (collision or jamming noise).
    """

    SILENT = 0
    MESSAGE = 1
    COLLISION = 2


@dataclass(frozen=True, slots=True)
class Observation:
    """Per-round channel observation delivered to a listening device.

    ``busy`` and ``decoded`` are precomputed at construction rather than being
    properties: protocols consult them once per listened round, and because
    observation objects are interned (``SILENCE``, the shared collision, one
    object per decoded frame) a property would re-derive the same answer
    millions of times per run.

    ``busy`` — true when the device "receives a message or detects a
    collision"; the predicate the 2Bit-Protocol's acknowledgement and veto
    rules are written in terms of.  ``decoded`` — the decoded frame, if any.
    """

    state: ChannelState
    frame: Optional[Frame] = None
    busy: bool = field(init=False, repr=False, compare=False, default=False)
    decoded: Optional[Frame] = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        object.__setattr__(self, "busy", self.state is not ChannelState.SILENT)
        if self.state is ChannelState.MESSAGE:
            object.__setattr__(self, "decoded", self.frame)


#: Shared immutable "nothing happened" observation (avoids per-round allocation).
SILENCE = Observation(ChannelState.SILENT)


@dataclass(slots=True)
class NodeContext:
    """Static per-device information handed to a protocol at setup time.

    Mirrors the capabilities the paper grants devices: knowledge of their own
    (approximate) location, the communication radius, the globally agreed
    schedule (derived from locations, not negotiated) and the length of the
    application message being broadcast.
    """

    node_id: int
    position: tuple[float, float]
    radius: float
    schedule: "Schedule"
    message_length: int
    is_source: bool = False
    source_message: Optional[Bits] = None
    rng_seed: int = 0

    def __post_init__(self) -> None:
        if self.is_source and self.source_message is None:
            raise ValueError("the source device must be given the message to broadcast")
        if self.source_message is not None and len(self.source_message) != self.message_length:
            raise ValueError("source_message length must equal message_length")


class DeliveryStatus(enum.Enum):
    """Delivery state of a device at the end of a run."""

    PENDING = "pending"
    DELIVERED = "delivered"
    CRASHED = "crashed"


class Protocol(abc.ABC):
    """Base class for every per-device behaviour (honest or Byzantine)."""

    #: Set by the simulator; convenient for tracing.
    context: NodeContext

    #: Lazily-built per-instance cache for :meth:`_interned_frame`.
    _frame_cache: Optional[dict] = None

    #: Set by protocols whenever a slot changed signature-relevant state
    #: (e.g. a receiver accepted a bit).  The cohort runtime only attempts a
    #: re-merge of a fragmented family when at least one sibling is dirty —
    #: unchanged signatures cannot have become equal, so the (comparatively
    #: costly) :meth:`state_signature` evaluation is skipped.  The class
    #: default ``True`` makes the first attempt after a split/clone safe.
    _cohort_state_dirty: bool = True

    #: Whether the device may transmit during slots it declared no interest in.
    #: Honest protocols never do; jamming adversaries set this to ``True`` so
    #: the engine asks them (via :meth:`wants_slot`) about every slot.
    may_transmit_anywhere: bool = False

    #: Whether this device's state machine may be *shared* by the cohort
    #: runtime: evaluated once for a group of state-identical devices and
    #: fanned out.  Only protocols whose phase transitions are pure functions
    #: of ``(state, observations)`` — no RNG, no post-setup dependence on the
    #: device identity or position — may set this (see the shareability
    #: contract in :mod:`repro.core.runtime`).  Adversaries must keep it
    #: ``False``; the runtime additionally never shares dishonest devices.
    shareable: bool = False

    #: Name of the single :class:`Observation` attribute this protocol's
    #: transitions consume, or ``None`` when they may read the whole
    #: observation.  The cohort runtime splits a cohort only when the
    #: *projected* observations of its members differ: NeighborWatchRB's
    #: state machines react purely to channel activity (``"busy"``), so two
    #: square members that respectively decode a frame and perceive a
    #: collision still transition identically and stay shared.  Declaring a
    #: projection that the transitions secretly exceed breaks bit-identity —
    #: leave it ``None`` unless the restriction provably holds.
    shared_observation_attr: Optional[str] = None

    #: Name of an instance attribute holding a hashable *region profile*, or
    #: ``None``.  When set, the cohort runtime folds ``getattr(self, attr)``
    #: into the grouping key next to :meth:`cohort_key` — the opt-in contract
    #: for protocols whose transitions depend on position only *through* the
    #: paper's region decomposition (MultiPathRB's commit rule).  Two devices
    #: may then share a machine exactly when their region-derived views are
    #: equal, without the position itself entering :meth:`cohort_key`.
    position_cohort_attr: Optional[str] = None

    #: Whether this protocol family can be lowered to the struct-of-arrays
    #: execution tier (:mod:`repro.sim.soa`).  Only phase machines whose
    #: transitions consume no RNG and read nothing of an observation beyond
    #: :attr:`shared_observation_attr` may set this — see the SoA lowering
    #: contract in :mod:`repro.core.runtime`.  Compilation additionally
    #: requires the class to provide :meth:`soa_state_spec`.
    soa_compilable: bool = False

    def setup(self, context: NodeContext) -> None:
        """Bind the protocol instance to a device.  Called once before round 0."""
        self.context = context

    # -- schedule interaction -------------------------------------------------
    @abc.abstractmethod
    def interests(self) -> Iterable[int]:
        """Schedule slots this device participates in (as sender or listener)."""

    def wants_slot(self, slot_cycle: int, slot: int) -> bool:  # pragma: no cover - default
        """Hook for adversaries: whether the device may transmit during this
        occurrence of ``slot`` even though it is not in :meth:`interests`.

        Honest protocols never transmit outside their declared interests, so
        the default returns ``False``.
        """
        return False

    def _interned_frame(self, kind) -> Frame:
        """The device's payload-less frame of ``kind``, allocated once.

        Hot-path helper: protocols that broadcast bare ``Frame(kind, id)``
        frames (data bits, acks, vetoes, jam noise) put the same few values on
        the air millions of times per run; interning replaces the per-round
        dataclass construction with a dict lookup.  Frames compare by value,
        so sharing instances is observationally identical.
        """
        cache = self._frame_cache
        if cache is None:
            cache = {}
            self._frame_cache = cache
        frame = cache.get(kind)
        if frame is None:
            frame = Frame(kind, self.context.node_id)
            cache[kind] = frame
        return frame

    # -- cohort runtime hooks ---------------------------------------------------
    def cohort_key(self) -> Optional[Hashable]:
        """Hashable signature of this device's post-setup state, or ``None``.

        Two :attr:`shareable` devices whose keys compare equal are grouped
        into one cohort by the runtime and MUST be interchangeable state
        machines: the key has to capture every post-setup state difference,
        including the interest set.  ``None`` (the default) keeps the device
        a singleton.
        """
        return None

    def clone_for_split(self) -> Optional["Protocol"]:
        """Native state copy for cohort splits, or ``None`` for the deepcopy fallback.

        Protocols on the simulation hot path implement this by hand (copying
        their mutable state, sharing immutable collaborators, re-establishing
        internal aliases); :func:`repro.core.runtime.clone_machine` falls back
        to a memo-seeded ``copy.deepcopy`` when it returns ``None``.
        """
        return None

    def state_signature(self) -> Optional[tuple]:
        """Canonical signature of all behaviour-relevant protocol state, or ``None``.

        Evaluated by the cohort runtime at slot boundaries to *re-merge*
        sibling cohorts whose states have reconverged (e.g. a receiver that
        missed a bit and caught up on the retransmission).  Two machines with
        equal signatures must behave identically forever after; statistics
        that never influence a transition (attempt counters, failure tallies)
        should be excluded so transient divergences can heal.  ``None`` (the
        default) disables re-merging for the protocol.
        """
        return None

    # -- struct-of-arrays lowering hook -----------------------------------------
    def soa_state_spec(self, slot: int) -> Optional[dict]:
        """Description of this instance's role in a compiled SoA slot group.

        Called once per ``(device, slot)`` pair by the SoA compiler for
        :attr:`soa_compilable` protocols.  Returns ``None`` when the device is
        a pure bystander in the slot, otherwise a dict understood by the
        family's slot kernel in :mod:`repro.sim.soa` (e.g. which per-slot
        receiver object backs the device, whether the device owns the slot).
        The base implementation returns ``None``; compilable families
        override it.
        """
        return None

    def shared_on_clone(self) -> tuple:
        """Collaborators to share (not copy) when the runtime clones this machine.

        Cohort splits deep-copy the shared state machine per observation
        class; everything returned here is pre-seeded into the deepcopy memo
        so large immutable structures (the schedule with its position arrays,
        the node context, config objects) are never duplicated.
        """
        shared: list = [self.context, self.context.schedule]
        config = getattr(self, "config", None)
        if config is not None:
            shared.append(config)
        return tuple(shared)

    # -- per-round behaviour ---------------------------------------------------
    @abc.abstractmethod
    def act(self, slot_cycle: int, slot: int, phase: int) -> Optional[Frame]:
        """Return a frame to broadcast in this round, or ``None`` to listen."""

    @abc.abstractmethod
    def observe(self, slot_cycle: int, slot: int, phase: int, observation: Observation) -> None:
        """Deliver the channel observation for a round in which the device listened."""

    def end_slot(self, slot_cycle: int, slot: int) -> None:  # pragma: no cover - default
        """Called by the engine after the last phase of every slot the device
        participated in; protocols finalise their per-slot state machines here."""

    # -- phase-machine contract -------------------------------------------------
    # Default adapters expressing the typed phase API in terms of the legacy
    # per-device methods, so every protocol satisfies the PhaseContext
    # contract.  Protocols that participate in shared execution invert the
    # delegation by mixing in :class:`repro.core.runtime.PhaseDrivenProtocol`
    # and implementing ``phase_*`` as the primary state machine.  Exactly one
    # direction may be primary per class — implementing neither recurses.
    def phase_act(self, ctx: "PhaseContext") -> Optional["ActionSpec"]:
        """Member-independent transmit decision for one round, or ``None``."""
        from .runtime import action_spec

        frame = self.act(ctx.slot_cycle, ctx.slot, ctx.phase)
        if frame is None:
            return None
        return action_spec(frame.kind, frame.payload)

    def phase_observe(self, ctx: "PhaseContext", observation: Observation) -> None:
        """Deliver the channel observation for a listened round."""
        self.observe(ctx.slot_cycle, ctx.slot, ctx.phase, observation)

    def phase_end(self, ctx: "PhaseContext") -> None:
        """Finalise the slot (``ctx.phase`` is :data:`repro.core.runtime.END_PHASE`)."""
        self.end_slot(ctx.slot_cycle, ctx.slot)

    # -- outcome ---------------------------------------------------------------
    @property
    @abc.abstractmethod
    def delivered(self) -> bool:
        """Whether the device has delivered (committed to) the whole message."""

    @property
    def delivered_message(self) -> Optional[Bits]:
        """The message the device delivered, or ``None`` if not yet delivered."""
        return None

    @property
    def broadcast_count(self) -> int:
        """Number of frames this device has put on the air (energy metric)."""
        return getattr(self, "_broadcast_count", 0)

    def _count_broadcast(self) -> None:
        """Increment the broadcast counter (subclasses call this when transmitting)."""
        self._broadcast_count = getattr(self, "_broadcast_count", 0) + 1

    @property
    def status(self) -> DeliveryStatus:
        return DeliveryStatus.DELIVERED if self.delivered else DeliveryStatus.PENDING
