"""The dual-mode protocol: fast epidemic payload + authenticated digest.

The paper's practical recommendation (Sections 1 and 6.2) is not to run a
Byzantine-tolerant protocol for every payload, but to combine:

(a) an *epidemic* broadcast of the full message, which is fast but offers no
    authenticity, and
(b) a NeighborWatchRB broadcast of a short *digest* of the message, which is
    authenticated but slower per bit.

A device accepts the epidemic payload only if its digest matches the
authenticated digest.  The overhead over plain flooding is then governed by
the digest length: with a digest of roughly one tenth of the payload the paper
conjectures a slowdown below 2x.

This module implements the combination logic.  The two phases are simulated
independently (with the existing epidemic and NeighborWatchRB machinery); the
functions here derive, per device, whether the dual-mode protocol delivers,
whether the delivery is correct, and what the end-to-end completion time is.
The DUAL experiment driver (``repro.experiments.driver.DualModeDriver``) and
the ``dualmode`` benchmark drive it.  Both underlying runs execute on the default
cohort protocol runtime (``repro.sim.batch``) — the authenticated digest
phase is NeighborWatchRB and shares each square's meta-node state machine —
and because the runtime is bit-identical to the per-device oracle, nothing in
the combination logic here needs to know which runtime produced the records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

from .digest import digest_matches, polynomial_digest, recommended_digest_length
from .messages import Bits, validate_bits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.results import RunResult

__all__ = ["DualModeOutcome", "DualModeResult", "combine_dual_mode", "recommended_digest_length"]


@dataclass(frozen=True, slots=True)
class DualModeOutcome:
    """Outcome of the dual-mode protocol for one device."""

    node_id: int
    payload_delivered: bool
    digest_delivered: bool
    accepted: bool
    correct: Optional[bool]


@dataclass(slots=True)
class DualModeResult:
    """Aggregate outcome of one dual-mode run."""

    message: Bits
    digest: Bits
    outcomes: dict[int, DualModeOutcome]
    payload_rounds: int
    digest_rounds: int

    @property
    def total_rounds(self) -> int:
        """End-to-end completion time.

        The two phases share the channel, so in a deployment they run back to
        back (the digest can only be computed once the payload is known); the
        conservative end-to-end time is therefore the sum of the two phases.
        """
        return self.payload_rounds + self.digest_rounds

    @property
    def acceptance_fraction(self) -> float:
        """Fraction of devices that accepted a payload."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes.values() if o.accepted) / len(self.outcomes)

    @property
    def correctness_fraction(self) -> float:
        """Fraction of accepting devices whose accepted payload is correct."""
        accepted = [o for o in self.outcomes.values() if o.accepted]
        if not accepted:
            return 1.0
        return sum(1 for o in accepted if o.correct) / len(accepted)

    @property
    def any_incorrect_acceptance(self) -> bool:
        """Whether any device accepted a payload that differs from the source's."""
        return any(o.accepted and o.correct is False for o in self.outcomes.values())

    def summary(self) -> Mapping[str, float]:
        return {
            "total_rounds": float(self.total_rounds),
            "payload_rounds": float(self.payload_rounds),
            "digest_rounds": float(self.digest_rounds),
            "acceptance_fraction": self.acceptance_fraction,
            "correctness_fraction": self.correctness_fraction,
        }


def combine_dual_mode(
    message: Bits,
    payload_result: "RunResult",
    digest_result: "RunResult",
    *,
    digest_bits: Optional[int] = None,
) -> DualModeResult:
    """Combine an epidemic payload run with an authenticated digest run.

    Parameters
    ----------
    message:
        The true application message (whose digest the honest source secured).
    payload_result:
        Result of the epidemic broadcast of the full message.  Each device's
        delivered payload (possibly a fake injected by a Byzantine device) is
        taken from its recorded outcome.
    digest_result:
        Result of the NeighborWatchRB broadcast of the digest.  A device only
        *accepts* a payload if it delivered the digest and the digest of its
        payload matches.
    digest_bits:
        Length of the digest; defaults to the length of the digest run's
        message.
    """
    message = validate_bits(message)
    digest_len = digest_bits if digest_bits is not None else len(digest_result.message)
    true_digest = polynomial_digest(message, digest_len)
    if tuple(digest_result.message) != tuple(true_digest):
        raise ValueError(
            "the digest run did not broadcast the digest of the given message; "
            "build it with polynomial_digest(message, digest_bits)"
        )

    outcomes: dict[int, DualModeOutcome] = {}
    payload_messages = _delivered_messages(payload_result)
    digest_delivered = _delivered_ok(digest_result)

    for node_id, outcome in payload_result.outcomes.items():
        if not (outcome.honest and outcome.active):
            continue
        payload = payload_messages.get(node_id)
        has_digest = digest_delivered.get(node_id, False)
        accepted = False
        correct: Optional[bool] = None
        if payload is not None and has_digest:
            accepted = digest_matches(payload, true_digest)
            if accepted:
                correct = tuple(payload) == tuple(message)
        outcomes[node_id] = DualModeOutcome(
            node_id=node_id,
            payload_delivered=payload is not None,
            digest_delivered=has_digest,
            accepted=accepted,
            correct=correct,
        )

    return DualModeResult(
        message=message,
        digest=true_digest,
        outcomes=outcomes,
        payload_rounds=payload_result.completion_rounds,
        digest_rounds=digest_result.completion_rounds,
    )


def _delivered_messages(result: "RunResult") -> dict[int, Bits]:
    """Delivered payload per honest device, reconstructed from the run outcomes.

    The epidemic engine records correctness, not content, so we reconstruct
    the delivered message where possible: a correct delivery is the true
    message; an incorrect delivery is marked by the sentinel complement (the
    acceptance test below will reject it unless a digest collision occurs,
    which we model by flipping every bit — the worst case for the digest).
    """
    delivered: dict[int, Bits] = {}
    message = tuple(result.message)
    fake = tuple(1 - b for b in message)
    for node_id, outcome in result.outcomes.items():
        if not outcome.delivered or not outcome.honest:
            continue
        delivered[node_id] = message if outcome.correct else fake
    return delivered


def _delivered_ok(result: "RunResult") -> dict[int, bool]:
    return {
        node_id: bool(outcome.delivered and outcome.correct)
        for node_id, outcome in result.outcomes.items()
        if outcome.honest and outcome.active
    }
