"""Core protocols of the paper: 2Bit, 1Hop, NeighborWatchRB, MultiPathRB."""

from .messages import (
    Bits,
    ControlCodec,
    ControlMessage,
    ControlType,
    Frame,
    FrameKind,
    bits_from_bytes,
    bits_from_int,
    bytes_from_bits,
    int_from_bits,
    validate_bits,
)
from .protocol import ChannelState, DeliveryStatus, NodeContext, Observation, Protocol, SILENCE
from .runtime import (
    END_PHASE,
    OPAQUE_LISTEN,
    ActionSpec,
    PhaseContext,
    PhaseDrivenProtocol,
    action_spec,
    clone_machine,
)
from .regions import SquareGrid, SquareId, default_square_side
from .schedule import PHASES_PER_SLOT, SOURCE_SLOT, NodeSchedule, Schedule, SquareSchedule
from .twobit import NUM_PHASES, TwoBitBlocker, TwoBitOutcome, TwoBitReceiver, TwoBitSender
from .onehop import OneHopReceiver, OneHopSender, parity_of_index
from .neighborwatch import NeighborWatchConfig, NeighborWatchNode
from .multipath import MultiPathConfig, MultiPathNode
from .epidemic import EpidemicConfig, EpidemicNode
from .digest import digest_matches, polynomial_digest, recommended_digest_length
from .dualmode import DualModeOutcome, DualModeResult, combine_dual_mode

__all__ = [
    "Bits",
    "ControlCodec",
    "ControlMessage",
    "ControlType",
    "Frame",
    "FrameKind",
    "bits_from_bytes",
    "bits_from_int",
    "bytes_from_bits",
    "int_from_bits",
    "validate_bits",
    "ChannelState",
    "DeliveryStatus",
    "NodeContext",
    "Observation",
    "Protocol",
    "SILENCE",
    "END_PHASE",
    "OPAQUE_LISTEN",
    "ActionSpec",
    "PhaseContext",
    "PhaseDrivenProtocol",
    "action_spec",
    "clone_machine",
    "SquareGrid",
    "SquareId",
    "default_square_side",
    "PHASES_PER_SLOT",
    "SOURCE_SLOT",
    "NodeSchedule",
    "Schedule",
    "SquareSchedule",
    "NUM_PHASES",
    "TwoBitBlocker",
    "TwoBitOutcome",
    "TwoBitReceiver",
    "TwoBitSender",
    "OneHopReceiver",
    "OneHopSender",
    "parity_of_index",
    "NeighborWatchConfig",
    "NeighborWatchNode",
    "MultiPathConfig",
    "MultiPathNode",
    "EpidemicConfig",
    "EpidemicNode",
    "digest_matches",
    "polynomial_digest",
    "recommended_digest_length",
    "DualModeOutcome",
    "DualModeResult",
    "combine_dual_mode",
]
