"""Simple epidemic flooding baseline.

Section 6.2 of the paper compares the Byzantine-tolerant protocols against a
simple epidemic protocol with no built-in fault tolerance: the source
broadcasts the whole message in a single frame, and every device that receives
the message rebroadcasts it once during its own slot.  Any Byzantine
interference (a collision, a jammed slot, a spoofed payload) can disrupt it,
which is exactly the point of the comparison — it establishes the baseline
cost of flooding a message across the network, against which the overhead of
NeighborWatchRB (about 7.7x in the paper) and MultiPathRB (orders of
magnitude) is measured.

The baseline uses the same slotted TDMA structure as the other protocols but
with a single round per slot and no per-bit exchange: an entire application
message fits in one frame.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..registry import ProtocolPlugin, register_protocol
from .messages import Bits, Frame, FrameKind, validate_bits
from .protocol import NodeContext, Observation, Protocol
from .runtime import OPAQUE_LISTEN, ActionSpec, PhaseContext, action_spec
from .schedule import NodeSchedule

__all__ = ["EpidemicConfig", "EpidemicNode"]


class EpidemicConfig:
    """Parameters of the epidemic baseline.

    ``rebroadcast_count`` controls how many times a device repeats the message
    in its own slots after adopting it (the paper's baseline uses a single
    broadcast; allowing more repeats is useful to study how much redundancy a
    non-authenticated protocol needs to survive losses).
    """

    __slots__ = ("rebroadcast_count",)

    def __init__(self, rebroadcast_count: int = 1) -> None:
        if rebroadcast_count < 1:
            raise ValueError("rebroadcast_count must be >= 1")
        self.rebroadcast_count = int(rebroadcast_count)


class EpidemicNode(Protocol):
    """Per-device behaviour of the epidemic flooding baseline.

    ``preloaded_message`` turns the device into a fake-message injector (a
    Byzantine "liar"): because the baseline performs no authentication at all,
    a single such device can poison every node it reaches first.

    The legacy ``act``/``observe`` methods are the primary implementation
    (the hot single-phase path stays allocation-free); only ``phase_act`` is
    overridden explicitly, because the default adapter would embed *this*
    device's id in the shared decision — the override returns the
    member-independent ``(PAYLOAD, message)`` spec instead, and adoption
    depends only on shared state, so the protocol is :attr:`shareable`.  In
    practice the node-level TDMA coloring gives nearly every device a
    distinct ``(own slot, listen set)`` pair, so epidemic cohorts are usually
    singletons; the declaration matters for correctness, not speed.
    """

    shareable = True
    soa_compilable = True

    def __init__(
        self,
        config: Optional[EpidemicConfig] = None,
        *,
        preloaded_message: Optional[Iterable[int]] = None,
    ) -> None:
        self.config = config if config is not None else EpidemicConfig()
        self._preloaded = validate_bits(preloaded_message) if preloaded_message is not None else None
        self._message: Optional[Bits] = None
        self._remaining_broadcasts = 0
        self._my_slot = -1
        self._listen_slots: set[int] = set()

    # -- setup ---------------------------------------------------------------------------
    def setup(self, context: NodeContext) -> None:
        super().setup(context)
        schedule = context.schedule
        if not isinstance(schedule, NodeSchedule):
            raise TypeError("the epidemic baseline requires a NodeSchedule")
        if schedule.phases_per_slot != 1:
            raise ValueError("the epidemic baseline uses single-round slots")
        self._schedule = schedule
        self._my_slot = schedule.slot_of_node(context.node_id)
        self._listen_slots = set(schedule.neighbor_slots_of_node(context.node_id))
        self._listen_slots.discard(self._my_slot)
        if context.is_source:
            self._adopt(tuple(context.source_message or ()))
        elif self._preloaded is not None:
            self._adopt(tuple(self._preloaded[: context.message_length]))

    def _adopt(self, message: Bits) -> None:
        if self._message is not None:
            return
        self._message = tuple(message)
        self._remaining_broadcasts = self.config.rebroadcast_count

    # -- protocol interface ------------------------------------------------------------------
    def interests(self) -> Iterable[int]:
        slots = set(self._listen_slots)
        slots.add(self._my_slot)
        return sorted(slots)

    def cohort_key(self):
        """Post-setup state signature (fixes the interest set and transitions)."""
        return (
            self.config.rebroadcast_count,
            self._my_slot,
            frozenset(self._listen_slots),
            self._message,
            self._remaining_broadcasts,
            self.context.message_length,
        )

    def soa_state_spec(self, slot: int) -> Optional[dict]:
        """Role of this device in ``slot`` for the SoA compiler.

        Every group member is a potential adopter (an owner with nothing to
        flood listens in its own slot like everyone else); owners additionally
        expose the queue-consuming broadcast decision.
        """
        return {
            "role": "member",
            "owner": slot == self._my_slot,
            "pop": self._decide_broadcast,
            "adopt": self._soa_try_adopt,
        }

    def soa_node_spec(self) -> dict:
        """Slot-independent form of :meth:`soa_state_spec`.

        The epidemic per-slot spec varies only in the owner flag, so the
        compiler can resolve the bound methods once per device and derive
        ownership by comparing ``owner_slot`` against the group's slot —
        a device listens in ~density-many slots, and one spec dict per
        (member, slot) pair was the dominant compile cost at paper scale.
        """
        return {
            "owner_slot": self._my_slot,
            "pop": self._decide_broadcast,
            "adopt": self._soa_try_adopt,
        }

    def _soa_try_adopt(self, payload: tuple) -> bool:
        """Adopt a sole decoded payload, with the same validation as observe().

        Returns whether the device newly adopted (the SoA kernel stamps the
        delivery round from this).
        """
        if self._message is not None:
            return False
        if len(payload) != self.context.message_length:
            return False
        if any(bit not in (0, 1) for bit in payload):
            return False
        self._adopt(tuple(int(b) for b in payload))
        return True

    def _decide_broadcast(self) -> Optional[Bits]:
        """Consume one rebroadcast if the device has something to flood."""
        if self._message is None or self._remaining_broadcasts <= 0:
            return None
        self._remaining_broadcasts -= 1
        return self._message

    def act(self, slot_cycle: int, slot: int, phase: int) -> Optional[Frame]:
        if slot != self._my_slot or phase != 0:
            return None
        payload = self._decide_broadcast()
        if payload is None:
            return None
        return Frame(FrameKind.PAYLOAD, self.context.node_id, tuple(payload))

    def phase_act(self, ctx: PhaseContext) -> Optional[ActionSpec]:
        adopted = self._message is not None
        if ctx.slot == self._my_slot and ctx.phase == 0:
            payload = self._decide_broadcast()
            if payload is not None:
                return action_spec(FrameKind.PAYLOAD, tuple(payload))
        # Once adopted, observe() discards every observation — listening
        # rounds are opaque and can no longer split a cohort.
        return OPAQUE_LISTEN if adopted else None

    def observe(self, slot_cycle: int, slot: int, phase: int, observation: Observation) -> None:
        if self._message is not None:
            # Already adopted: nothing below can change any state (_adopt is a
            # no-op), so skip the per-observation payload validation.
            return
        frame = observation.decoded
        if frame is None or frame.kind is not FrameKind.PAYLOAD:
            return
        if len(frame.payload) != self.context.message_length:
            return
        if any(bit not in (0, 1) for bit in frame.payload):
            return
        self._adopt(tuple(int(b) for b in frame.payload))

    # -- outcome -----------------------------------------------------------------------------
    @property
    def delivered(self) -> bool:
        return self._message is not None

    @property
    def delivered_message(self) -> Optional[Bits]:
        return self._message

    @property
    def pending_broadcasts(self) -> int:
        """Broadcasts the device still intends to perform."""
        return self._remaining_broadcasts if self._message is not None else 0


# -- registry plugin ----------------------------------------------------------------------
@register_protocol("epidemic", aliases=("flood", "flooding"))
class EpidemicPlugin(ProtocolPlugin):
    """Registry plugin wiring the epidemic baseline into the scenario builder.

    Epidemic rounds carry whole payload frames (the authenticated protocols
    move one bit per round), which :meth:`airtime_multiplier` exposes so
    comparisons can weigh rounds by their on-air cost.
    """

    protocol_classes = (EpidemicNode,)

    def build(self, config) -> EpidemicNode:
        return EpidemicNode(EpidemicConfig())

    def build_liar(self, config, fake_message) -> EpidemicNode:
        return EpidemicNode(config=EpidemicConfig(), preloaded_message=fake_message)

    def build_schedule(self, deployment, config) -> NodeSchedule:
        return NodeSchedule(
            deployment.positions,
            config.radius,
            deployment.source_index,
            separation=config.epidemic_slot_separation,
            norm=config.norm,
            phases_per_slot=1,
        )

    def airtime_multiplier(self, message_length: int) -> int:
        return max(1, message_length)
