"""Square partition of the plane used by NeighborWatchRB.

NeighborWatchRB clusters devices into axis-aligned squares; all honest devices
in a square behave identically and act as a single "meta-node".  The square
side must be small enough that any two devices in *neighboring* squares (the
eight surrounding squares) can communicate directly:

* in the analytical L-infinity model the paper uses squares of side
  ``ceil(R/2)`` (two diagonal-adjacent squares span at most ``2L <= R`` per
  coordinate);
* in the Euclidean simulation model the paper reduces the side to ``R/3`` so
  that even the diagonal separation ``2*L*sqrt(2)`` stays below ``R``.

This module provides the partition, membership queries and the neighbor
relation between squares, all computed locally from device coordinates exactly
as the paper requires (no communication needed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["SquareId", "default_square_side", "SquareGrid", "region_profile_of"]

#: A square is identified by its integer column/row in the partition.
SquareId = tuple[int, int]


def default_square_side(radius: float, norm: str = "l2") -> float:
    """The paper's square side for a given communication radius and norm.

    ``ceil(R/2)`` in the analytical (L-infinity) model, ``R/3`` in the
    simulation (L2 / Friis) model.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    if norm == "linf":
        return float(math.ceil(radius / 2.0))
    if norm == "l2":
        return radius / 3.0
    raise ValueError(f"unknown norm {norm!r}")


def region_profile_of(schedule, position: Sequence[float], radius: float) -> tuple:
    """Hashable region-derived view of a device position under a schedule.

    This is the opt-in key material behind the
    :attr:`~repro.core.protocol.Protocol.position_cohort_attr` contract: a
    protocol whose transitions read the device position only *through* the
    region decomposition (MultiPathRB's commit rule) is position-equivalent to
    any other device with an equal profile.  The profile pins everything such
    a transition can derive from the position:

    * the containing region square (the paper's decomposition, side
      :func:`default_square_side` for the schedule's norm, unbounded grid);
    * the exact set of node ids within ``radius`` (the device's R-ball —
      determines which voters/witnesses count toward a neighborhood-scoped
      commit, with the commit rule's ``1e-9`` tolerance folded in);
    * per schedule slot, the tuple of slot owners within ``2 * radius``
      (determines HEARD-cause resolution, which scans a ``2R`` disc).

    Two devices with equal profiles *and* equal protocol state evolve
    identically: every distance comparison the MultiPathRB transitions make
    against the device's own position is answered by the profile.  Note that
    under the paper's standard ``3R`` slot separation two distinct devices
    sharing a slot *and* an R-ball cannot exist, so multi-member region
    cohorts only arise in deliberately dense/low-separation deployments —
    the contract is about correctness of the grouping, not about forcing
    sharing where the geometry forbids it.
    """
    pos = np.asarray(schedule.positions, dtype=float)
    my_pos = np.asarray(position, dtype=float).reshape(2)
    norm = getattr(schedule, "norm", "l2")
    diff = pos - my_pos[None, :]
    if norm == "linf":
        dist = np.max(np.abs(diff), axis=1)
    else:
        dist = np.sqrt(np.sum(diff**2, axis=1))
    ball = frozenset(np.nonzero(dist <= radius + 1e-9)[0].tolist())
    within_two = dist <= 2.0 * radius + 1e-9
    owner_views = tuple(
        tuple(owner for owner in schedule.owners_of_slot(slot) if within_two[owner])
        for slot in range(schedule.num_slots)
    )
    side = default_square_side(radius, norm)
    square = (int(math.floor(my_pos[0] / side)), int(math.floor(my_pos[1] / side)))
    return (square, ball, owner_views)


@dataclass(frozen=True)
class SquareGrid:
    """Partition of a ``width x height`` map into squares of side ``side``.

    The partition origin is the map origin ``(0, 0)``; square ``(c, r)`` covers
    ``[c*side, (c+1)*side) x [r*side, (r+1)*side)``.  Devices exactly on the
    upper map boundary are folded into the last square so that every device
    belongs to exactly one square.
    """

    width: float
    height: float
    side: float

    def __post_init__(self) -> None:
        if self.side <= 0:
            raise ValueError("square side must be positive")
        if self.width <= 0 or self.height <= 0:
            raise ValueError("map dimensions must be positive")

    @property
    def num_cols(self) -> int:
        return max(1, int(math.ceil(self.width / self.side - 1e-9)))

    @property
    def num_rows(self) -> int:
        return max(1, int(math.ceil(self.height / self.side - 1e-9)))

    @property
    def num_squares(self) -> int:
        return self.num_cols * self.num_rows

    # -- membership ------------------------------------------------------------
    def square_of(self, position: Sequence[float]) -> SquareId:
        """Square containing ``position`` (boundary positions fold inward)."""
        x, y = float(position[0]), float(position[1])
        col = int(math.floor(x / self.side))
        row = int(math.floor(y / self.side))
        col = min(max(col, 0), self.num_cols - 1)
        row = min(max(row, 0), self.num_rows - 1)
        return (col, row)

    def squares_of(self, positions: np.ndarray) -> list[SquareId]:
        """Vectorised :meth:`square_of` for an ``(N, 2)`` position array."""
        pos = np.asarray(positions, dtype=float)
        cols = np.clip(np.floor(pos[:, 0] / self.side).astype(int), 0, self.num_cols - 1)
        rows = np.clip(np.floor(pos[:, 1] / self.side).astype(int), 0, self.num_rows - 1)
        return [(int(c), int(r)) for c, r in zip(cols, rows)]

    def flat_squares_of(self, positions: np.ndarray) -> np.ndarray:
        """Vectorised row-major flat square index for an ``(N, 2)`` position array.

        Equals ``flat_index(square_of(p))`` for every row ``p`` (boundary
        positions fold inward identically), but returns one ``int64`` array —
        the form the engine's spatial tiling keeps per node, where a list of
        tuples for 10^5+ devices would dominate construction time.
        """
        pos = np.asarray(positions, dtype=float)
        cols = np.clip(np.floor(pos[:, 0] / self.side).astype(np.int64), 0, self.num_cols - 1)
        rows = np.clip(np.floor(pos[:, 1] / self.side).astype(np.int64), 0, self.num_rows - 1)
        return rows * self.num_cols + cols

    def flat_index(self, square: SquareId) -> int:
        """Row-major flat index of a square (used as a compact dictionary key)."""
        col, row = square
        if not (0 <= col < self.num_cols and 0 <= row < self.num_rows):
            raise ValueError(f"square {square} outside the partition")
        return row * self.num_cols + col

    def square_from_flat(self, index: int) -> SquareId:
        if not (0 <= index < self.num_squares):
            raise ValueError("flat index out of range")
        return (index % self.num_cols, index // self.num_cols)

    def center(self, square: SquareId) -> tuple[float, float]:
        """Geometric center of a square (the paper's "meta-node" location)."""
        col, row = square
        return ((col + 0.5) * self.side, (row + 0.5) * self.side)

    # -- neighbor relation -------------------------------------------------------
    def neighbors(self, square: SquareId, *, include_self: bool = False) -> list[SquareId]:
        """The (up to eight) squares adjacent to ``square``.

        Any device in a neighboring square is within communication range of
        any device in ``square`` by the choice of the square side, so these are
        exactly the squares whose broadcasts a member of ``square`` listens to.
        """
        col, row = square
        out: list[SquareId] = []
        for dc in (-1, 0, 1):
            for dr in (-1, 0, 1):
                if dc == 0 and dr == 0 and not include_self:
                    continue
                nc, nr = col + dc, row + dr
                if 0 <= nc < self.num_cols and 0 <= nr < self.num_rows:
                    out.append((nc, nr))
        return out

    def are_neighbors(self, a: SquareId, b: SquareId) -> bool:
        """Whether two distinct squares are adjacent (8-neighborhood)."""
        if a == b:
            return False
        return abs(a[0] - b[0]) <= 1 and abs(a[1] - b[1]) <= 1

    def iter_squares(self) -> Iterator[SquareId]:
        for row in range(self.num_rows):
            for col in range(self.num_cols):
                yield (col, row)

    # -- guarantees ---------------------------------------------------------------
    def max_intra_neighbor_distance(self, norm: str = "l2") -> float:
        """Worst-case distance between devices in neighboring squares.

        Useful for validating that the chosen square side keeps neighboring
        squares within communication range under the given norm (2 squares
        diagonally adjacent span two square sides per coordinate).
        """
        span = 2.0 * self.side
        if norm == "linf":
            return span
        if norm == "l2":
            return span * math.sqrt(2.0)
        raise ValueError(f"unknown norm {norm!r}")

    def validate_for_radius(self, radius: float, norm: str = "l2") -> bool:
        """True when neighboring squares are guaranteed to be in range."""
        return self.max_intra_neighbor_distance(norm) <= radius + 1e-9

    def occupancy(self, positions: np.ndarray) -> dict[SquareId, list[int]]:
        """Map each square to the list of device indices it contains."""
        result: dict[SquareId, list[int]] = {}
        for idx, sq in enumerate(self.squares_of(positions)):
            result.setdefault(sq, []).append(idx)
        return result
