"""Wire-level frames and protocol messages.

The protocols of the paper deliberately keep what is *on the air* extremely
simple: in each round a device either broadcasts (a short frame) or stays
silent, and receivers mostly react to channel *activity* rather than frame
contents (Byzantine devices can spoof contents but cannot forge silence).
Frames therefore carry a kind tag, the claimed sender and a small payload;
higher layers (MultiPathRB) define structured control messages which are
serialised to bit strings and streamed one bit at a time by the 1Hop-Protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "FrameKind",
    "Frame",
    "Bits",
    "bits_from_int",
    "int_from_bits",
    "bits_from_bytes",
    "bytes_from_bits",
    "validate_bits",
    "ControlType",
    "ControlMessage",
    "ControlCodec",
]


class FrameKind(enum.IntEnum):
    """What a single-round broadcast represents.

    The distinction only matters for tracing and for the epidemic baseline
    (which puts whole application messages on the air); the Byzantine-tolerant
    protocols never trust the kind tag of a received frame.
    """

    DATA_BIT = 1        # round R1/R3 of the 2Bit-Protocol ("bit1" / "bit2" message)
    ACK = 2             # round R2/R4 acknowledgement ("bitX-response")
    VETO = 3            # round R5/R6 veto
    JAM = 4             # adversarial noise
    PAYLOAD = 5         # full application message (epidemic baseline / dual mode)
    CONTROL = 6         # miscellaneous (used by tests)


@dataclass(frozen=True, slots=True)
class Frame:
    """A single-round broadcast.

    Attributes
    ----------
    kind:
        Nominal type of the frame (see :class:`FrameKind`).
    sender:
        Index of the device that actually transmitted the frame.  Receivers in
        the Byzantine-tolerant protocols never rely on this field (the paper's
        model allows spoofing); it exists for tracing, for the epidemic
        baseline, and to let the channel model attribute transmissions.
    payload:
        Small immutable payload (tuple of ints/strings).  Eg. the bit value for
        ``DATA_BIT`` frames or the application message for ``PAYLOAD`` frames.
    """

    kind: FrameKind
    sender: int
    payload: tuple = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frame({self.kind.name}, from={self.sender}, payload={self.payload})"


#: A message is a sequence of bits (0/1 integers); short alias used in signatures.
Bits = tuple[int, ...]


def validate_bits(bits: Iterable[int]) -> Bits:
    """Validate and normalise a bit sequence into a tuple of 0/1 ints."""
    out = []
    for b in bits:
        ib = int(b)
        if ib not in (0, 1):
            raise ValueError(f"bit values must be 0 or 1, got {b!r}")
        out.append(ib)
    return tuple(out)


def bits_from_int(value: int, width: int) -> Bits:
    """Encode ``value`` as ``width`` bits, most significant bit first."""
    if value < 0:
        raise ValueError("value must be non-negative")
    if width < 0:
        raise ValueError("width must be non-negative")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return tuple((value >> (width - 1 - i)) & 1 for i in range(width))


def int_from_bits(bits: Sequence[int]) -> int:
    """Decode a most-significant-bit-first bit sequence into an integer."""
    value = 0
    for b in bits:
        ib = int(b)
        if ib not in (0, 1):
            raise ValueError(f"bit values must be 0 or 1, got {b!r}")
        value = (value << 1) | ib
    return value


def bits_from_bytes(data: bytes) -> Bits:
    """Encode a byte string as a bit tuple (MSB first within each byte)."""
    out: list[int] = []
    for byte in data:
        out.extend((byte >> (7 - i)) & 1 for i in range(8))
    return tuple(out)


def bytes_from_bits(bits: Sequence[int]) -> bytes:
    """Decode a bit sequence (length multiple of 8) back into bytes."""
    bits = validate_bits(bits)
    if len(bits) % 8 != 0:
        raise ValueError("bit length must be a multiple of 8 to decode into bytes")
    out = bytearray()
    for i in range(0, len(bits), 8):
        out.append(int_from_bits(bits[i : i + 8]))
    return bytes(out)


class ControlType(enum.IntEnum):
    """Control-message types of the MultiPathRB multi-hop layer."""

    SOURCE = 0
    COMMIT = 1
    HEARD = 2


@dataclass(frozen=True, slots=True)
class ControlMessage:
    """A SOURCE / COMMIT / HEARD control message of MultiPathRB.

    Attributes
    ----------
    mtype:
        The control-message type.
    bit_index:
        1-based index of the application-message bit this control message is
        about.
    bit_value:
        The value of that bit (0 or 1).
    cause:
        For HEARD messages, the schedule slot identifying the node whose COMMIT
        was heard (the "cause" in the paper's terminology).  The paper encodes
        the cause by its relative location in ``O(log R)`` bits; we encode the
        cause's broadcast slot, which identifies it uniquely within any single
        neighborhood because the TDMA schedule never reuses a slot within
        interference range.  ``0`` for SOURCE/COMMIT messages.
    """

    mtype: ControlType
    bit_index: int
    bit_value: int
    cause: int = 0

    def __post_init__(self) -> None:
        if self.bit_index < 1:
            raise ValueError("bit_index is 1-based and must be >= 1")
        if self.bit_value not in (0, 1):
            raise ValueError("bit_value must be 0 or 1")
        if self.cause < 0:
            raise ValueError("cause must be non-negative")
        if self.mtype is not ControlType.HEARD and self.cause != 0:
            raise ValueError("only HEARD messages carry a cause")


class ControlCodec:
    """Fixed-width bit codec for :class:`ControlMessage`.

    MultiPathRB streams every control message bit-by-bit over the
    1Hop-Protocol, so both sides must agree on a fixed frame layout:

    ``[type: 2 bits][bit_index-1: index_width bits][bit_value: 1 bit][cause: cause_width bits]``

    ``index_width`` is derived from the application message length and
    ``cause_width`` from the number of schedule slots, matching the paper's
    observation that each control message is only ``O(1)`` bits for constant
    ``R``.
    """

    TYPE_WIDTH = 2
    VALUE_WIDTH = 1

    def __init__(self, message_length: int, num_slots: int) -> None:
        if message_length < 1:
            raise ValueError("message_length must be >= 1")
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        self.message_length = message_length
        self.num_slots = num_slots
        self.index_width = max(1, (message_length - 1).bit_length())
        self.cause_width = max(1, (num_slots - 1).bit_length())

    @property
    def frame_bits(self) -> int:
        """Number of bits in one encoded control message."""
        return self.TYPE_WIDTH + self.index_width + self.VALUE_WIDTH + self.cause_width

    def encode(self, message: ControlMessage) -> Bits:
        """Serialise a control message into its fixed-width bit representation."""
        if message.bit_index > self.message_length:
            raise ValueError(
                f"bit_index {message.bit_index} exceeds message length {self.message_length}"
            )
        if message.cause >= self.num_slots and message.mtype is ControlType.HEARD:
            raise ValueError(f"cause slot {message.cause} out of range (< {self.num_slots})")
        bits: list[int] = []
        bits.extend(bits_from_int(int(message.mtype), self.TYPE_WIDTH))
        bits.extend(bits_from_int(message.bit_index - 1, self.index_width))
        bits.extend(bits_from_int(message.bit_value, self.VALUE_WIDTH))
        bits.extend(bits_from_int(message.cause, self.cause_width))
        return tuple(bits)

    def decode(self, bits: Sequence[int]) -> ControlMessage | None:
        """Decode a fixed-width bit frame back into a control message.

        Returns ``None`` when the bits do not form a valid control message
        (e.g. a Byzantine device streamed garbage); callers simply drop such
        frames, which is safe because dropping never violates authenticity.
        """
        bits = validate_bits(bits)
        if len(bits) != self.frame_bits:
            return None
        pos = 0
        type_val = int_from_bits(bits[pos : pos + self.TYPE_WIDTH])
        pos += self.TYPE_WIDTH
        index_val = int_from_bits(bits[pos : pos + self.index_width]) + 1
        pos += self.index_width
        value_val = int_from_bits(bits[pos : pos + self.VALUE_WIDTH])
        pos += self.VALUE_WIDTH
        cause_val = int_from_bits(bits[pos : pos + self.cause_width])
        try:
            mtype = ControlType(type_val)
        except ValueError:
            return None
        if index_val > self.message_length:
            return None
        if mtype is not ControlType.HEARD:
            cause_val = 0
        try:
            return ControlMessage(mtype=mtype, bit_index=index_val, bit_value=value_val, cause=cause_val)
        except ValueError:
            return None
