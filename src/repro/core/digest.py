"""Non-cryptographic digests for the dual-mode protocol.

The paper conjectures (Sections 1 and 6.2) that a practical deployment would
broadcast the full message with the fast epidemic protocol and only secure a
short *digest* of it with NeighborWatchRB; a receiver accepts the epidemic
payload only if it matches the authenticated digest.  The paper does not
prescribe a digest construction — it merely requires that a digest "chosen
appropriately" make it hard for an adversary to find a different message with
the same digest.  Since the whole point of the paper is to avoid cryptography,
we provide a small, deterministic, seedable *universal-hash style* digest: a
polynomial fingerprint of the message bits modulo a Mersenne prime, truncated
to the requested number of bits.  It is not cryptographically secure (nothing
non-cryptographic is against an unbounded adversary), but it has the uniform
collision behaviour needed for the dual-mode experiments and it exercises the
same code path a real deployment would.
"""

from __future__ import annotations

from typing import Iterable

from .messages import Bits, validate_bits

__all__ = ["polynomial_digest", "digest_matches", "recommended_digest_length"]

#: Modulus of the polynomial fingerprint (the Mersenne prime 2^61 - 1).
_MODULUS = (1 << 61) - 1
#: Default evaluation point; any fixed point works, a deployment could derive
#: it from a shared seed to make targeted collisions harder to precompute.
_DEFAULT_POINT = 0x5DEECE66D


def polynomial_digest(message: Iterable[int], digest_bits: int, *, point: int = _DEFAULT_POINT) -> Bits:
    """Digest ``message`` (a bit sequence) into ``digest_bits`` bits.

    The digest is the polynomial ``sum(b_i * x^i) mod p`` evaluated at
    ``x = point``, folded down to ``digest_bits`` bits.  Equal messages always
    produce equal digests; distinct messages collide with probability roughly
    ``2**-digest_bits`` for a random evaluation point.
    """
    bits = validate_bits(message)
    if digest_bits < 1:
        raise ValueError("digest_bits must be >= 1")
    x = point % _MODULUS
    acc = len(bits) % _MODULUS  # include the length so prefixes do not collide trivially
    for bit in bits:
        acc = (acc * x + bit + 1) % _MODULUS
    # Fold the 61-bit accumulator down to the requested width.
    out: list[int] = []
    state = acc
    for i in range(digest_bits):
        if i and i % 61 == 0:
            # Re-expand when more bits than the accumulator width are requested.
            state = (state * x + i) % _MODULUS
        out.append((state >> (i % 61)) & 1)
    return tuple(out)


def digest_matches(message: Iterable[int], digest: Iterable[int], *, point: int = _DEFAULT_POINT) -> bool:
    """Whether ``digest`` is the digest of ``message`` (same length and value)."""
    digest = validate_bits(digest)
    return polynomial_digest(message, len(digest), point=point) == digest


def recommended_digest_length(message_length: int, ratio: float = 0.1) -> int:
    """Digest length for the dual-mode protocol.

    The paper argues the dual-mode overhead stays acceptable as long as the
    digest is about one tenth (Section 6.2; one seventh in the introduction)
    of the original message.  Returns at least one bit.
    """
    if message_length < 1:
        raise ValueError("message_length must be >= 1")
    if not (0.0 < ratio <= 1.0):
        raise ValueError("ratio must be in (0, 1]")
    return max(1, int(round(message_length * ratio)))
