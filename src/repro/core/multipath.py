"""MultiPathRB: optimally resilient multi-hop authenticated broadcast.

MultiPathRB keeps the single-hop layer of NeighborWatchRB (the 1Hop-Protocol)
but replaces the meta-node squares with an explicit voting strategy in the
style of Bhandari and Vaidya: a device commits to a bit only after hearing it
vouched for along ``t + 1`` node-disjoint paths that all lie within a single
neighborhood, so that at least one of them must be honest.  Three kinds of
control messages circulate, each streamed bit-by-bit over the 1Hop-Protocol
during the sender's own broadcast interval:

``SOURCE(i, b)``
    sent by the source for every bit of the message; devices in range of the
    source commit directly (Theorem 2 authenticates the stream).
``COMMIT(i, b)``
    sent by a device when it commits to bit ``i`` with value ``b``.
``HEARD(u, i, b)``
    sent by a device that received ``COMMIT(i, b)`` from device ``u`` (the
    *cause*); honest devices relay a HEARD for every COMMIT they receive.

A device commits to ``(i, b)`` once it can exhibit at least ``t + 1`` distinct
*voters* — devices that either sent it a COMMIT directly or are the cause of a
HEARD it received — such that the voters, the HEARD senders involved and the
commit itself all fit inside one neighborhood.  Because the TDMA schedule
never reuses a slot within interference range, the slot in which a message
arrives identifies the sender's location, which is how voters and causes are
attributed without any authentication.

The protocol is tuned with the parameter ``t`` (faults tolerated per
neighborhood); with ``t < R(2R+1)/2`` it is optimally resilient (Theorem 4)
and it keeps the pipelined ``O(beta*D + log|Sigma|)`` running time
(Theorem 5).
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional

import numpy as np

from ..registry import ProtocolPlugin, register_protocol
from .messages import Bits, ControlCodec, ControlMessage, ControlType, Frame, FrameKind, validate_bits
from .onehop import OneHopReceiver, OneHopSender
from .protocol import NodeContext, Observation, Protocol
from .runtime import ActionSpec, PhaseContext, action_spec
from .schedule import SOURCE_SLOT, NodeSchedule
from .twobit import TwoBitBlocker

__all__ = ["MultiPathConfig", "MultiPathNode"]


class _Role(enum.Enum):
    IDLE = "idle"
    SENDER = "sender"
    BLOCKER = "blocker"
    RECEIVER = "receiver"


class MultiPathConfig:
    """Tunable parameters of MultiPathRB.

    Parameters
    ----------
    tolerance:
        The number of Byzantine devices per neighborhood the protocol is tuned
        to tolerate (the paper simulates ``t = 3`` and ``t = 5``); a device
        needs ``tolerance + 1`` distinct voters to commit a bit it did not
        hear directly from the source.
    relay_heard:
        Whether the device relays HEARD messages.  Honest devices always do;
        the paper's lying devices never do.
    idle_veto:
        Veto the device's own interval when its control-message queue is
        empty (see DESIGN.md).
    """

    __slots__ = ("tolerance", "relay_heard", "idle_veto")

    def __init__(self, tolerance: int = 3, relay_heard: bool = True, idle_veto: bool = True) -> None:
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.tolerance = int(tolerance)
        self.relay_heard = bool(relay_heard)
        self.idle_veto = bool(idle_veto)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiPathConfig(t={self.tolerance}, relay_heard={self.relay_heard}, "
            f"idle_veto={self.idle_veto})"
        )


class MultiPathNode(Protocol):
    """Per-device behaviour of MultiPathRB.

    ``preloaded_message`` reproduces the paper's lying devices: they start with
    a fake message fully committed (and therefore flood COMMIT messages for its
    bits) while otherwise running the correct protocol; combined with
    ``relay_heard=False`` in their config this matches Section 6.1 exactly.

    The state machine is expressed through the phase-machine API.  The commit
    rule (:meth:`_check_commit`) and HEARD-cause resolution measure distances
    from *this device's position*, so plain state-keyed sharing is unsound —
    but every one of those distance comparisons is answered by the device's
    *region profile* (:func:`~repro.core.regions.region_profile_of`): the
    R-ball membership set and the per-slot ``2R`` owner views.  The protocol
    therefore declares itself ``shareable`` under the opt-in
    :attr:`~repro.core.protocol.Protocol.position_cohort_attr` contract — the
    cohort runtime groups two devices only when their profiles (and states,
    via :meth:`cohort_key`) are equal, which under the paper's standard ``3R``
    slot separation degenerates to singletons (the historical behaviour) but
    batches genuinely position-equivalent devices in dense deployments.

    The transitions consume only channel activity
    (``shared_observation_attr = "busy"``) and no randomness, and the slot
    machinery is the same 2Bit/1Hop stack as NeighborWatchRB, so the protocol
    is also ``soa_compilable``: deterministic unit-disk slots lower to the
    struct-of-arrays kernels of :mod:`repro.sim.soa`.
    """

    shareable = True
    shared_observation_attr = "busy"
    position_cohort_attr = "region_profile"
    soa_compilable = True

    def __init__(
        self,
        config: Optional[MultiPathConfig] = None,
        *,
        preloaded_message: Optional[Iterable[int]] = None,
    ) -> None:
        self.config = config if config is not None else MultiPathConfig()
        self._preloaded = validate_bits(preloaded_message) if preloaded_message is not None else None
        self._commit_values: dict[int, int] = {}
        self._votes: dict[tuple[int, int], dict[int, list[Optional[int]]]] = {}
        self._heard_sent: set[tuple[int, int, int]] = set()
        self._receivers: dict[int, OneHopReceiver] = {}
        self._peer_of_slot: dict[int, int] = {}
        self._consumed: dict[int, int] = {}
        self._sender = OneHopSender()
        self._role = _Role.IDLE
        self._active_receiver: Optional[OneHopReceiver] = None
        self._active_slot: int = -1
        self._blocker: Optional[TwoBitBlocker] = None
        self._my_slot = -1
        self._is_source = False
        self._delivered_message: Optional[Bits] = None
        self._region_profile_cache: Optional[tuple] = None

    # -- setup -----------------------------------------------------------------------------
    def setup(self, context: NodeContext) -> None:
        super().setup(context)
        schedule = context.schedule
        if not isinstance(schedule, NodeSchedule):
            raise TypeError("MultiPathRB requires a NodeSchedule")
        self._schedule = schedule
        self._is_source = context.is_source
        self._my_slot = schedule.slot_of_node(context.node_id)
        k = context.message_length
        self._codec = ControlCodec(message_length=k, num_slots=schedule.num_slots)

        for slot in schedule.neighbor_slots_of_node(context.node_id):
            if slot == self._my_slot:
                continue
            owner = schedule.owner_in_neighborhood(slot, context.node_id)
            if owner is None or owner == context.node_id:
                continue
            self._receivers[slot] = OneHopReceiver(expected_length=None)
            self._peer_of_slot[slot] = owner
            self._consumed[slot] = 0

        if self._is_source:
            message = context.source_message or ()
            for index, bit in enumerate(message, start=1):
                self._commit_values[index] = int(bit)
                self._enqueue(ControlMessage(ControlType.SOURCE, index, int(bit)))
        elif self._preloaded is not None:
            for index, bit in enumerate(self._preloaded[:k], start=1):
                self._commit_values[index] = int(bit)
                self._enqueue(ControlMessage(ControlType.COMMIT, index, int(bit)))

    # -- helpers ------------------------------------------------------------------------------
    def _enqueue(self, message: ControlMessage) -> None:
        self._sender.extend(self._codec.encode(message))

    def _distance(self, a: int, b_position: np.ndarray) -> float:
        pos = self._schedule.positions
        if self._schedule.norm == "linf":
            return float(np.max(np.abs(pos[a] - b_position)))
        return float(np.sqrt(np.sum((pos[a] - b_position) ** 2)))

    def _position_of(self, node_id: int) -> np.ndarray:
        return self._schedule.positions[node_id]

    def _resolve_cause(self, cause_slot: int) -> Optional[int]:
        """Resolve the device a HEARD message's cause slot refers to.

        The cause lies within ``R`` of the HEARD sender, hence within ``2R`` of
        this device, and the schedule guarantees slot uniqueness within the
        separation distance (``3R`` by default), so the owner is unambiguous.
        """
        my_pos = self._position_of(self.context.node_id)
        candidates = []
        for owner in self._schedule.owners_of_slot(cause_slot):
            if self._distance(owner, my_pos) <= 2.0 * self.context.radius + 1e-9:
                candidates.append(owner)
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- schedule interface ------------------------------------------------------------------------
    def interests(self) -> Iterable[int]:
        slots = set(self._receivers)
        slots.add(self._my_slot)
        return sorted(slots)

    # -- cohort runtime hooks ----------------------------------------------------------------------
    @property
    def region_profile(self) -> tuple:
        """Region-derived view of this device's position (lazily computed).

        Exposed through :attr:`position_cohort_attr` so the cohort runtime
        folds it into the grouping key; computed on first access because the
        profile scans every slot's owners and is only needed when cohort
        grouping runs.
        """
        cached = self._region_profile_cache
        if cached is None:
            from .regions import region_profile_of

            cached = region_profile_of(self._schedule, self.context.position, self.context.radius)
            self._region_profile_cache = cached
        return cached

    def cohort_key(self):
        """Everything that distinguishes this device's post-setup state.

        For honest non-source devices the dynamic state (votes, commits,
        streams) is empty at construction, so the slot assignment, the
        receiver slot/peer maps and the configuration fully determine the
        machine; the source and preloaded (lying) devices hold different
        initial commitments and are keyed apart.  Position equivalence is
        *not* captured here — the runtime folds :attr:`region_profile` in
        separately via :attr:`position_cohort_attr`.
        """
        return (
            self.config.tolerance,
            self.config.relay_heard,
            self.config.idle_veto,
            self._my_slot,
            tuple(sorted(self._peer_of_slot.items())),
            self._is_source,
            self._preloaded,
            self.context.message_length,
        )

    def soa_state_spec(self, slot: int) -> Optional[dict]:
        """Role of this device in ``slot`` for the SoA compiler."""
        if slot == self._my_slot:
            return {
                "role": "owner",
                "sender": self._sender,
                "idle_veto": self.config.idle_veto,
            }
        receiver = self._receivers.get(slot)
        if receiver is None:
            return None
        return {"role": "receiver", "receiver": receiver, "drain_slot": self._drain_stream}

    # -- slot lifecycle ---------------------------------------------------------------------------------
    def _begin_slot(self, slot: int) -> None:
        self._role = _Role.IDLE
        self._active_receiver = None
        self._active_slot = slot
        self._blocker = None
        if slot == self._my_slot:
            if self._sender.has_pending:
                self._role = _Role.SENDER
                self._sender.begin_slot()
            else:
                self._role = _Role.BLOCKER
                self._blocker = TwoBitBlocker(always=self.config.idle_veto)
            return
        receiver = self._receivers.get(slot)
        if receiver is not None and receiver.begin_slot():
            self._role = _Role.RECEIVER
            self._active_receiver = receiver

    def _act_core(self, slot: int, phase: int) -> Optional[FrameKind]:
        """One transmit decision: the frame kind to broadcast, or ``None``."""
        if phase == 0:
            self._begin_slot(slot)
        transmit = False
        kind = FrameKind.DATA_BIT
        if self._role is _Role.SENDER:
            transmit = self._sender.action(phase)
            kind = FrameKind.DATA_BIT if phase in (0, 2) else FrameKind.VETO
        elif self._role is _Role.BLOCKER and self._blocker is not None:
            transmit = self._blocker.action(phase)
            kind = FrameKind.VETO
        elif self._role is _Role.RECEIVER and self._active_receiver is not None:
            transmit = self._active_receiver.action(phase)
            kind = FrameKind.ACK if phase in (1, 3) else FrameKind.VETO
        return kind if transmit else None

    def _observe_core(self, phase: int, busy: bool) -> None:
        if self._role is _Role.SENDER:
            self._sender.observe(phase, busy)
        elif self._role is _Role.BLOCKER and self._blocker is not None:
            self._blocker.observe(phase, busy)
        elif self._role is _Role.RECEIVER and self._active_receiver is not None:
            self._active_receiver.observe(phase, busy)

    def _end_core(self, slot: int) -> None:
        if self._role is _Role.SENDER:
            self._sender.finish_slot()
        elif self._role is _Role.RECEIVER and self._active_receiver is not None:
            self._active_receiver.finish_slot()
            self._drain_stream(slot)
        self._role = _Role.IDLE
        self._active_receiver = None
        self._blocker = None

    # -- engine-facing entry points (per-device and phase-machine) ---------------------------
    def act(self, slot_cycle: int, slot: int, phase: int) -> Optional[Frame]:
        kind = self._act_core(slot, phase)
        return None if kind is None else self._interned_frame(kind)

    def observe(self, slot_cycle: int, slot: int, phase: int, observation: Observation) -> None:
        self._observe_core(phase, observation.busy)

    def end_slot(self, slot_cycle: int, slot: int) -> None:
        self._end_core(slot)

    def phase_act(self, ctx: PhaseContext) -> Optional[ActionSpec]:
        kind = self._act_core(ctx.slot, ctx.phase)
        return None if kind is None else action_spec(kind)

    def phase_observe(self, ctx: PhaseContext, observation: Observation) -> None:
        self._observe_core(ctx.phase, observation.busy)

    def phase_end(self, ctx: PhaseContext) -> None:
        self._end_core(ctx.slot)

    # -- control-message processing ---------------------------------------------------------------------
    def _drain_stream(self, slot: int) -> None:
        receiver = self._receivers[slot]
        peer = self._peer_of_slot[slot]
        frame_bits = self._codec.frame_bits
        bits = receiver.received_bits
        consumed = self._consumed[slot]
        while consumed + frame_bits <= len(bits):
            frame = bits[consumed : consumed + frame_bits]
            consumed += frame_bits
            message = self._codec.decode(frame)
            if message is not None:
                self._handle_control(peer, message)
        self._consumed[slot] = consumed

    def _handle_control(self, peer: int, message: ControlMessage) -> None:
        if message.mtype is ControlType.SOURCE:
            if peer == self._schedule.source_index:
                self._commit(message.bit_index, message.bit_value, direct=True)
            return
        if message.mtype is ControlType.COMMIT:
            self._add_vote(message.bit_index, message.bit_value, voter=peer, witness=None)
            if self.config.relay_heard:
                key = (peer, message.bit_index, message.bit_value)
                if key not in self._heard_sent:
                    self._heard_sent.add(key)
                    self._enqueue(
                        ControlMessage(
                            ControlType.HEARD,
                            message.bit_index,
                            message.bit_value,
                            cause=self._schedule.slot_of_node(peer),
                        )
                    )
            return
        if message.mtype is ControlType.HEARD:
            cause = self._resolve_cause(message.cause)
            if cause is None or cause == self.context.node_id:
                return
            self._add_vote(message.bit_index, message.bit_value, voter=cause, witness=peer)

    def _add_vote(self, index: int, value: int, *, voter: int, witness: Optional[int]) -> None:
        if index in self._commit_values:
            return
        key = (index, value)
        per_voter = self._votes.setdefault(key, {})
        per_voter.setdefault(voter, []).append(witness)
        self._check_commit(index, value)

    def _check_commit(self, index: int, value: int) -> None:
        """Commit ``(index, value)`` once ``t + 1`` neighborhood-compatible voters exist."""
        per_voter = self._votes.get((index, value), {})
        needed = self.config.tolerance + 1
        if len(per_voter) < needed:
            return
        radius = self.context.radius
        my_pos = np.asarray(self.context.position, dtype=float)
        centers = [my_pos] + [self._position_of(v) for v in per_voter]
        for center in centers:
            count = 0
            for voter, witnesses in per_voter.items():
                if self._distance(voter, center) > radius + 1e-9:
                    continue
                compatible = False
                for witness in witnesses:
                    if witness is None or self._distance(witness, center) <= radius + 1e-9:
                        compatible = True
                        break
                if compatible:
                    count += 1
                    if count >= needed:
                        self._commit(index, value, direct=False)
                        return

    def _commit(self, index: int, value: int, *, direct: bool) -> None:
        if index in self._commit_values:
            return
        if not (1 <= index <= self.context.message_length):
            return
        self._commit_values[index] = int(value)
        self._votes.pop((index, 0), None)
        self._votes.pop((index, 1), None)
        if not self._is_source:
            self._enqueue(ControlMessage(ControlType.COMMIT, index, int(value)))

    # -- outcome ----------------------------------------------------------------------------------------------
    @property
    def committed(self) -> dict[int, int]:
        """Mapping of committed bit indexes (1-based) to values."""
        return dict(self._commit_values)

    @property
    def delivered(self) -> bool:
        k = self.context.message_length
        return all(index in self._commit_values for index in range(1, k + 1))

    @property
    def delivered_message(self) -> Optional[Bits]:
        if not self.delivered:
            return None
        if self._delivered_message is None:
            k = self.context.message_length
            self._delivered_message = tuple(self._commit_values[i] for i in range(1, k + 1))
        return self._delivered_message


# -- registry plugin ----------------------------------------------------------------------
@register_protocol("multipath", aliases=("multipathrb", "mp"))
class MultiPathPlugin(ProtocolPlugin):
    """Registry plugin wiring MultiPathRB into the scenario builder.

    MultiPathRB streams whole control frames over the 1Hop-Protocol, so one
    hop of pipeline progress costs a frame's worth of successful slots —
    :meth:`bits_per_hop` scales the generous round cap accordingly.
    """

    protocol_classes = (MultiPathNode,)

    def build(self, config) -> MultiPathNode:
        return MultiPathNode(
            MultiPathConfig(tolerance=config.multipath_tolerance, idle_veto=config.idle_veto)
        )

    def build_liar(self, config, fake_message) -> MultiPathNode:
        liar_config = MultiPathConfig(
            tolerance=int(config.multipath_tolerance), relay_heard=False
        )
        return MultiPathNode(config=liar_config, preloaded_message=fake_message)

    def build_schedule(self, deployment, config) -> NodeSchedule:
        return NodeSchedule(
            deployment.positions,
            config.radius,
            deployment.source_index,
            separation=config.separation,
            norm=config.norm,
        )

    def bits_per_hop(self, config, num_slots: int) -> int:
        return ControlCodec(config.message_length, num_slots).frame_bits
