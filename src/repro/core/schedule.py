"""TDMA broadcast schedules.

To prevent contention among honest devices the paper allocates a simple
TDMA-like broadcast schedule in which no two devices within distance ``3R`` of
each other are scheduled in the same slot, each slot being six consecutive
rounds (the "broadcast interval").  The schedule is computed locally from
device locations; the source is always awarded the first broadcast interval.

Two schedule flavours are provided:

* :class:`SquareSchedule` -- used by NeighborWatchRB, where whole squares of
  the :class:`~repro.core.regions.SquareGrid` share a slot (all their honest
  members broadcast identically).  Slots are assigned by colouring squares
  with a ``m x m`` periodic pattern, which reuses slots only between squares
  at least ``separation`` apart and therefore needs only ``O(R^2)`` slots.
* :class:`NodeSchedule` -- used by MultiPathRB and the epidemic baseline,
  where each device has its own slot.  On the analytical grid the same
  periodic-pattern rule applies; for arbitrary random deployments we fall
  back to a deterministic greedy colouring of the conflict graph (documented
  in DESIGN.md as a stand-in for the paper's location-derived rule, which is
  only specified for grid placements).

Both flavours expose the mapping between rounds and ``(cycle, slot, phase)``
triples and the inverse mapping from slots to their owners, which receivers
use to attribute transmissions to locations ("a node identifies the location
of a message's sender based on the slot in which it was sent").
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np

from ..topology.geometry import as_positions, pairwise_distances
from ..topology.grid import GridBuckets
from .regions import SquareGrid, SquareId

__all__ = [
    "PHASES_PER_SLOT",
    "SOURCE_SLOT",
    "Schedule",
    "SquareSchedule",
    "NodeSchedule",
]

#: Number of rounds in one broadcast interval (the 2Bit-Protocol uses six).
PHASES_PER_SLOT = 6

#: The slot reserved for the broadcast source.
SOURCE_SLOT = 0

#: Deployment size above which :class:`NodeSchedule` derives its conflict and
#: listening neighborhoods from grid-bucketed queries instead of dense
#: ``N x N`` distance matrices.  Both paths filter with the same elementwise
#: distance arithmetic and yield neighbor ids in the same ascending order, so
#: the greedy colouring and the neighbor-slot tables are identical — only the
#: memory (O(N * neighborhood) vs O(N^2)) differs.
BUCKETED_SCHEDULE_MIN_NODES = 2048


class Schedule(abc.ABC):
    """Common round/slot arithmetic for TDMA schedules."""

    def __init__(self, num_slots: int, phases_per_slot: int = PHASES_PER_SLOT) -> None:
        if num_slots < 1:
            raise ValueError("a schedule needs at least one slot")
        if phases_per_slot < 1:
            raise ValueError("phases_per_slot must be >= 1")
        self.num_slots = int(num_slots)
        self.phases_per_slot = int(phases_per_slot)

    # -- round arithmetic -------------------------------------------------------
    @property
    def rounds_per_cycle(self) -> int:
        """Rounds in one full pass over the schedule."""
        return self.num_slots * self.phases_per_slot

    def locate_round(self, round_index: int) -> tuple[int, int, int]:
        """Map a global round index to ``(cycle, slot, phase)``."""
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        cycle, rem = divmod(round_index, self.rounds_per_cycle)
        slot, phase = divmod(rem, self.phases_per_slot)
        return cycle, slot, phase

    def round_index(self, cycle: int, slot: int, phase: int = 0) -> int:
        """Inverse of :meth:`locate_round`."""
        if not (0 <= slot < self.num_slots):
            raise ValueError("slot out of range")
        if not (0 <= phase < self.phases_per_slot):
            raise ValueError("phase out of range")
        if cycle < 0:
            raise ValueError("cycle must be non-negative")
        return (cycle * self.num_slots + slot) * self.phases_per_slot + phase

    def slots_elapsed(self, round_index: int) -> int:
        """Number of complete slots that finished strictly before ``round_index``."""
        return round_index // self.phases_per_slot

    def iter_slot_starts(self, start_round: int = 0):
        """Yield ``(cycle, slot)`` for consecutive slots, forever.

        This is the engine's replacement for calling :meth:`locate_round` once
        per slot: advancing the generator is a pair of integer operations
        instead of two divmods.  ``start_round`` must be slot-aligned (the
        engine always advances in whole slots).
        """
        cycle, slot, phase = self.locate_round(start_round)
        if phase != 0:
            raise ValueError("start_round must be aligned to a slot boundary")
        num_slots = self.num_slots
        while True:
            yield cycle, slot
            slot += 1
            if slot == num_slots:
                slot = 0
                cycle += 1

    # -- ownership ---------------------------------------------------------------
    @abc.abstractmethod
    def slot_of_node(self, node_id: int) -> int:
        """The broadcast slot of a given device."""

    @abc.abstractmethod
    def owners_of_slot(self, slot: int) -> Sequence[int]:
        """Device indices that broadcast during ``slot`` (spatial reuse allowed)."""


class SquareSchedule(Schedule):
    """Slot assignment for NeighborWatchRB squares.

    Parameters
    ----------
    grid:
        The square partition of the map.
    radius:
        Communication radius ``R``.
    positions:
        Device coordinates, used to resolve per-device slots and occupancy.
    source_index:
        The broadcast source; it always owns :data:`SOURCE_SLOT` regardless of
        its square.
    separation:
        Minimum distance between devices sharing a slot.  Defaults to the
        paper's ``3R``.
    """

    def __init__(
        self,
        grid: SquareGrid,
        radius: float,
        positions: np.ndarray,
        source_index: int,
        *,
        separation: float | None = None,
        phases_per_slot: int = PHASES_PER_SLOT,
    ) -> None:
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.grid = grid
        self.radius = float(radius)
        self.separation = float(separation) if separation is not None else 3.0 * radius
        self.positions = as_positions(positions)
        self.source_index = int(source_index)
        if not (0 <= self.source_index < self.positions.shape[0]):
            raise ValueError("source_index out of range")
        # Periodic colouring: squares whose column and row agree modulo ``m``
        # share a colour; any two such squares are at least (m-1)*side apart.
        self._pattern = max(1, int(math.ceil(self.separation / grid.side)) + 1)
        num_slots = 1 + self._pattern * self._pattern
        super().__init__(num_slots=num_slots, phases_per_slot=phases_per_slot)

        self._square_of_node: list[SquareId] = grid.squares_of(self.positions)
        self._members: dict[SquareId, list[int]] = {}
        for idx, sq in enumerate(self._square_of_node):
            self._members.setdefault(sq, []).append(idx)
        self._owners_cache: dict[int, tuple[int, ...]] = {}

    # -- square-level API ---------------------------------------------------------
    @property
    def pattern_size(self) -> int:
        """Side of the periodic colouring pattern (number of colours = size^2)."""
        return self._pattern

    def slot_of_square(self, square: SquareId) -> int:
        """Slot during which every member of ``square`` broadcasts."""
        col, row = square
        return 1 + (col % self._pattern) * self._pattern + (row % self._pattern)

    def squares_of_slot(self, slot: int) -> list[SquareId]:
        """All squares sharing ``slot`` (they are pairwise at least ``separation`` apart)."""
        if slot == SOURCE_SLOT:
            return []
        if not (1 <= slot < self.num_slots):
            raise ValueError("slot out of range")
        rem = slot - 1
        col_mod, row_mod = divmod(rem, self._pattern)
        out = []
        for sq in self.grid.iter_squares():
            if sq[0] % self._pattern == col_mod and sq[1] % self._pattern == row_mod:
                out.append(sq)
        return out

    def square_of_node(self, node_id: int) -> SquareId:
        return self._square_of_node[node_id]

    def members_of_square(self, square: SquareId) -> list[int]:
        """Device indices located in ``square`` (may be empty)."""
        return list(self._members.get(square, []))

    # -- Schedule interface ---------------------------------------------------------
    def slot_of_node(self, node_id: int) -> int:
        if node_id == self.source_index:
            return SOURCE_SLOT
        return self.slot_of_square(self._square_of_node[node_id])

    def owners_of_slot(self, slot: int) -> tuple[int, ...]:
        if slot in self._owners_cache:
            return self._owners_cache[slot]
        if slot == SOURCE_SLOT:
            owners: tuple[int, ...] = (self.source_index,)
        else:
            ids: list[int] = []
            for sq in self.squares_of_slot(slot):
                ids.extend(i for i in self._members.get(sq, []) if i != self.source_index)
            owners = tuple(sorted(ids))
        self._owners_cache[slot] = owners
        return owners

    def listening_slots_of_node(self, node_id: int) -> list[int]:
        """Slots a NeighborWatchRB device must observe.

        These are the source slot, the device's own square slot and the slots
        of the up-to-eight neighboring squares.
        """
        sq = self._square_of_node[node_id]
        slots = {SOURCE_SLOT, self.slot_of_square(sq)}
        for nb in self.grid.neighbors(sq):
            slots.add(self.slot_of_square(nb))
        return sorted(slots)


class NodeSchedule(Schedule):
    """Per-device slot assignment for MultiPathRB and the epidemic baseline.

    Devices whose distance is at most ``separation`` never share a slot, so a
    receiver can unambiguously attribute a slot to a single device within its
    own neighborhood.  Slot 0 is reserved for the source.  The assignment is a
    deterministic greedy colouring of the conflict graph in device-id order,
    which keeps the number of slots within a small factor of the maximum
    conflict degree (itself ``O(R^2 * density)``).
    """

    def __init__(
        self,
        positions: np.ndarray,
        radius: float,
        source_index: int,
        *,
        separation: float | None = None,
        norm: str = "l2",
        phases_per_slot: int = PHASES_PER_SLOT,
    ) -> None:
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.positions = as_positions(positions)
        self.radius = float(radius)
        self.separation = float(separation) if separation is not None else 3.0 * radius
        self.norm = norm
        self.source_index = int(source_index)
        n = self.positions.shape[0]
        if not (0 <= self.source_index < n):
            raise ValueError("source_index out of range")

        slots = np.zeros(n, dtype=int)
        if n > 1:
            # The conflict neighborhoods come from a dense distance matrix on
            # small deployments and from grid-bucketed queries on large ones;
            # both filter with the same elementwise distance arithmetic and
            # list neighbors in ascending id order, so the colouring below is
            # identical either way.
            neighbors_of = self._neighborhoods(self.separation, include_self=False)
            source = self.source_index
            for node in range(n):
                if node == source:
                    slots[node] = SOURCE_SLOT
                    continue
                # Colour greedily against already-coloured conflict neighbors
                # (ids below ours, plus the pre-assigned source).  The mask
                # arithmetic replaces a per-neighbor Python loop but assigns
                # exactly the same slots.
                neighbors = neighbors_of(node)
                decided = neighbors[(neighbors < node) | (neighbors == source)]
                used = set(slots[decided].tolist())
                used.add(SOURCE_SLOT)
                slot = 1
                while slot in used:
                    slot += 1
                slots[node] = slot
        self._slots = slots
        num_slots = int(slots.max()) + 1 if n else 1
        super().__init__(num_slots=max(num_slots, 1), phases_per_slot=phases_per_slot)
        self._owners: dict[int, tuple[int, ...]] = {}
        for node in range(n):
            self._owners.setdefault(int(slots[node]), tuple())
        grouped: dict[int, list[int]] = {}
        for node in range(n):
            grouped.setdefault(int(slots[node]), []).append(node)
        self._owners = {slot: tuple(ids) for slot, ids in grouped.items()}
        self._neighbor_slot_tables: dict[float, list[list[int]]] = {}

    def _neighborhoods(self, threshold: float, *, include_self: bool):
        """Per-node neighbor ids at ``threshold``, dense or grid-bucketed.

        Returns a callable ``node -> ascending neighbor id array``.  Small
        deployments slice a dense pairwise matrix (the historical oracle);
        at :data:`BUCKETED_SCHEDULE_MIN_NODES` nodes and above the same sets
        come from :class:`~repro.topology.grid.GridBuckets` CSR arrays built
        without materializing anything quadratic.  The distance predicate is
        the same elementwise expression in both paths, so the neighbor sets
        match exactly.
        """
        n = self.positions.shape[0]
        if n >= BUCKETED_SCHEDULE_MIN_NODES and threshold > 0:
            buckets = GridBuckets(self.positions, cell_size=threshold)
            indptr, indices = buckets.neighbor_arrays(
                threshold, self.norm, include_self=include_self
            )
            return lambda node: indices[indptr[node] : indptr[node + 1]]
        dist = pairwise_distances(self.positions, norm=self.norm)
        within = dist <= threshold
        if not include_self:
            np.fill_diagonal(within, False)
        return lambda node: np.nonzero(within[node])[0]

    # -- Schedule interface ---------------------------------------------------------
    def slot_of_node(self, node_id: int) -> int:
        return int(self._slots[node_id])

    def owners_of_slot(self, slot: int) -> tuple[int, ...]:
        return self._owners.get(slot, tuple())

    def neighbor_slots_of_node(self, node_id: int, listen_radius: float | None = None) -> list[int]:
        """Slots of devices within communication range of ``node_id`` (plus the source slot).

        Every device queries this during protocol setup, so the answers for a
        given radius are computed for all nodes in one pass (dense on small
        deployments, grid-bucketed on large ones — identical sets either way,
        see :meth:`_neighborhoods`) and cached; subsequent calls are a list
        copy.
        """
        r = self.radius if listen_radius is None else listen_radius
        table = self._neighbor_slot_tables.get(r)
        if table is None:
            neighbors_of = self._neighborhoods(r, include_self=True)
            slots = self._slots
            table = []
            for node in range(self.positions.shape[0]):
                nearby = neighbors_of(node)
                node_slots = set(slots[nearby].tolist())
                node_slots.add(SOURCE_SLOT)
                table.append(sorted(node_slots))
            self._neighbor_slot_tables[r] = table
        return list(table[node_id])

    def owner_in_neighborhood(self, slot: int, node_id: int, listen_radius: float | None = None) -> int | None:
        """The unique owner of ``slot`` within range of ``node_id``, if any.

        This is how a MultiPathRB receiver resolves "who sent this": the slot
        plus the schedule identify the sender's location, because the schedule
        never reuses a slot within ``separation`` of the listener.
        """
        r = self.radius if listen_radius is None else listen_radius
        candidates = []
        pos = self.positions
        for owner in self.owners_of_slot(slot):
            if self.norm == "linf":
                d = float(np.max(np.abs(pos[owner] - pos[node_id])))
            else:
                d = float(np.sqrt(np.sum((pos[owner] - pos[node_id]) ** 2)))
            if d <= r:
                candidates.append(owner)
        if len(candidates) == 1:
            return candidates[0]
        return None
