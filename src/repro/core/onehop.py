"""The 1Hop-Protocol: reliable authenticated streaming of bits over one hop.

The 1Hop-Protocol turns the fallible 2Bit-Protocol into an exactly-once,
in-order bit stream between a sender and the honest devices in its
neighborhood.  Each application bit is sent as a pair ``(parity, data)``:

* the *parity* (control) bit alternates ``1, 0, 1, 0, ...`` starting at ``1``
  for the first data bit, letting receivers distinguish a retransmission of
  the current bit from the next bit in the sequence;
* the *data* bit is the actual payload.

Whenever a 2Bit exchange fails (because of interference, which by Theorem 1
requires the adversary to spend budget), the sender simply repeats the same
pair in its next broadcast interval.  The sender advances to the next bit only
after a successful exchange, and — by the termination property of the
2Bit-Protocol — a successful exchange implies every honest receiver accepted
the pair, so sender and receivers can never get out of sync (Theorem 2).

The classes below manage the per-slot lifecycle: the multi-hop layers call
``begin_slot`` at the start of a broadcast interval, drive the embedded 2Bit
state machine through the six phases, and call ``finish_slot`` at the end.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .messages import Bits, validate_bits
from .twobit import TwoBitOutcome, TwoBitReceiver, TwoBitSender

__all__ = ["parity_of_index", "OneHopSender", "OneHopReceiver"]


def parity_of_index(bit_index: int) -> int:
    """Parity (control) bit for the 1-based ``bit_index``-th data bit.

    The paper fixes the first parity value to ``1`` so that an idle channel
    (which reads as ``(0, 0)``) can never be mistaken for the first bit.
    """
    if bit_index < 1:
        raise ValueError("bit_index is 1-based and must be >= 1")
    return 1 if bit_index % 2 == 1 else 0


class OneHopSender:
    """Sender side of the 1Hop-Protocol.

    The sender maintains a queue of data bits.  Relay devices append to the
    queue as they commit to new bits (``extend``); the broadcast source seeds
    the queue with the whole message up front.

    Usage per broadcast interval::

        active = sender.begin_slot()      # False -> nothing to send this slot
        for phase in range(6):
            if active and sender.action(phase): broadcast(...)
            ... deliver observations via sender.observe(phase, busy) ...
        advanced = sender.finish_slot()   # True -> the current bit was delivered
    """

    def __init__(self, bits: Iterable[int] = ()) -> None:
        self._bits: list[int] = list(validate_bits(bits))
        self._sent_count = 0
        self._attempts = 0
        self._successful_slots = 0
        self._current: Optional[TwoBitSender] = None

    # -- queue management -----------------------------------------------------------
    def extend(self, bits: Iterable[int]) -> None:
        """Append newly committed data bits to the outgoing stream."""
        self._bits.extend(validate_bits(bits))

    @property
    def queued_bits(self) -> Bits:
        """All data bits ever queued (sent and pending)."""
        return tuple(self._bits)

    @property
    def sent_count(self) -> int:
        """Number of data bits already delivered to every honest neighbor."""
        return self._sent_count

    @property
    def pending_count(self) -> int:
        """Number of queued data bits not yet delivered."""
        return len(self._bits) - self._sent_count

    @property
    def has_pending(self) -> bool:
        return self.pending_count > 0

    @property
    def attempts(self) -> int:
        """Total number of 2Bit exchanges started (retransmissions included)."""
        return self._attempts

    @property
    def successful_slots(self) -> int:
        return self._successful_slots

    @property
    def current_pair(self) -> Optional[tuple[int, int]]:
        """The ``(parity, data)`` pair being transmitted this slot, if any."""
        if self._current is None:
            return None
        return (self._current.b1, self._current.b2)

    def state_signature(self) -> tuple:
        """Behaviour-relevant state for cohort re-merging (slot boundaries only).

        The queue and the delivered watermark fully determine every future
        action: the next pair is derived from them, and ``_current`` is always
        ``None`` between slots.  Attempt/success tallies are statistics — two
        senders that differ only there behave identically — so they are
        deliberately excluded, letting transiently diverged cohort members
        re-merge.
        """
        return (tuple(self._bits), self._sent_count)

    # -- SoA kernel accessors -----------------------------------------------------------
    def soa_current_pair(self) -> tuple[int, int]:
        """``(parity, data)`` of the next pending bit, without allocating.

        The SoA kernels drive the 2Bit exchange in mask algebra and never
        construct the per-slot :class:`TwoBitSender`; the caller guarantees
        :attr:`has_pending`.  This accessor (like every ``soa_*`` seam)
        consumes no RNG and reads exactly the state the scalar slot
        machines would, which is what lets lossy/Friis runs interleave
        scalar-fallback occurrences with compiled ones: the generator is
        advanced only at the channel layer, identically on either path.
        """
        return (parity_of_index(self._sent_count + 1), self._bits[self._sent_count])

    def soa_advance(self) -> None:
        """Mark the current bit delivered (SoA kernel success path).

        Bypasses ``begin_slot``/``finish_slot``, so the attempt/success
        tallies are not maintained on the SoA tier — they are statistics
        excluded from :meth:`state_signature` for exactly that reason.
        """
        self._sent_count += 1

    def clone(self) -> "OneHopSender":
        """Independent state-identical copy (cohort splits, possibly mid-slot)."""
        other = OneHopSender.__new__(OneHopSender)
        other._bits = list(self._bits)
        other._sent_count = self._sent_count
        other._attempts = self._attempts
        other._successful_slots = self._successful_slots
        other._current = None if self._current is None else self._current.clone()
        return other

    # -- slot lifecycle ----------------------------------------------------------------
    def begin_slot(self) -> bool:
        """Start a broadcast interval; returns whether there is a bit to send."""
        if self._current is not None:
            raise RuntimeError("begin_slot called twice without finish_slot")
        if not self.has_pending:
            return False
        index = self._sent_count + 1
        data = self._bits[self._sent_count]
        self._current = TwoBitSender(parity_of_index(index), data)
        self._attempts += 1
        return True

    def action(self, phase: int) -> bool:
        if self._current is None:
            return False
        return self._current.action(phase)

    def listens(self, phase: int) -> bool:
        if self._current is None:
            return False
        return self._current.listens(phase)

    def observe(self, phase: int, busy: bool) -> None:
        if self._current is not None:
            self._current.observe(phase, busy)

    def finish_slot(self) -> bool:
        """End the broadcast interval; returns whether the current bit advanced."""
        if self._current is None:
            return False
        outcome = self._current.outcome()
        self._current = None
        if outcome is TwoBitOutcome.SUCCESS:
            self._sent_count += 1
            self._successful_slots += 1
            return True
        return False

    def abort_slot(self) -> None:
        """Discard the in-flight exchange without advancing (used on interrupts)."""
        self._current = None


class OneHopReceiver:
    """Receiver side of the 1Hop-Protocol.

    ``expected_length`` bounds the number of data bits accepted; pass ``None``
    for an open-ended stream (MultiPathRB's control channel).  The receiver
    tracks the alternating parity: a successful 2Bit exchange whose parity
    matches the *next expected* bit is appended to the stream, anything else
    (a retransmission of the previous bit, or noise) is ignored, which is
    always safe.
    """

    def __init__(self, expected_length: Optional[int] = None) -> None:
        if expected_length is not None and expected_length < 0:
            raise ValueError("expected_length must be non-negative")
        self._expected_length = expected_length
        self._received: list[int] = []
        self._current: Optional[TwoBitReceiver] = None
        self._failed_slots = 0
        self._accepted_slots = 0
        self._ignored_slots = 0

    # -- state -------------------------------------------------------------------------
    @property
    def received_bits(self) -> Bits:
        """Data bits accepted so far, in order."""
        return tuple(self._received)

    def peek_received(self) -> list:
        """The internal accepted-bit list, without copying.

        Hot-path accessor for per-slot consumers (NeighborWatchRB's commit
        rule scans every receiver after every slot); callers must treat the
        list as read-only.
        """
        return self._received

    @property
    def received_count(self) -> int:
        return len(self._received)

    @property
    def complete(self) -> bool:
        """Whether the expected number of bits has been received."""
        return self._expected_length is not None and len(self._received) >= self._expected_length

    @property
    def failed_slots(self) -> int:
        """Number of slots in which the exchange was vetoed/failed."""
        return self._failed_slots

    @property
    def accepted_slots(self) -> int:
        return self._accepted_slots

    @property
    def ignored_slots(self) -> int:
        """Slots that succeeded but carried a stale parity (retransmissions)."""
        return self._ignored_slots

    @property
    def expected_parity(self) -> int:
        """Parity value the next new data bit must carry."""
        return parity_of_index(len(self._received) + 1)

    def take_new_bits(self, already_consumed: int) -> Bits:
        """Bits received beyond ``already_consumed`` (helper for stream consumers)."""
        return tuple(self._received[already_consumed:])

    def state_signature(self) -> tuple:
        """Behaviour-relevant state for cohort re-merging (slot boundaries only).

        The accepted stream determines the expected parity and the
        completion check; failure/ignore tallies are statistics and excluded
        (a member whose exchange failed and one that ignored a stale
        retransmission hold the same stream and behave identically).
        """
        return tuple(self._received)

    # -- SoA kernel accessor ------------------------------------------------------------
    def soa_append(self, data: int) -> None:
        """Append an accepted data bit (SoA kernel accept path).

        The kernel performs the veto/parity/completion checks in mask algebra
        and bypasses the per-slot :class:`TwoBitReceiver` objects, so the
        failed/accepted/ignored tallies are not maintained on the SoA tier;
        the accepted stream — the behaviour-relevant state — is.
        """
        self._received.append(data)

    def clone(self) -> "OneHopReceiver":
        """Independent state-identical copy (cohort splits, possibly mid-slot)."""
        other = OneHopReceiver.__new__(OneHopReceiver)
        other._expected_length = self._expected_length
        other._received = list(self._received)
        other._current = None if self._current is None else self._current.clone()
        other._failed_slots = self._failed_slots
        other._accepted_slots = self._accepted_slots
        other._ignored_slots = self._ignored_slots
        return other

    # -- slot lifecycle -------------------------------------------------------------------
    def begin_slot(self) -> bool:
        """Start listening for a broadcast interval of the peer.

        Returns ``False`` when the stream is already complete (the receiver no
        longer needs to ack, and stale retransmissions are ignored anyway).
        """
        if self._current is not None:
            raise RuntimeError("begin_slot called twice without finish_slot")
        if self.complete:
            return False
        self._current = TwoBitReceiver()
        return True

    def action(self, phase: int) -> bool:
        if self._current is None:
            return False
        return self._current.action(phase)

    def listens(self, phase: int) -> bool:
        if self._current is None:
            return False
        return self._current.listens(phase)

    def observe(self, phase: int, busy: bool) -> None:
        if self._current is not None:
            self._current.observe(phase, busy)

    def finish_slot(self) -> Optional[int]:
        """End the broadcast interval.

        Returns the newly accepted data bit (0/1) when the exchange succeeded
        with the expected parity, and ``None`` otherwise.
        """
        if self._current is None:
            return None
        outcome = self._current.outcome()
        pair = self._current.result()
        self._current = None
        if outcome is not TwoBitOutcome.SUCCESS or pair is None:
            self._failed_slots += 1
            return None
        parity, data = pair
        if parity != self.expected_parity:
            self._ignored_slots += 1
            return None
        if self._expected_length is not None and len(self._received) >= self._expected_length:
            self._ignored_slots += 1
            return None
        self._received.append(data)
        self._accepted_slots += 1
        return data

    def abort_slot(self) -> None:
        """Discard the in-flight exchange (used on interrupts)."""
        self._current = None
