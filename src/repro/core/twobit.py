"""The 2Bit-Protocol: authenticated transmission of two bits over one hop.

The 2Bit-Protocol runs inside a single six-round broadcast interval of the
TDMA schedule.  The sender encodes each bit by broadcasting (``1``) or staying
silent (``0``); receivers acknowledge perceived activity; and two veto rounds
let either side abort the exchange whenever the acknowledgements do not match
what was sent.  The crucial asymmetry is that Byzantine devices can *add*
energy to the channel (spoofing, jamming) but can never *remove* it — silence
cannot be forged — so any interference is detected and converts a potentially
corrupted delivery into a clean failure (Theorem 1 of the paper).

Round layout (phases are 0-based within the slot)::

    phase 0 (R1): sender broadcasts iff b1 == 1
    phase 1 (R2): receivers that heard activity in R1 broadcast an ack
    phase 2 (R3): sender broadcasts iff b2 == 1
    phase 3 (R4): receivers that heard activity in R3 broadcast an ack
    phase 4 (R5): sender broadcasts a veto iff the acks contradict (b1, b2)
    phase 5 (R6): receivers that heard activity in R5 broadcast a veto

Outcomes: a receiver returns *success* (with its bit estimates) iff it heard
nothing in R5; the sender returns *success* iff it heard nothing in R6.

The classes below are pure state machines (no simulator dependency): they are
driven with ``action(phase) -> bool`` (should I broadcast?) and
``observe(phase, busy)`` calls and can therefore be unit- and property-tested
exhaustively, then reused verbatim by the multi-hop layers.
"""

from __future__ import annotations

import enum
from typing import Optional

__all__ = [
    "NUM_PHASES",
    "TwoBitOutcome",
    "TwoBitSender",
    "TwoBitReceiver",
    "TwoBitBlocker",
    "soa_veto_mask",
]

#: Number of rounds in one 2Bit-Protocol exchange.
NUM_PHASES = 6


def soa_veto_mask(
    senders_mask: int, b1_mask: int, b2_mask: int, ack1_busy: int, ack2_busy: int
) -> int:
    """Vectorised round-R5 veto decision over a packed bitmask of senders.

    Bit ``i`` of each argument describes sender ``i`` of a SoA slot group:
    its two transmitted bits (``b1_mask``/``b2_mask``) and whether the
    channel was busy in its two ack rounds (``ack1_busy``/``ack2_busy``).
    The four veto conditions of :meth:`TwoBitSender._should_veto` collapse
    to "the ack echo differs from the transmitted bit" per bit pair, i.e. a
    XOR: bit ``i`` of the result is set iff sender ``i`` vetoes in R5.

    The decision reads nothing but busy flags, so it is valid under any
    busy model the SoA tier compiles — the unit-disk disjunction and the
    Friis power sum alike — and is unaffected by message loss, which turns
    a decode into a collision but never forges silence.
    """
    return ((b1_mask ^ ack1_busy) | (b2_mask ^ ack2_busy)) & senders_mask


class TwoBitOutcome(enum.Enum):
    """Result of one 2Bit-Protocol exchange for one participant."""

    PENDING = "pending"
    SUCCESS = "success"
    FAILURE = "failure"


class _PhaseTracker:
    """Small helper enforcing that phases are visited in order exactly once."""

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = 0

    def clone(self) -> "_PhaseTracker":
        other = _PhaseTracker()
        other._next = self._next
        return other

    def check(self, phase: int) -> None:
        if phase != self._next:
            raise ValueError(f"phase {phase} out of order; expected phase {self._next}")
        if not (0 <= phase < NUM_PHASES):
            raise ValueError(f"phase must be in [0, {NUM_PHASES}), got {phase}")
        self._next = phase + 1

    @property
    def finished(self) -> bool:
        return self._next >= NUM_PHASES


class TwoBitSender:
    """Sender role of the 2Bit-Protocol.

    Parameters
    ----------
    b1, b2:
        The two bits to transmit.  In the 1Hop-Protocol ``b1`` is the
        alternating parity bit and ``b2`` the data bit.
    """

    __slots__ = ("b1", "b2", "_ack1_busy", "_ack2_busy", "_veto_sent", "_final_busy", "_phase")

    def __init__(self, b1: int, b2: int) -> None:
        if b1 not in (0, 1) or b2 not in (0, 1):
            raise ValueError("bits must be 0 or 1")
        self.b1 = int(b1)
        self.b2 = int(b2)
        self._ack1_busy: Optional[bool] = None
        self._ack2_busy: Optional[bool] = None
        self._veto_sent = False
        self._final_busy: Optional[bool] = None
        self._phase = _PhaseTracker()

    def clone(self) -> "TwoBitSender":
        """Mid-exchange copy for cohort splits (state-identical, independent).

        Hand-rolled rather than ``copy.deepcopy``: splits happen inside the
        simulation hot path and the generic machinery is ~30x slower for
        these small fixed-slot machines.
        """
        other = TwoBitSender.__new__(TwoBitSender)
        other.b1 = self.b1
        other.b2 = self.b2
        other._ack1_busy = self._ack1_busy
        other._ack2_busy = self._ack2_busy
        other._veto_sent = self._veto_sent
        other._final_busy = self._final_busy
        other._phase = self._phase.clone()
        return other

    # -- driving ------------------------------------------------------------------
    def action(self, phase: int) -> bool:
        """Whether the sender broadcasts during ``phase``."""
        if phase == 0:
            return self.b1 == 1
        if phase == 2:
            return self.b2 == 1
        if phase == 4:
            self._veto_sent = self._should_veto()
            return self._veto_sent
        return False

    def listens(self, phase: int) -> bool:
        """Whether the sender needs the channel observation for ``phase``."""
        return phase in (1, 3, 5)

    def observe(self, phase: int, busy: bool) -> None:
        """Record the channel observation for an acknowledgement/veto round."""
        if phase == 1:
            self._ack1_busy = bool(busy)
        elif phase == 3:
            self._ack2_busy = bool(busy)
        elif phase == 5:
            self._final_busy = bool(busy)
        # Observations of the sender's own transmit rounds are ignored.

    # -- protocol logic ---------------------------------------------------------------
    def _should_veto(self) -> bool:
        """The four veto conditions of round R5 (paper, Section 4, Level 1)."""
        ack1 = bool(self._ack1_busy)
        ack2 = bool(self._ack2_busy)
        if self.b1 == 0 and ack1:
            return True
        if self.b1 == 1 and not ack1:
            return True
        if self.b2 == 0 and ack2:
            return True
        if self.b2 == 1 and not ack2:
            return True
        return False

    @property
    def veto_sent(self) -> bool:
        """Whether the sender broadcast a veto in round R5."""
        return self._veto_sent

    def outcome(self) -> TwoBitOutcome:
        """Result after the sixth round: success iff round R6 was silent."""
        if self._final_busy is None:
            return TwoBitOutcome.PENDING
        return TwoBitOutcome.FAILURE if self._final_busy else TwoBitOutcome.SUCCESS


class TwoBitReceiver:
    """Receiver role of the 2Bit-Protocol.

    A receiver estimates the two bits from the activity it perceives in rounds
    R1 and R3, echoes acknowledgements, and relays any veto it hears.  Its
    estimates are only meaningful when :meth:`outcome` reports success.
    """

    __slots__ = ("_heard1", "_heard2", "_heard_veto", "_ack1_sent", "_ack2_sent", "_veto_relayed")

    def __init__(self) -> None:
        self._heard1: Optional[bool] = None
        self._heard2: Optional[bool] = None
        self._heard_veto: Optional[bool] = None
        self._ack1_sent = False
        self._ack2_sent = False
        self._veto_relayed = False

    def clone(self) -> "TwoBitReceiver":
        """Mid-exchange copy for cohort splits (see :meth:`TwoBitSender.clone`)."""
        other = TwoBitReceiver.__new__(TwoBitReceiver)
        other._heard1 = self._heard1
        other._heard2 = self._heard2
        other._heard_veto = self._heard_veto
        other._ack1_sent = self._ack1_sent
        other._ack2_sent = self._ack2_sent
        other._veto_relayed = self._veto_relayed
        return other

    # -- driving ------------------------------------------------------------------
    def action(self, phase: int) -> bool:
        """Whether the receiver broadcasts during ``phase``."""
        if phase == 1:
            self._ack1_sent = bool(self._heard1)
            return self._ack1_sent
        if phase == 3:
            self._ack2_sent = bool(self._heard2)
            return self._ack2_sent
        if phase == 5:
            self._veto_relayed = bool(self._heard_veto)
            return self._veto_relayed
        return False

    def listens(self, phase: int) -> bool:
        return phase in (0, 2, 4)

    def observe(self, phase: int, busy: bool) -> None:
        if phase == 0:
            self._heard1 = bool(busy)
        elif phase == 2:
            self._heard2 = bool(busy)
        elif phase == 4:
            self._heard_veto = bool(busy)

    # -- outcome ---------------------------------------------------------------------
    @property
    def estimate(self) -> tuple[int, int]:
        """The receiver's estimate of the transmitted pair ``(b1, b2)``.

        A receiver assumes a bit is ``1`` exactly when it acknowledged it
        (i.e. when it perceived activity in the corresponding round).
        """
        return (1 if self._heard1 else 0, 1 if self._heard2 else 0)

    @property
    def veto_relayed(self) -> bool:
        """Whether this receiver broadcast a veto in round R6."""
        return self._veto_relayed

    def outcome(self) -> TwoBitOutcome:
        """Result after round R5: success iff the veto round was silent."""
        if self._heard_veto is None:
            return TwoBitOutcome.PENDING
        return TwoBitOutcome.FAILURE if self._heard_veto else TwoBitOutcome.SUCCESS

    def result(self) -> Optional[tuple[int, int]]:
        """The received pair if the exchange succeeded, else ``None``."""
        if self.outcome() is TwoBitOutcome.SUCCESS:
            return self.estimate
        return None


class TwoBitBlocker:
    """The "neighborhood watch" blocking role.

    A NeighborWatchRB device that has nothing (new) to send during its own
    square's broadcast interval must prevent any other device in the square —
    honest-but-ahead or Byzantine — from pushing data to the neighboring
    squares.  It does so by broadcasting during both veto rounds, which makes
    every honest receiver (activity in R5) and every honest co-sender
    (activity in R6) abort the exchange.

    ``always`` blockers veto unconditionally (the *idle veto* described in
    DESIGN.md, which also prevents an idle, silent slot from being
    misinterpreted as a ``(0, 0)`` pair); conditional blockers veto only when
    they perceived activity earlier in the slot.
    """

    __slots__ = ("always", "_heard_activity")

    def __init__(self, always: bool = True) -> None:
        self.always = bool(always)
        self._heard_activity = False

    def clone(self) -> "TwoBitBlocker":
        """Mid-slot copy for cohort splits (see :meth:`TwoBitSender.clone`)."""
        other = TwoBitBlocker.__new__(TwoBitBlocker)
        other.always = self.always
        other._heard_activity = self._heard_activity
        return other

    def action(self, phase: int) -> bool:
        if phase in (4, 5):
            return self.always or self._heard_activity
        return False

    def listens(self, phase: int) -> bool:
        return phase in (0, 1, 2, 3)

    def observe(self, phase: int, busy: bool) -> None:
        if phase in (0, 1, 2, 3) and busy:
            self._heard_activity = True

    @property
    def blocked(self) -> bool:
        """Whether the blocker actually vetoed (relevant for conditional blockers)."""
        return self.always or self._heard_activity
