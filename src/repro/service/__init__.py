"""The distributed sweep service: queue transport, worker daemons, front end.

ROADMAP open item 2 asks for a fabric where many hosts pull fingerprinted
``(task, repetition)`` jobs and push results into a shared store.  This
package is that fabric, built from pieces the earlier PRs already hardened:

* :mod:`repro.service.queue` — a durable, filesystem-backed work queue with
  atomic claim files, lease/heartbeat expiry and crash-safe requeue.  Jobs
  are keyed by :meth:`~repro.sim.runner.SweepTask.fingerprint`, so identical
  work submitted by overlapping sweeps collapses to one queue entry.
* :mod:`repro.service.backend` — the ``queue`` executor backend
  (:data:`repro.registry.EXECUTOR_BACKENDS`): enqueues a wave's attempts and
  streams :class:`~repro.sim.supervision.AttemptOutcome`\\ s back through the
  PR 8 :class:`~repro.sim.supervision.Supervisor` unchanged, so timeouts,
  retries and quarantine apply to queued jobs exactly as to local ones.
* :mod:`repro.service.worker` — the worker daemon
  (``python -m repro.service worker --queue DIR``): claims jobs, renews its
  leases from a heartbeat thread, runs repetitions and persists results into
  the shared :class:`~repro.store.ResultStore` named by the queue metadata.
* :mod:`repro.service.frontend` — the submit/serve/status/watch machinery
  behind the ``python -m repro.experiments`` subcommands of the same names,
  streaming progress from the per-group JSONL event log.

The hard contract of the whole fabric carries over from the PR 8 supervision
envelope: every repetition is a pure function of its seed, so a queue-backed
sweep with any number of worker daemons — including workers killed mid-job,
whose leases expire and whose jobs requeue — produces records, row hashes and
store fingerprints byte-identical to the serial sweep.  ``python -m
repro.service smoke`` drills exactly that end to end.
"""

from .queue import ClaimedJob, EnqueueOutcome, QueueError, WorkQueue

__all__ = ["WorkQueue", "ClaimedJob", "EnqueueOutcome", "QueueError"]
