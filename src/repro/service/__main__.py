"""Command-line entry points of the sweep service.

Subcommands::

    python -m repro.service worker --queue DIR [--store DIR] [--worker-id ID]
                                   [--poll S] [--max-jobs N] [--idle-exit S]
    python -m repro.service smoke [EXPERIMENT] [--spec FILE] [--scale small]
                                  [--workdir DIR] [--keep]

``worker`` runs one daemon against a queue directory (see
:mod:`repro.service.worker`).  The submit/serve/status/watch front end lives
under ``python -m repro.experiments`` next to ``run`` — workers are the only
piece operators point at the queue directly.

``smoke`` is the end-to-end acceptance drill the CI ``service-smoke`` job
runs, asserting the service fabric's hard contract on a real experiment:

1. run the experiment serially and export its rows;
2. ``submit`` the same spec to a fresh queue with a short lease;
3. start a *victim* worker rigged (via ``REPRO_SERVICE_HOLD``) to stall after
   claiming a job, plus one healthy worker, then SIGKILL the victim while
   both are alive — its lease expires and the job requeues;
4. drain the queue, re-run the experiment against the shared store, and
   assert zero cache misses and **byte-identical** exported rows;
5. assert at least one ``requeued`` event fired and the store scans clean
   with no duplicate fingerprints.

Exit code 0 when every assertion holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Worker daemons and smoke drills of the distributed sweep service.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    worker = subparsers.add_parser("worker", help="serve one queue: claim, run, persist")
    worker.add_argument("--queue", required=True, help="the work-queue directory")
    worker.add_argument(
        "--store",
        default=None,
        help="override the shared store directory the queue metadata binds",
    )
    worker.add_argument(
        "--worker-id", default=None, help="lease owner name (default: host-pid)"
    )
    worker.add_argument(
        "--poll", type=float, default=0.2, help="seconds between claim polls when idle"
    )
    worker.add_argument(
        "--max-jobs", type=int, default=None, help="exit after completing this many jobs"
    )
    worker.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        help="exit after this many seconds without claimable work (default: serve forever)",
    )

    smoke = subparsers.add_parser(
        "smoke", help="end-to-end kill-a-worker drill asserting byte-identity"
    )
    smoke.add_argument("experiment", nargs="?", default="FIG5", help="experiment id (default: FIG5)")
    smoke.add_argument("--spec", default=None, help="spec file instead of an experiment id")
    smoke.add_argument("--scale", default="small", help="spec scale (default: small)")
    smoke.add_argument(
        "--workdir",
        default=None,
        help="directory for the drill's queue/store/exports (default: a temp dir)",
    )
    smoke.add_argument(
        "--keep", action="store_true", help="keep the workdir for inspection"
    )
    return parser


def _command_worker(args) -> int:
    from .queue import QueueError
    from .worker import worker_loop

    try:
        worker_loop(
            args.queue,
            store_dir=args.store,
            worker_id=args.worker_id,
            poll_interval=args.poll,
            max_jobs=args.max_jobs,
            idle_exit=args.idle_exit,
            log=sys.stderr,
        )
    except QueueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130
    return 0


# -- the smoke drill -----------------------------------------------------------------------
def _experiments_argv(args) -> list[str]:
    target = ["--spec", args.spec] if args.spec else [args.experiment]
    return [sys.executable, "-m", "repro.experiments", "run", *target, "--scale", args.scale]


def _subprocess_env(**extra: str) -> dict:
    env = dict(os.environ)
    # Make the subprocesses import the same repro tree this process runs,
    # regardless of how PYTHONPATH was (not) set by the caller.
    src_dir = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir if not existing else os.pathsep.join((src_dir, existing))
    env.update(extra)
    return env


def _start_worker(queue_dir: Path, worker_id: str, *, idle_exit: Optional[float], hold: float = 0.0):
    command = [
        sys.executable, "-m", "repro.service", "worker",
        "--queue", str(queue_dir), "--worker-id", worker_id, "--poll", "0.1",
    ]
    if idle_exit is not None:
        command += ["--idle-exit", str(idle_exit)]
    extra = {"REPRO_SERVICE_HOLD": str(hold)} if hold > 0 else {}
    return subprocess.Popen(command, env=_subprocess_env(**extra), stderr=subprocess.DEVNULL)


def _wait_for_claim_by(queue, worker_id: str, *, timeout: float = 60.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for fingerprint in queue.job_fingerprints():
            claim = queue.claim_info(fingerprint)
            if claim and claim.get("worker") == worker_id:
                return True
        time.sleep(0.05)
    return False


def _command_smoke(args) -> int:
    import tempfile

    from ..experiments.__main__ import _resolve_scale, _resolve_spec
    from ..experiments.driver import resolve_context
    from ..store.integrity import scan_store
    from .frontend import submit
    from .queue import WorkQueue

    failures: list[str] = []

    def check(ok: bool, message: str) -> None:
        print(f"{'ok' if ok else 'FAIL'}: {message}", file=sys.stderr, flush=True)
        if not ok:
            failures.append(message)

    if args.workdir:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-service-smoke-")
        workdir = Path(cleanup.name)
    queue_dir = workdir / "queue"
    store_dir = workdir / "store"
    try:
        if args.spec:
            args.experiment = None  # --spec wins over the FIG5 default
        spec = _resolve_spec(args)
        scale = _resolve_scale(spec, args.scale)
        context = resolve_context(spec, scale=scale)

        print(f"[1/5] serial reference run of {spec.name}", file=sys.stderr, flush=True)
        serial = subprocess.run(
            _experiments_argv(args) + ["--export", "json"],
            env=_subprocess_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            check=True,
        ).stdout
        (workdir / "serial.json").write_bytes(serial)

        print("[2/5] submit to a fresh queue (1s lease)", file=sys.stderr, flush=True)
        group = submit(
            spec,
            context,
            queue_dir=str(queue_dir),
            store_dir=str(store_dir),
            lease_seconds=1.0,
            out=sys.stderr,
            err=sys.stderr,
        )
        queue = WorkQueue(queue_dir)
        store = queue.open_store()
        check(len(queue.job_fingerprints()) > 0, "submit queued at least one job")

        print("[3/5] start victim + healthy worker, kill the victim", file=sys.stderr, flush=True)
        victim = _start_worker(queue_dir, "victim", idle_exit=None, hold=60.0)
        claimed = _wait_for_claim_by(queue, "victim")
        check(claimed, "victim worker claimed a job")
        healthy = _start_worker(queue_dir, "healthy", idle_exit=8.0)
        time.sleep(0.3)  # both workers demonstrably alive together
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        healthy.wait(timeout=300)
        check(healthy.returncode == 0, "healthy worker drained the queue and exited")

        states = queue.group_states(group, store=store)
        check(
            all(state in ("done", "cached") for state in states.values()),
            f"every job settled ok ({len(states)} jobs)",
        )
        requeued = [event for event in queue.events(group) if event.get("event") == "requeued"]
        check(len(requeued) >= 1, f"lease expiry requeued the victim's job ({len(requeued)} event(s))")

        print("[4/5] warm replay against the shared store", file=sys.stderr, flush=True)
        replay = subprocess.run(
            _experiments_argv(args) + ["--export", "json", "--cache-dir", str(store_dir)],
            env=_subprocess_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            check=True,
        )
        (workdir / "replay.json").write_bytes(replay.stdout)
        check(b"cache-misses=0" in replay.stderr, "replay dispatched zero simulations")
        check(replay.stdout == serial, "queue-backed rows byte-identical to the serial run")

        print("[5/5] store integrity scan", file=sys.stderr, flush=True)
        reports = scan_store(store_dir)
        check(
            all(report.damaged_lines == 0 for report in reports),
            "store scans clean (no torn or checksum-failed lines)",
        )
        fingerprints = [
            json.loads(line)["fp"]
            for shard in (store_dir / "shards").glob("*.jsonl")
            for line in shard.read_text().splitlines()
            if line.strip()
        ]
        check(
            len(fingerprints) == len(set(fingerprints)),
            f"no duplicate fingerprints in the store ({len(fingerprints)} records)",
        )
    finally:
        if cleanup is not None and not args.keep:
            cleanup.cleanup()
        elif args.keep:
            print(f"workdir kept at {workdir}", file=sys.stderr)

    if failures:
        print(f"service smoke FAILED: {len(failures)} assertion(s)", file=sys.stderr)
        return 1
    print("service smoke passed", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(list(argv) if argv is not None else None)
    if args.command == "worker":
        return _command_worker(args)
    return _command_smoke(args)


if __name__ == "__main__":
    raise SystemExit(main())
