"""The service front end: submit sweeps, serve workers, stream progress.

These functions back the ``python -m repro.experiments submit/serve/status/
watch`` subcommands (argument parsing and spec resolution stay in
:mod:`repro.experiments.__main__`; the queue mechanics live here).

``submit`` is deliberately *fire-and-forget*: it compiles the spec's grid to
fingerprinted ``(task, repetition)`` jobs, enqueues whatever the shared store
does not already answer, prints the group id, and exits — no process waits on
the sweep.  Because jobs are keyed by content fingerprint, two overlapping
submits converge: the second finds the shared jobs already queued (its group
merely *subscribes* to them) or their results already stored, and dispatches
zero duplicate work.

``status`` and ``watch`` read only the group manifest, the job/claim/done
markers and the per-group JSONL event log — append-only files any process can
tail — so progress streaming needs no channel back to the workers.
"""

from __future__ import annotations

import subprocess
import sys
import time
from collections import Counter
from typing import Optional, Sequence, TextIO

from .queue import DEFAULT_LEASE_SECONDS, QueueError, WorkQueue

__all__ = ["submit", "status", "watch", "serve"]

#: Group states that need no further worker activity.
_TERMINAL_STATES = frozenset({"done", "failed", "cached"})


def submit(
    spec,
    context: dict,
    *,
    queue_dir: str,
    store_dir: Optional[str] = None,
    store_backend: str = "shared",
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    out: Optional[TextIO] = None,
    err: Optional[TextIO] = None,
) -> str:
    """Enqueue the resolved spec's sweep; print and return the group id.

    Only the ``sweep`` driver pre-enumerates its full task grid (the adaptive
    ``tolerance_search`` and the coupled ``dual_mode`` depend on intermediate
    results); those drivers run through ``run --backend queue`` instead, where
    the supervisor drives the queue wave by wave.
    """
    from ..experiments.driver import build_sweep_tasks

    # Resolve the streams at call time so redirections (and test capture)
    # installed after import are honoured.
    out = sys.stdout if out is None else out
    err = sys.stderr if err is None else err
    if spec.driver != "sweep":
        raise QueueError(
            f"submit requires the 'sweep' driver (whole grid known up front); "
            f"{spec.name} uses {spec.driver!r} — run it with "
            "`python -m repro.experiments run ... --backend queue` instead"
        )
    queue = WorkQueue.ensure(
        queue_dir,
        store_dir=store_dir,
        store_backend=store_backend,
        lease_seconds=lease_seconds,
    )
    store = queue.open_store()
    tasks = build_sweep_tasks(spec, context)
    try:
        jobs = [
            (task, repetition, task.fingerprint(repetition))
            for task in tasks
            for repetition in range(task.repetitions)
        ]
    except TypeError as exc:
        raise QueueError(
            f"{spec.name} builds tasks the fingerprint payload scheme cannot "
            f"reduce, so they have no distributed identity: {exc}"
        ) from exc
    group = queue.create_group([fingerprint for _, _, fingerprint in jobs], spec=spec.name)
    counts: Counter = Counter()
    for task, repetition, fingerprint in jobs:
        if store.contains(fingerprint):
            queue.emit_event(group, "cached", fingerprint=fingerprint, label=task.label)
            counts["cached"] += 1
        else:
            outcome = queue.enqueue(task, repetition, group=group)
            counts[outcome.status] += 1
    detail = ", ".join(f"{counts[key]} {key}" for key in ("queued", "duplicate", "done", "cached") if counts[key])
    print(
        f"submitted {spec.name} as group {group}: {len(jobs)} job(s) ({detail or 'nothing to do'})",
        file=err,
    )
    print(group, file=out)
    return group


def status(queue_dir: str, group: str, *, out: Optional[TextIO] = None) -> int:
    """One-shot progress report of a group; exit code 0 once fully settled."""
    out = sys.stdout if out is None else out
    queue = WorkQueue(queue_dir)
    store = queue.open_store(readonly=True)
    states = queue.group_states(group, store=store)
    counts = Counter(states.values())
    total = len(states)
    settled = sum(counts[state] for state in _TERMINAL_STATES)
    breakdown = " ".join(f"{state}={count}" for state, count in sorted(counts.items()))
    print(f"group {group}: {settled}/{total} settled ({breakdown})", file=out)
    return 0 if settled == total else 1


def watch(
    queue_dir: str,
    group: str,
    *,
    poll_interval: float = 0.5,
    timeout: Optional[float] = None,
    out: Optional[TextIO] = None,
) -> int:
    """Tail a group's event log until every job settles (async progress stream).

    Returns 0 when the group settled with no failures, 3 when any job's
    terminal state is ``failed`` (mirroring the ``run`` CLI's quarantine
    exit), and 1 on ``timeout`` seconds without settling.
    """
    out = sys.stdout if out is None else out
    queue = WorkQueue(queue_dir)
    store = queue.open_store(readonly=True)
    queue.group_manifest(group)  # fail fast on an unknown group id
    seen = 0
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        for event in queue.events(group, start=seen):
            seen += 1
            fields = " ".join(
                f"{key}={value}" for key, value in event.items() if key not in ("ts", "event")
            )
            print(f"{event.get('event', '?')} {fields}".rstrip(), file=out, flush=True)
        states = queue.group_states(group, store=store)
        if all(state in _TERMINAL_STATES for state in states.values()):
            counts = Counter(states.values())
            print(
                f"group {group} settled: "
                + " ".join(f"{state}={count}" for state, count in sorted(counts.items())),
                file=out,
                flush=True,
            )
            return 3 if counts["failed"] else 0
        if deadline is not None and time.monotonic() > deadline:
            print(f"group {group} not settled after {timeout:g}s", file=out, flush=True)
            return 1
        time.sleep(poll_interval)


def serve(
    queue_dir: str,
    *,
    workers: int = 2,
    store_dir: Optional[str] = None,
    idle_exit: Optional[float] = None,
    err: Optional[TextIO] = None,
) -> int:
    """Run ``workers`` daemon subprocesses against one queue; wait for them.

    Each worker is a real ``python -m repro.service worker`` process (crash
    isolation: a repetition that kills its worker loses one lease, not the
    server).  With ``idle_exit`` the server drains the queue and returns;
    without it, it serves until interrupted.
    """
    err = sys.stderr if err is None else err
    if workers < 1:
        raise QueueError("serve needs at least one worker")
    WorkQueue(queue_dir)  # fail fast before spawning anything
    command = [sys.executable, "-m", "repro.service", "worker", "--queue", str(queue_dir)]
    if store_dir is not None:
        command += ["--store", str(store_dir)]
    if idle_exit is not None:
        command += ["--idle-exit", str(idle_exit)]
    procs = [
        subprocess.Popen(command + ["--worker-id", f"serve-{index}"])
        for index in range(workers)
    ]
    print(f"serving {queue_dir} with {workers} worker(s)", file=err)
    try:
        return max(proc.wait() for proc in procs)
    except KeyboardInterrupt:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait()
        return 130
