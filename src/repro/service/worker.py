"""The worker daemon: claim queued jobs, run them, persist into the shared store.

``python -m repro.service worker --queue DIR`` runs :func:`worker_loop`: an
infinite (or bounded, for tests and drain scripts) claim/run/persist cycle.
Every iteration:

1. :meth:`~repro.service.queue.WorkQueue.requeue_expired` — workers are also
   the janitors: any worker sweeps up leases its dead peers left behind.
2. :meth:`~repro.service.queue.WorkQueue.claim_next` — atomic ``O_EXCL``
   claim of the first runnable job.
3. If the shared store already holds the fingerprint, complete immediately
   with a ``cached`` note.  This is both the dedupe fast path for overlapping
   submitters *and* the recovery path for a worker that died after persisting
   its result but before writing the done marker.
4. Otherwise run the repetition — with a heartbeat thread renewing the lease
   at a third of its period — then ``store.put`` and mark done.  Persist
   *precedes* the marker, so a crash between them replays as case 3.

Failures inside ``run_repetition`` are recorded on the done marker with the
supervision envelope's classification (plain exceptions are deterministic and
final; :class:`~repro.sim.supervision.TransientJobError` subclasses are
retryable), so the submitting supervisor applies its usual retry/quarantine
logic from the other side of the queue.

The ``REPRO_SERVICE_HOLD`` environment variable (seconds, float) makes the
worker sleep between claiming and running — a test hook giving kill-the-worker
drills a deterministic window where a job is claimed but not yet persisted.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional, TextIO

from ..sim.runner import run_repetition
from ..sim.supervision import TransientJobError
from .queue import ClaimedJob, WorkQueue

__all__ = ["worker_loop", "run_claimed_job"]

#: Test hook: seconds to sleep after claiming a job, before running it.
ENV_HOLD = "REPRO_SERVICE_HOLD"


def _heartbeat(queue: WorkQueue, job: ClaimedJob, stop: threading.Event) -> None:
    interval = max(0.05, queue.lease_seconds / 3.0)
    while not stop.wait(interval):
        try:
            queue.renew(job)
        except OSError:  # pragma: no cover - queue dir vanished under us
            return


def run_claimed_job(queue: WorkQueue, store, job: ClaimedJob) -> str:
    """Run one claimed job to a terminal marker; returns the marker status.

    The lease is renewed from a daemon heartbeat thread for as long as the
    repetition runs, so ``lease_seconds`` bounds *failure detection latency*,
    not job duration.
    """
    if store.contains(job.fingerprint):
        queue.complete(job, status="ok", note="cached")
        return "ok"
    hold = float(os.environ.get(ENV_HOLD, "0") or 0)
    if hold > 0:
        time.sleep(hold)
    stop = threading.Event()
    beat = threading.Thread(target=_heartbeat, args=(queue, job, stop), daemon=True)
    beat.start()
    try:
        result = run_repetition(job.task, job.repetition)
    except Exception as exc:  # noqa: BLE001 - classified for the supervisor
        stop.set()
        beat.join()
        queue.complete(
            job,
            status="failed",
            kind="exception",
            error=f"{type(exc).__name__}: {exc}",
            retryable=isinstance(exc, TransientJobError),
        )
        return "failed"
    stop.set()
    beat.join()
    store.put(job.fingerprint, result)
    queue.complete(job, status="ok")
    return "ok"


def worker_loop(
    queue_dir: str,
    *,
    store_dir: Optional[str] = None,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.2,
    max_jobs: Optional[int] = None,
    idle_exit: Optional[float] = None,
    log: Optional[TextIO] = None,
) -> int:
    """Claim and run jobs from ``queue_dir`` until stopped; returns jobs run.

    ``max_jobs`` bounds how many jobs this worker completes (tests); with
    ``idle_exit`` the worker exits after that many seconds without finding
    claimable work (drain scripts and the serve front end) — otherwise it
    polls forever.  ``store_dir`` overrides the store the queue metadata
    binds; the backend *class* still comes from the queue's recorded
    ``store_backend`` key, so every worker appends with the same discipline.
    """
    queue = WorkQueue(queue_dir)
    if store_dir is not None:
        from ..registry import STORE_BACKENDS

        store = STORE_BACKENDS.get(queue.store_backend)(store_dir)
    else:
        store = queue.open_store()
    me = worker_id or f"{os.uname().nodename}-{os.getpid()}"
    completed = 0
    idle_since: Optional[float] = None

    def say(message: str) -> None:
        if log is not None:
            print(f"[worker {me}] {message}", file=log, flush=True)

    say(f"serving queue {queue.root} (store {store.cache_dir}, lease {queue.lease_seconds:g}s)")
    while max_jobs is None or completed < max_jobs:
        requeued = queue.requeue_expired()
        for fingerprint in requeued:
            say(f"requeued expired lease {fingerprint[:12]}…")
        job = queue.claim_next(me)
        if job is None:
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if idle_exit is not None and now - idle_since >= idle_exit:
                say(f"idle for {idle_exit:g}s, exiting after {completed} job(s)")
                break
            time.sleep(poll_interval)
            continue
        idle_since = None
        status = run_claimed_job(queue, store, job)
        completed += 1
        say(f"{job.label} rep {job.repetition} [{job.fingerprint[:12]}…] -> {status}")
    return completed
