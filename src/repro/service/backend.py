"""The ``queue`` executor backend: dispatch attempts to worker daemons.

:class:`QueueBackend` is the fourth :class:`~repro.sim.backends.ExecutorBackend`
(after ``serial``, ``process-pool`` and ``chaos``): instead of running a wave's
:class:`~repro.sim.supervision.JobAttempt`\\ s itself, it enqueues them on a
:class:`~repro.service.queue.WorkQueue` and polls the shared result store until
worker daemons (``python -m repro.service worker``) deliver.  Each settled job
comes back as an ordinary :class:`~repro.sim.supervision.AttemptOutcome`, so
the PR 8 :class:`~repro.sim.supervision.Supervisor` applies its timeout, retry
and quarantine machinery to distributed jobs exactly as to local ones:

* A job whose result does not appear within the per-repetition ``timeout``
  yields a retryable ``timeout`` outcome — the supervisor re-dispatches it
  with backoff, and the re-enqueue is a fingerprint-dedup no-op if the job is
  merely slow rather than lost.
* A job a worker *failed* yields the worker's recorded kind/retryable
  classification; re-enqueueing a retryable failure clears the failed marker,
  so the retry actually reruns.
* A worker that dies mid-job is invisible here: its lease expires, any poller
  (this backend calls :meth:`~repro.service.queue.WorkQueue.requeue_expired`
  every cycle, counting into ``telemetry.lease_requeues``) requeues the job,
  and another worker picks it up.

Results are read back from the store by fingerprint, so a sweep whose results
already exist — a warm rerun, or an overlapping sweep another submitter
computed — dispatches nothing at all.

Selected as ``--backend queue``; the queue directory comes from the
``REPRO_QUEUE_DIR`` environment variable (the backend registry's ``from_knobs``
seam has no spare parameter, and an env var inherits naturally into worker
subprocesses).
"""

from __future__ import annotations

import os
import time
from typing import Iterator, Optional, Sequence

from ..registry import register_executor_backend
from ..sim.backends import ExecutorBackend
from ..sim.supervision import AttemptOutcome, FabricTelemetry, JobAttempt
from .queue import WorkQueue

__all__ = ["QueueBackend", "ENV_QUEUE_DIR", "ENV_QUEUE_STORE"]

#: Environment variable naming the queue directory ``--backend queue`` uses.
ENV_QUEUE_DIR = "REPRO_QUEUE_DIR"
#: Optional override of the shared store directory at queue-creation time.
ENV_QUEUE_STORE = "REPRO_QUEUE_STORE"


@register_executor_backend("queue", aliases=("service",))
class QueueBackend(ExecutorBackend):
    """Executes attempts by enqueueing them for worker daemons (see module docs).

    Parameters
    ----------
    queue:
        The :class:`WorkQueue` to dispatch through.
    store:
        The shared result store workers persist into; defaults to the store
        the queue metadata binds (:meth:`WorkQueue.open_store`).
    poll_interval:
        Seconds between completion polls while attempts are outstanding.
    group:
        Optional submit-group id: enqueued jobs subscribe this group, so its
        event log streams the sweep's progress.
    """

    def __init__(
        self,
        queue: WorkQueue,
        store=None,
        *,
        poll_interval: float = 0.2,
        telemetry: Optional[FabricTelemetry] = None,
        group: Optional[str] = None,
    ) -> None:
        super().__init__(telemetry=telemetry)
        self.queue = queue
        self.store = store if store is not None else queue.open_store()
        self.poll_interval = float(poll_interval)
        self.group = group

    @classmethod
    def from_knobs(
        cls,
        *,
        workers: int = 0,
        chunk_size: int = 1,
        telemetry: Optional[FabricTelemetry] = None,
    ) -> "QueueBackend":
        queue_dir = os.environ.get(ENV_QUEUE_DIR)
        if not queue_dir:
            raise ValueError(
                "the queue backend needs a queue directory: set "
                f"{ENV_QUEUE_DIR}=/path/to/queue (created on first use; start "
                "workers with `python -m repro.service worker --queue <dir>`)"
            )
        queue = WorkQueue.ensure(queue_dir, store_dir=os.environ.get(ENV_QUEUE_STORE))
        return cls(queue, telemetry=telemetry)

    def run_attempts(
        self, attempts: Sequence[JobAttempt], *, timeout: Optional[float] = None
    ) -> Iterator[AttemptOutcome]:
        pending: dict[str, tuple[JobAttempt, float]] = {}
        for attempt in attempts:
            try:
                fingerprint = attempt.task.fingerprint(attempt.repetition)
            except TypeError as exc:
                # The queue is keyed by fingerprints; a task the payload
                # scheme cannot reduce has no stable distributed identity.
                yield AttemptOutcome(
                    attempt,
                    kind="exception",
                    error=(
                        f"task {attempt.task.label!r} is not fingerprintable and "
                        f"cannot be queued: {exc}"
                    ),
                    retryable=False,
                )
                continue
            result = self.store.get(fingerprint) if self.store.contains(fingerprint) else None
            if result is not None:
                yield AttemptOutcome(attempt, result=result)
                continue
            self.queue.enqueue(attempt.task, attempt.repetition, group=self.group)
            pending[fingerprint] = (attempt, time.monotonic())

        while pending:
            self.telemetry.lease_requeues += len(self.queue.requeue_expired())
            progressed = False
            for fingerprint in list(pending):
                attempt, started = pending[fingerprint]
                outcome = self._poll_one(fingerprint, attempt, started, timeout)
                if outcome is not None:
                    del pending[fingerprint]
                    progressed = True
                    yield outcome
            if pending and not progressed:
                time.sleep(self.poll_interval)

    def _poll_one(
        self,
        fingerprint: str,
        attempt: JobAttempt,
        started: float,
        timeout: Optional[float],
    ) -> Optional[AttemptOutcome]:
        done = self.queue.done_info(fingerprint)
        if done is not None and done.get("status") != "ok":
            return AttemptOutcome(
                attempt,
                kind=str(done.get("kind", "exception")),
                error=str(done.get("error", "worker reported failure")),
                retryable=bool(done.get("retryable", False)),
            )
        if self.store.contains(fingerprint):
            result = self.store.get(fingerprint)
            if result is not None:
                return AttemptOutcome(attempt, result=result)
        if timeout is not None and time.monotonic() - started > timeout:
            # The *wait* budget expired; the job itself stays queued, so the
            # supervisor's re-dispatch dedupes onto it and waits again.
            return AttemptOutcome(
                attempt,
                kind="timeout",
                error=f"no worker delivered {fingerprint[:12]}… within {timeout:.3f}s",
                retryable=True,
            )
        return None
