"""Durable filesystem-backed work queue for fingerprinted sweep jobs.

The queue is a directory; every mutation is an atomic filesystem operation,
so any number of submitters, workers and watchers — processes or hosts
sharing the filesystem — cooperate without a broker:

::

    <queue_dir>/
        queue-meta.json            # version, lease seconds, shared-store binding
        jobs/<fp>.json             # job payload + subscription lines (append-only)
        claims/<fp>.json           # live lease of the worker running <fp>
        done/<fp>.json             # terminal marker: {"status": "ok"|"failed", ...}
        groups/<gid>.json          # submit-group manifest (ordered fingerprints)
        groups/<gid>.events.jsonl  # per-group progress event log (append-only)

Jobs are keyed by :meth:`~repro.sim.runner.SweepTask.fingerprint` — the same
content hash the result store is keyed by — so *enqueue deduplicates*: two
submitters racing overlapping sweeps converge on one job file each (the loser
of the atomic ``os.link`` publish merely subscribes its group to the winner's
job).  The task itself rides inside the job file as a base64 pickle; tasks
are picklable by the same contract the process-pool backend relies on.

Claim protocol
--------------
* **Claim**: create ``claims/<fp>.json`` with ``O_CREAT | O_EXCL`` — the
  filesystem picks exactly one winner among racing workers.
* **Heartbeat**: the worker periodically rewrites its claim (temp file +
  ``os.replace``) with a fresh ``expires_at``.
* **Expiry**: any process may call :meth:`WorkQueue.requeue_expired`; a stale
  claim is *stolen* by ``os.rename`` to a unique tombstone name (again,
  exactly one winner) and the job becomes claimable again.

A worker killed between persisting the result and writing the done marker is
covered by fingerprint dedupe: the next claimant finds the result already in
the shared store and completes the job without recomputing.  The remaining
race — a zombie worker whose lease was stolen finishing anyway — is *benign*:
repetitions are pure functions of their seed, so the duplicate append stores
identical bytes and the store's later-line-wins load is unaffected.

Event log lines are whole-line ``O_APPEND`` writes (the result store's
torn-line discipline), and readers skip undecodable lines, so a crash
mid-append never corrupts a watcher.
"""

from __future__ import annotations

import base64
import itertools
import json
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.runner import SweepTask

__all__ = ["QUEUE_VERSION", "QueueError", "EnqueueOutcome", "ClaimedJob", "WorkQueue"]

#: Version of the on-disk queue layout.
QUEUE_VERSION = 1

_META_NAME = "queue-meta.json"
_JOBS_DIR = "jobs"
_CLAIMS_DIR = "claims"
_DONE_DIR = "done"
_GROUPS_DIR = "groups"

#: Default seconds a claim stays valid without a heartbeat renewal.
DEFAULT_LEASE_SECONDS = 30.0

_tombstone_counter = itertools.count()


class QueueError(RuntimeError):
    """A queue directory is missing, incompatible, or an operation misused it."""


def _append_line(path: Path, obj: dict) -> None:
    """Append one JSON object as a whole line with a single ``os.write``.

    The same discipline as the result store's shard appends: on local
    filesystems an ``O_APPEND`` write of one line lands whole, so concurrent
    appenders interleave lines, never bytes.
    """
    data = (json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n").encode("utf8")
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


def _read_lines(path: Path) -> Iterator[dict]:
    """Yield the decodable JSON lines of ``path`` (torn trailing lines skipped)."""
    try:
        with open(path, "r", encoding="utf8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn append: the writer crashed mid-line
                if isinstance(obj, dict):
                    yield obj
    except FileNotFoundError:
        return


def _write_atomic(path: Path, obj: dict) -> None:
    """Publish ``obj`` at ``path`` via a pid-unique temp file + ``os.replace``."""
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n", encoding="utf8")
    os.replace(tmp, path)


def encode_task(task: "SweepTask") -> str:
    """Serialize a task for the job file (pickle, base64-armoured for JSON)."""
    return base64.b64encode(pickle.dumps(task)).decode("ascii")


def decode_task(payload: str) -> "SweepTask":
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


@dataclass(frozen=True, slots=True)
class EnqueueOutcome:
    """What :meth:`WorkQueue.enqueue` did for one ``(task, repetition)`` pair.

    ``status`` is ``"queued"`` (this call published the job), ``"duplicate"``
    (an equivalent job was already queued or running — the group was
    subscribed to it) or ``"done"`` (a completed marker already answers it).
    """

    fingerprint: str
    status: str


@dataclass(slots=True)
class ClaimedJob:
    """A job this process holds the lease on."""

    fingerprint: str
    task: "SweepTask"
    repetition: int
    label: str
    worker_id: str
    expires_at: float
    #: Groups subscribed to this job at claim time (event-log targets).
    groups: tuple[str, ...] = ()


class WorkQueue:
    """One queue directory (see the module docstring for the layout).

    Parameters
    ----------
    root:
        The queue directory.  It must already hold a ``queue-meta.json``
        (created by :meth:`ensure`); opening a bare directory raises
        :class:`QueueError` so a typo'd ``--queue`` path fails loudly.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        meta_path = self.root / _META_NAME
        try:
            meta = json.loads(meta_path.read_text(encoding="utf8"))
        except FileNotFoundError:
            raise QueueError(
                f"{self.root} is not a work queue (no {_META_NAME}); "
                "create one with WorkQueue.ensure() or the submit front end"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise QueueError(f"unreadable queue metadata at {meta_path}: {exc}") from exc
        version = meta.get("version")
        if version != QUEUE_VERSION:
            raise QueueError(
                f"work queue at {self.root} has layout version {version!r}; "
                f"this build speaks version {QUEUE_VERSION}"
            )
        self.lease_seconds = float(meta.get("lease_seconds", DEFAULT_LEASE_SECONDS))
        self.store_dir = meta.get("store_dir")
        self.store_backend = meta.get("store_backend", "shared")

    # -- creation ----------------------------------------------------------------------
    @classmethod
    def ensure(
        cls,
        root: str | os.PathLike,
        *,
        store_dir: Optional[str | os.PathLike] = None,
        store_backend: str = "shared",
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
    ) -> "WorkQueue":
        """Open the queue at ``root``, creating it if it does not exist yet.

        ``store_dir`` (default ``<root>/store``) and ``store_backend`` bind
        the queue to the shared result store every worker persists into; they
        are recorded in the metadata at creation so workers need only the
        queue path.  Racing creators are resolved by ``O_CREAT | O_EXCL`` on
        the metadata file — the loser adopts the winner's binding.
        """
        root = Path(root)
        meta_path = root / _META_NAME
        if not meta_path.exists():
            root.mkdir(parents=True, exist_ok=True)
            for sub in (_JOBS_DIR, _CLAIMS_DIR, _DONE_DIR, _GROUPS_DIR):
                (root / sub).mkdir(exist_ok=True)
            if lease_seconds <= 0:
                raise QueueError("lease_seconds must be positive")
            resolved_store = Path(store_dir) if store_dir is not None else root / "store"
            meta = {
                "version": QUEUE_VERSION,
                "lease_seconds": float(lease_seconds),
                "store_dir": str(resolved_store.resolve()),
                "store_backend": store_backend,
                "created_at": time.time(),
            }
            data = (json.dumps(meta, sort_keys=True, indent=2) + "\n").encode("utf8")
            try:
                fd = os.open(meta_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                pass  # another creator won the race; adopt its metadata below
            else:
                try:
                    os.write(fd, data)
                finally:
                    os.close(fd)
        return cls(root)

    def open_store(self, *, readonly: bool = False):
        """The shared result store this queue is bound to (by registry key)."""
        from ..registry import STORE_BACKENDS

        if self.store_dir is None:
            raise QueueError(f"work queue at {self.root} records no store_dir")
        return STORE_BACKENDS.get(self.store_backend)(self.store_dir, readonly=readonly)

    # -- path helpers ------------------------------------------------------------------
    def _job_path(self, fingerprint: str) -> Path:
        return self.root / _JOBS_DIR / f"{fingerprint}.json"

    def _claim_path(self, fingerprint: str) -> Path:
        return self.root / _CLAIMS_DIR / f"{fingerprint}.json"

    def _done_path(self, fingerprint: str) -> Path:
        return self.root / _DONE_DIR / f"{fingerprint}.json"

    def _group_path(self, group: str) -> Path:
        return self.root / _GROUPS_DIR / f"{group}.json"

    def _events_path(self, group: str) -> Path:
        return self.root / _GROUPS_DIR / f"{group}.events.jsonl"

    # -- submit side -------------------------------------------------------------------
    def enqueue(
        self, task: "SweepTask", repetition: int, *, group: Optional[str] = None
    ) -> EnqueueOutcome:
        """Publish one ``(task, repetition)`` job; deduplicates by fingerprint.

        A stale *failed* marker is cleared first, so re-submitting (or the
        supervisor re-dispatching) a transiently failed job makes it runnable
        again; an *ok* marker is terminal — the result is in the store.
        """
        fingerprint = task.fingerprint(repetition)
        done = self.done_info(fingerprint)
        if done is not None:
            if done.get("status") == "ok":
                if group is not None:
                    self._subscribe(fingerprint, group)
                    self.emit_event(group, "done", fingerprint=fingerprint, note="already-complete")
                return EnqueueOutcome(fingerprint, "done")
            # Failed marker: clear it so the job can run again (retry path).
            try:
                os.unlink(self._done_path(fingerprint))
            except FileNotFoundError:
                pass
        job_path = self._job_path(fingerprint)
        if not job_path.exists():
            payload = {
                "kind": "job",
                "fp": fingerprint,
                "repetition": int(repetition),
                "label": task.label,
                "task": encode_task(task),
                "enqueued_at": time.time(),
            }
            tmp = job_path.with_name(f"{job_path.name}.tmp.{os.getpid()}")
            tmp.write_text(
                json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
                encoding="utf8",
            )
            try:
                # os.link publishes atomically AND tells us who won: racing
                # submitters of the same fingerprint get FileExistsError and
                # fall through to the duplicate path.
                os.link(tmp, job_path)
                won = True
            except FileExistsError:
                won = False
            finally:
                os.unlink(tmp)
            if won:
                if group is not None:
                    self._subscribe(fingerprint, group)
                    self.emit_event(group, "queued", fingerprint=fingerprint, label=task.label)
                return EnqueueOutcome(fingerprint, "queued")
        if group is not None:
            self._subscribe(fingerprint, group)
            self.emit_event(group, "deduped", fingerprint=fingerprint, label=task.label)
        return EnqueueOutcome(fingerprint, "duplicate")

    def _subscribe(self, fingerprint: str, group: str) -> None:
        """Append a subscription line so workers route events to ``group``."""
        job_path = self._job_path(fingerprint)
        for line in _read_lines(job_path):
            if line.get("kind") == "subscribe" and line.get("group") == group:
                return
        _append_line(job_path, {"kind": "subscribe", "group": group})

    # -- job inspection ----------------------------------------------------------------
    def read_job(self, fingerprint: str) -> Optional[tuple[dict, tuple[str, ...]]]:
        """The job payload and its subscribed groups, or ``None`` if unknown."""
        payload = None
        groups: list[str] = []
        for line in _read_lines(self._job_path(fingerprint)):
            kind = line.get("kind")
            if kind == "job" and payload is None:
                payload = line
            elif kind == "subscribe":
                group = line.get("group")
                if isinstance(group, str) and group not in groups:
                    groups.append(group)
        if payload is None:
            return None
        return payload, tuple(groups)

    def done_info(self, fingerprint: str) -> Optional[dict]:
        """The terminal marker of a job, or ``None`` while it is live."""
        lines = list(_read_lines(self._done_path(fingerprint)))
        return lines[0] if lines else None

    def claim_info(self, fingerprint: str) -> Optional[dict]:
        """The live claim of a job, or ``None``.  Unreadable claims (a racing
        writer mid-``os.replace``) are reported as an empty dict — *held*,
        with no expiry opinion — so expiry logic never steals a lease it
        could not actually read."""
        path = self._claim_path(fingerprint)
        if not path.exists():
            return None
        lines = list(_read_lines(path))
        return lines[0] if lines else {}

    def job_state(self, fingerprint: str) -> str:
        """``"done"``, ``"failed"``, ``"claimed"``, ``"pending"`` or ``"unknown"``."""
        done = self.done_info(fingerprint)
        if done is not None:
            return "done" if done.get("status") == "ok" else "failed"
        if self.claim_info(fingerprint) is not None:
            return "claimed"
        if self._job_path(fingerprint).exists():
            return "pending"
        return "unknown"

    def job_fingerprints(self) -> list[str]:
        """Every queued fingerprint, sorted (stable claim-scan order)."""
        jobs_dir = self.root / _JOBS_DIR
        return sorted(path.stem for path in jobs_dir.glob("*.json"))

    # -- worker side -------------------------------------------------------------------
    def claim_next(self, worker_id: str, *, now: Optional[float] = None) -> Optional[ClaimedJob]:
        """Claim the first claimable job, or ``None`` when the queue is drained.

        ``O_CREAT | O_EXCL`` on the claim file arbitrates racing workers; the
        loser simply moves on to the next fingerprint.
        """
        now = time.time() if now is None else now
        for fingerprint in self.job_fingerprints():
            if self.done_info(fingerprint) is not None:
                continue
            if self.claim_info(fingerprint) is not None:
                continue
            claim = self._try_claim(fingerprint, worker_id, now)
            if claim is not None:
                return claim
        return None

    def _try_claim(self, fingerprint: str, worker_id: str, now: float) -> Optional[ClaimedJob]:
        expires_at = now + self.lease_seconds
        claim = {
            "fp": fingerprint,
            "worker": worker_id,
            "claimed_at": now,
            "expires_at": expires_at,
        }
        data = (json.dumps(claim, sort_keys=True, separators=(",", ":")) + "\n").encode("utf8")
        try:
            fd = os.open(self._claim_path(fingerprint), os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return None
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        loaded = self.read_job(fingerprint)
        if loaded is None:
            # The job file vanished under us (should not happen: jobs are
            # never deleted); release the claim rather than wedge the slot.
            try:
                os.unlink(self._claim_path(fingerprint))
            except FileNotFoundError:
                pass
            return None
        payload, groups = loaded
        try:
            task = decode_task(payload["task"])
        except Exception as exc:
            # An undecodable payload is a permanent failure of the job, not
            # of the worker: mark it failed so submitters see it.
            self._finish(
                fingerprint,
                groups,
                worker_id,
                status="failed",
                kind="exception",
                error=f"undecodable job payload: {type(exc).__name__}: {exc}",
                retryable=False,
            )
            return None
        claimed = ClaimedJob(
            fingerprint=fingerprint,
            task=task,
            repetition=int(payload.get("repetition", 0)),
            label=str(payload.get("label", "")),
            worker_id=worker_id,
            expires_at=expires_at,
            groups=groups,
        )
        for group in groups:
            self.emit_event(group, "claimed", fingerprint=fingerprint, worker=worker_id)
        return claimed

    def renew(self, claimed: ClaimedJob, *, now: Optional[float] = None) -> None:
        """Heartbeat: extend the lease of a held claim (temp file + replace).

        If the lease already expired and was stolen, the rewrite resurrects
        the claim file — a benign race (see the module docstring): both the
        zombie and the new claimant compute the same bytes.
        """
        now = time.time() if now is None else now
        claimed.expires_at = now + self.lease_seconds
        _write_atomic(
            self._claim_path(claimed.fingerprint),
            {
                "fp": claimed.fingerprint,
                "worker": claimed.worker_id,
                "claimed_at": now,
                "expires_at": claimed.expires_at,
            },
        )

    def complete(
        self,
        claimed: ClaimedJob,
        *,
        status: str = "ok",
        kind: str = "",
        error: str = "",
        retryable: bool = False,
        note: str = "",
    ) -> None:
        """Write the terminal marker for a held job and release its claim."""
        self._finish(
            claimed.fingerprint,
            claimed.groups,
            claimed.worker_id,
            status=status,
            kind=kind,
            error=error,
            retryable=retryable,
            note=note,
        )

    def _finish(
        self,
        fingerprint: str,
        groups: Sequence[str],
        worker_id: str,
        *,
        status: str,
        kind: str = "",
        error: str = "",
        retryable: bool = False,
        note: str = "",
    ) -> None:
        marker = {
            "fp": fingerprint,
            "status": status,
            "worker": worker_id,
            "completed_at": time.time(),
        }
        if status != "ok":
            marker.update({"kind": kind or "exception", "error": error, "retryable": retryable})
        if note:
            marker["note"] = note
        _write_atomic(self._done_path(fingerprint), marker)
        try:
            os.unlink(self._claim_path(fingerprint))
        except FileNotFoundError:
            pass
        event = "done" if status == "ok" else "failed"
        for group in groups:
            self.emit_event(
                group,
                event,
                fingerprint=fingerprint,
                worker=worker_id,
                **({"error": error} if error else {}),
                **({"note": note} if note else {}),
            )

    def requeue_expired(self, *, now: Optional[float] = None) -> list[str]:
        """Requeue every job whose lease expired; returns their fingerprints.

        Safe to call from any process at any time.  A stale claim is stolen
        by renaming it to a unique tombstone — exactly one caller wins the
        rename, so a job is requeued (and its event emitted) once.
        """
        now = time.time() if now is None else now
        requeued: list[str] = []
        claims_dir = self.root / _CLAIMS_DIR
        for path in sorted(claims_dir.glob("*.json")):
            lines = list(_read_lines(path))
            if not lines:
                continue  # mid-write or unreadable: no expiry opinion, leave it
            claim = lines[0]
            expires_at = claim.get("expires_at")
            if not isinstance(expires_at, (int, float)) or expires_at >= now:
                continue
            tombstone = path.with_name(
                f"{path.name}.expired.{os.getpid()}.{next(_tombstone_counter)}"
            )
            try:
                os.rename(path, tombstone)
            except FileNotFoundError:
                continue  # another process stole it first
            os.unlink(tombstone)
            fingerprint = path.stem
            requeued.append(fingerprint)
            loaded = self.read_job(fingerprint)
            groups = loaded[1] if loaded is not None else ()
            for group in groups:
                self.emit_event(
                    group,
                    "requeued",
                    fingerprint=fingerprint,
                    worker=str(claim.get("worker", "?")),
                    lease_expired_at=expires_at,
                )
        return requeued

    # -- groups and events -------------------------------------------------------------
    def create_group(self, fingerprints: Sequence[str], *, spec: str = "") -> str:
        """Record a submit group (ordered fingerprints) and return its id."""
        group = os.urandom(6).hex()
        _write_atomic(
            self._group_path(group),
            {
                "group": group,
                "spec": spec,
                "jobs": list(fingerprints),
                "created_at": time.time(),
            },
        )
        return group

    def group_manifest(self, group: str) -> dict:
        lines = list(_read_lines(self._group_path(group)))
        if not lines:
            known = sorted(
                p.stem for p in (self.root / _GROUPS_DIR).glob("*.json") if ".events" not in p.name
            )
            raise QueueError(
                f"unknown group {group!r} in queue {self.root}; "
                f"known groups: {', '.join(known) or '(none)'}"
            )
        return lines[0]

    def group_states(self, group: str, *, store=None) -> dict[str, str]:
        """Per-fingerprint state of a group, in manifest order.

        With a ``store``, jobs that are not terminal in the queue but whose
        result already exists are reported as ``"cached"`` — the state a
        crash between persist and done-marker leaves behind, and the state
        overlapping submitters see for work another sweep computed.
        """
        manifest = self.group_manifest(group)
        states: dict[str, str] = {}
        for fingerprint in manifest.get("jobs", ()):
            state = self.job_state(fingerprint)
            if state in ("pending", "claimed", "unknown") and store is not None:
                if store.contains(fingerprint):
                    state = "cached"
            states[fingerprint] = state
        return states

    def emit_event(self, group: str, kind: str, **fields) -> None:
        """Append one progress event to the group's JSONL log."""
        _append_line(self._events_path(group), {"ts": time.time(), "event": kind, **fields})

    def events(self, group: str, *, start: int = 0) -> Iterator[dict]:
        """The group's events from index ``start`` (tolerates torn tails)."""
        for index, event in enumerate(_read_lines(self._events_path(group))):
            if index >= start:
                yield event
