"""Reproductions of the paper's evaluation, driven by declarative specs.

Experiments are :class:`~repro.experiments.spec.ExperimentSpec` *data*
(:mod:`repro.experiments.builtin` holds the eight built-ins) executed by
generic drivers (:mod:`repro.experiments.driver`) against the open component
registries of :mod:`repro.registry`.  User scenarios ship as ~20-line JSON or
TOML files run with ``python -m repro.experiments run --spec FILE`` — see the
``examples/specs/`` directory.

The historical typed surface (``CrashResilienceSpec`` + ``run_crash_resilience``
and friends) is preserved in :mod:`repro.experiments.compat` as thin wrappers
over the same machinery.
"""

from ..sim.runner import SweepExecutor, SweepTask
from .base import PointResult, run_point, run_points
from .builtin import (
    CLUST_SPEC,
    DUAL_SPEC,
    EPID_SPEC,
    FIG5_SPEC,
    FIG6_SPEC,
    FIG7_SPEC,
    JAM_SPEC,
    MAPSZ_SPEC,
)
from .compat import (
    ClusteredSpec,
    CrashResilienceSpec,
    DensityToleranceSpec,
    DualModeSpec,
    EpidemicComparisonSpec,
    JammingSpec,
    LyingSpec,
    MapSizeSpec,
    run_clustered,
    run_crash_resilience,
    run_density_tolerance,
    run_dual_mode,
    run_epidemic_comparison,
    run_jamming,
    run_lying,
    run_map_size,
)
from .driver import describe_spec, run_spec
from .metrics import airtime_bits, fit_linear_trend, linear_scaling_error
from .registry import EXPERIMENTS, available_experiments, get_spec, run_experiment
from .spec import ExperimentSpec, SpecValidationError, load_spec

__all__ = [
    "SweepExecutor",
    "SweepTask",
    "PointResult",
    "run_point",
    "run_points",
    "ExperimentSpec",
    "SpecValidationError",
    "load_spec",
    "run_spec",
    "describe_spec",
    "get_spec",
    "FIG5_SPEC",
    "JAM_SPEC",
    "FIG6_SPEC",
    "FIG7_SPEC",
    "CLUST_SPEC",
    "MAPSZ_SPEC",
    "EPID_SPEC",
    "DUAL_SPEC",
    "ClusteredSpec",
    "run_clustered",
    "CrashResilienceSpec",
    "run_crash_resilience",
    "DensityToleranceSpec",
    "run_density_tolerance",
    "DualModeSpec",
    "EpidemicComparisonSpec",
    "airtime_bits",
    "run_dual_mode",
    "run_epidemic_comparison",
    "JammingSpec",
    "fit_linear_trend",
    "run_jamming",
    "LyingSpec",
    "run_lying",
    "MapSizeSpec",
    "linear_scaling_error",
    "run_map_size",
    "EXPERIMENTS",
    "available_experiments",
    "run_experiment",
]
