"""Reproductions of the paper's evaluation (one module per table/figure)."""

from ..sim.runner import SweepExecutor, SweepTask
from .base import PointResult, run_point, run_points
from .clustered import ClusteredSpec, run_clustered
from .crash_resilience import CrashResilienceSpec, run_crash_resilience
from .density_tolerance import DensityToleranceSpec, run_density_tolerance
from .epidemic_comparison import (
    DualModeSpec,
    EpidemicComparisonSpec,
    airtime_bits,
    run_dual_mode,
    run_epidemic_comparison,
)
from .jamming import JammingSpec, fit_linear_trend, run_jamming
from .lying import LyingSpec, run_lying
from .map_size import MapSizeSpec, linear_scaling_error, run_map_size
from .registry import EXPERIMENTS, available_experiments, run_experiment

__all__ = [
    "SweepExecutor",
    "SweepTask",
    "PointResult",
    "run_point",
    "run_points",
    "ClusteredSpec",
    "run_clustered",
    "CrashResilienceSpec",
    "run_crash_resilience",
    "DensityToleranceSpec",
    "run_density_tolerance",
    "DualModeSpec",
    "EpidemicComparisonSpec",
    "airtime_bits",
    "run_dual_mode",
    "run_epidemic_comparison",
    "JammingSpec",
    "fit_linear_trend",
    "run_jamming",
    "LyingSpec",
    "run_lying",
    "MapSizeSpec",
    "linear_scaling_error",
    "run_map_size",
    "EXPERIMENTS",
    "available_experiments",
    "run_experiment",
]
