"""Command-line entry point for the paper-reproduction experiments.

Subcommands::

    python -m repro.experiments list
    python -m repro.experiments describe FIG5 [--scale small]
    python -m repro.experiments describe --spec examples/specs/clustered_jamming.toml
    python -m repro.experiments run FIG5 --scale small --workers 4
    python -m repro.experiments run --spec examples/specs/clustered_jamming.toml
    python -m repro.experiments run FIG7 --scale small --cache-dir ~/.cache/repro --resume
    python -m repro.experiments run JAM --scale small --export csv > jam.csv
    python -m repro.experiments run FIG7 --scale small --profile
    python -m repro.experiments submit FIG5 --scale small --queue /shared/q
    python -m repro.experiments serve --queue /shared/q --workers 4
    python -m repro.experiments status --queue /shared/q GROUP
    python -m repro.experiments watch --queue /shared/q GROUP

``list`` prints the registered experiment identifiers; ``describe`` prints
the resolved spec (parameters after scale overrides, axes, grid size) without
running anything; ``run`` executes a registered experiment — or any
user-authored JSON/TOML spec file via ``--spec FILE`` (see
:mod:`repro.experiments.spec` for the format and ``examples/specs/`` for a
template).

The pre-PR 5 flag forms (``python -m repro.experiments FIG5 --scale small``,
``--list``) keep working as deprecated aliases for ``run`` / ``list``.

Usage errors — an unknown experiment id, an unknown scale, a malformed or
unreadable spec file, contradictory cache flags — exit with code 2 and print
the available identifiers / every validation error to stderr; tracebacks are
reserved for genuine failures inside a running experiment.

``--workers`` fans the seeded repetitions out over processes via
:class:`~repro.sim.runner.SweepExecutor`; results are bit-identical for every
worker count, so it is purely a throughput knob.  ``--backend`` picks the
executor backend by registry key (``serial``, ``process-pool``, ``chaos``;
default: inferred from ``--workers``), ``--timeout`` puts a wall-clock budget
on every repetition and ``--max-retries`` bounds the supervised retries for
transient faults — results stay bit-identical under every recovery path.
``--cache-dir`` routes the sweep through the content-addressed
:class:`~repro.store.ResultStore` (``--resume`` requires the directory to
exist, ``--no-cache`` ignores it for one invocation); a warm-cache rerun
prints byte-identical rows while dispatching zero simulations.  ``--export
{json,csv}`` writes machine-readable rows to stdout (status lines move to
stderr).  ``--profile`` dumps the top-25 cumulative cProfile entries to
stderr; ``--profile-out PATH`` (implies ``--profile``) additionally writes
the raw :mod:`pstats` file for cross-PR diffing.

Service mode (PR 10): ``submit`` compiles a sweep spec into fingerprinted
jobs on a durable work queue and exits immediately with a group id; worker
daemons (``python -m repro.experiments serve`` or ``python -m repro.service
worker``) claim, run and persist into the queue's shared store; ``status`` /
``watch`` report a group's progress from its JSONL event log.  Fingerprint
dedupe means overlapping submits never recompute shared work, and the results
are byte-identical to a serial ``run``.  ``run --backend queue`` (with
``REPRO_QUEUE_DIR``) drives the same queue through the supervision envelope
for drivers that cannot pre-enumerate their grid.  ``--store-backend shared``
opens a cache directory with the multi-process append discipline.

Exit codes: 0 success, 2 usage error, 3 when repetitions exhausted their
retries and were quarantined (the rest of the sweep completed and, with a
cache dir, persisted), 130 on interrupt (with a resume hint when a cache dir
was in use).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from ..analysis.tables import format_table, to_csv
from ..registry import RegistryError
from ..sim.builder import soa_telemetry_snapshot
from ..sim.runner import SweepExecutor
from ..sim.supervision import SweepFailure, SweepInterrupted
from .driver import describe_spec, run_spec
from .registry import EXPERIMENTS, get_spec
from .spec import ExperimentSpec, SpecValidationError, load_spec

__all__ = ["main"]

_SUBCOMMANDS = ("run", "list", "describe", "submit", "serve", "status", "watch")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run, list or describe the paper-reproduction experiments.",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list the registered experiments")

    describe = subparsers.add_parser(
        "describe", help="print the resolved spec and sweep axes of an experiment"
    )
    _add_target_arguments(describe)
    describe.add_argument(
        "--scale",
        default=None,
        help="resolve this scale's overrides (default: the base parameters)",
    )

    run = subparsers.add_parser("run", help="run an experiment or a spec file")
    _add_target_arguments(run)
    run.add_argument(
        "--scale",
        default="small",
        help="spec scale to run: 'small' (seconds-to-minutes) or 'paper' (hours) "
        "for the built-ins; spec files may declare their own (default: small)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the sweep (0/1 = serial; results are identical)",
    )
    run.add_argument(
        "--chunk-size",
        type=int,
        default=1,
        help="repetitions each worker picks up at a time (amortises overhead)",
    )
    run.add_argument(
        "--backend",
        default=None,
        help="executor backend registry key: serial, process-pool, or chaos "
        "(default: inferred from --workers; chaos injects deterministic "
        "faults from REPRO_CHAOS_* for recovery drills)",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="wall-clock budget in seconds for each repetition attempt; "
        "overruns are retried and eventually quarantined (default: none)",
    )
    run.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retries per repetition for transient faults — timeouts, worker "
        "crashes, injected chaos (default: 2)",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the content-addressed result store; cached repetitions "
        "are reused, new ones persisted (results are identical either way)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir for this invocation (simulate everything)",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run from --cache-dir (errors if the cache "
        "directory does not exist yet)",
    )
    run.add_argument(
        "--export",
        choices=("json", "csv"),
        default=None,
        help="write the result rows to stdout as JSON or CSV instead of a table "
        "(status lines go to stderr)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="run the sweep under cProfile and dump the top-25 cumulative "
        "entries to stderr (results are unchanged; use with --workers 0, "
        "subprocess work is invisible to the profiler)",
    )
    run.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="also write the raw pstats profile to PATH (implies --profile); "
        "load it with pstats.Stats(PATH) to diff hot paths across PRs",
    )
    run.add_argument(
        "--store-backend",
        default="local",
        help="store backend registry key for --cache-dir: 'local' (default) or "
        "'shared' (multi-process append discipline for service mode)",
    )
    run.add_argument(
        "--export-meta",
        metavar="PATH",
        default=None,
        help="write run metadata (fabric telemetry, store counters, timing) as "
        "JSON to PATH — separate from stdout so --export byte-diffs stay valid",
    )

    submit = subparsers.add_parser(
        "submit", help="enqueue a sweep on a durable work queue and exit with a group id"
    )
    _add_target_arguments(submit)
    submit.add_argument("--scale", default="small", help="spec scale (default: small)")
    submit.add_argument("--queue", required=True, help="work-queue directory (created on first use)")
    submit.add_argument(
        "--store",
        default=None,
        help="shared store directory recorded in the queue metadata at creation "
        "(default: <queue>/store)",
    )
    submit.add_argument(
        "--store-backend",
        default="shared",
        help="store backend key recorded at queue creation (default: shared)",
    )
    submit.add_argument(
        "--lease",
        type=float,
        default=None,
        help="seconds a worker's claim stays valid without a heartbeat "
        "(recorded at queue creation; default: 30)",
    )

    serve = subparsers.add_parser(
        "serve", help="run worker daemons against a queue until interrupted (or drained)"
    )
    serve.add_argument("--queue", required=True, help="the work-queue directory")
    serve.add_argument("--workers", type=int, default=2, help="worker processes (default: 2)")
    serve.add_argument("--store", default=None, help="override the queue's shared store directory")
    serve.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        help="workers exit after this many idle seconds (default: serve forever)",
    )

    status = subparsers.add_parser("status", help="one-shot progress report of a submit group")
    status.add_argument("group", help="group id printed by submit")
    status.add_argument("--queue", required=True, help="the work-queue directory")

    watch = subparsers.add_parser(
        "watch", help="stream a group's progress events until every job settles"
    )
    watch.add_argument("group", help="group id printed by submit")
    watch.add_argument("--queue", required=True, help="the work-queue directory")
    watch.add_argument("--poll", type=float, default=0.5, help="seconds between polls")
    watch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="give up (exit 1) after this many seconds (default: wait forever)",
    )
    return parser


def _add_target_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment identifier (e.g. FIG5; see 'list')",
    )
    parser.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        help="run a user-authored JSON/TOML ExperimentSpec file instead of a "
        "registered identifier",
    )


def _normalize_argv(argv: Sequence[str]) -> list[str]:
    """Map the deprecated flag forms onto the subcommand grammar.

    Anything that does not start with a subcommand becomes a ``run`` alias —
    both the bare-id form (``FIG5 --scale small``) and the flag-first form
    the pre-PR 5 parser accepted (``--scale small FIG5``) — except
    ``-h``/``--help``, which stay with the top-level parser so the subcommand
    overview remains reachable.
    """
    argv = list(argv)
    if not argv:
        return ["list"]
    if "--list" in argv:
        return ["list"]
    if argv[0] in _SUBCOMMANDS or argv[0] in ("-h", "--help"):
        return argv
    print(
        "note: 'python -m repro.experiments [flags] <ID>' is deprecated; "
        "use 'python -m repro.experiments run <ID> [flags]' (see also: list, describe)",
        file=sys.stderr,
    )
    return ["run", *argv]


def _resolve_spec(args) -> ExperimentSpec:
    """The spec named by the arguments; RegistryError/SpecValidationError on misuse."""
    if args.spec is not None and args.experiment is not None:
        raise SpecValidationError(
            ["give either an experiment identifier or --spec FILE, not both"]
        )
    if args.spec is not None:
        return load_spec(args.spec)
    if args.experiment is None:
        raise SpecValidationError(
            ["missing experiment identifier (or --spec FILE); see 'list' for the ids"]
        )
    return get_spec(args.experiment)


def _resolve_scale(spec: ExperimentSpec, requested: Optional[str]) -> Optional[str]:
    """The scale to resolve: validated against the spec's declared scales.

    Specs without a ``scales`` section (typical for user files) run on their
    base parameters; an explicitly requested scale they do not declare is an
    error, but the *default* request ("small") silently falls back to base.
    """
    if requested is None or (requested == "small" and "small" not in spec.scales):
        return None
    if requested in spec.scales:
        return requested
    declared = ", ".join(spec.scales) or "(none)"
    raise SpecValidationError(
        [f"unknown scale {requested!r}; {spec.name} declares: {declared}"],
        source=spec.name,
    )


def _list_experiments() -> str:
    width = max(len(key) for key in EXPERIMENTS)
    lines = [f"{key.ljust(width)}  {spec.title}" for key, spec in EXPERIMENTS.items()]
    return "\n".join(lines)


def _build_store(args):
    """The ResultStore the run should use, or None; raises ValueError on misuse."""
    if args.no_cache or args.cache_dir is None:
        if args.resume and args.cache_dir is None:
            raise ValueError("--resume requires --cache-dir")
        if args.resume and args.no_cache:
            raise ValueError("--resume and --no-cache are contradictory")
        return None
    from pathlib import Path

    from ..registry import STORE_BACKENDS

    if args.resume and not Path(args.cache_dir).is_dir():
        raise ValueError(
            f"--resume: cache directory {args.cache_dir!r} does not exist; "
            "nothing to resume from (drop --resume to start fresh)"
        )
    store_cls = STORE_BACKENDS.get(getattr(args, "store_backend", "local"))
    return store_cls(args.cache_dir)


def _usage_error(exc: Exception) -> int:
    """Print a usage problem (every validation error, one per line) and return 2."""
    if isinstance(exc, SpecValidationError):
        prefix = f"{exc.source}: " if exc.source else ""
        for error in exc.errors:
            print(f"error: {prefix}{error}", file=sys.stderr)
    else:
        # RegistryError messages already list the available keys.
        print(f"error: {exc}", file=sys.stderr)
    return 2


def _command_describe(args) -> int:
    try:
        spec = _resolve_spec(args)
        scale = _resolve_scale(spec, args.scale)
        print(describe_spec(spec, scale=scale))
    except (RegistryError, SpecValidationError) as exc:
        return _usage_error(exc)
    return 0


def _command_run(args) -> int:
    # Validate the knobs and resolve the spec up front, so usage errors exit
    # cleanly with code 2 while genuine failures inside a running experiment
    # still surface with a full traceback.
    try:
        spec = _resolve_spec(args)
        scale = _resolve_scale(spec, args.scale)
        if args.backend is not None:
            # Resolve the key eagerly so a typo is a clean usage error, not a
            # traceback from the first sweep's lazy backend construction.
            from ..registry import EXECUTOR_BACKENDS

            EXECUTOR_BACKENDS.get(args.backend)
        from ..registry import STORE_BACKENDS

        STORE_BACKENDS.get(args.store_backend)  # same eager-typo discipline
        if args.max_retries is not None and args.max_retries < 0:
            raise ValueError("--max-retries must be >= 0")
        if args.timeout is not None and args.timeout <= 0:
            raise ValueError("--timeout must be positive")
        executor = SweepExecutor(
            args.workers,
            chunk_size=args.chunk_size,
            backend=args.backend,
            timeout=args.timeout,
            max_retries=args.max_retries,
        )
        if args.backend is not None:
            # Construct the backend now rather than at the first sweep: its
            # knob errors (e.g. the queue backend without REPRO_QUEUE_DIR set)
            # are configuration problems, not experiment failures.
            executor.backend
        store = _build_store(args)
    except (RegistryError, SpecValidationError, ValueError) as exc:
        return _usage_error(exc)

    profiler = None
    if args.profile_out:
        args.profile = True
    if args.profile:
        import cProfile

        if executor.parallel:
            print(
                "warning: --profile only sees the coordinating process; "
                "use --workers 0 to profile the simulations themselves",
                file=sys.stderr,
            )
        profiler = cProfile.Profile()
    with executor:
        started = time.perf_counter()
        if profiler is not None:
            profiler.enable()
        try:
            rows = run_spec(spec, scale=scale, executor=executor, store=store)
        except (RegistryError, SpecValidationError) as exc:
            # A spec referencing an unknown component/name or failing template
            # resolution is a usage error even though it surfaces mid-run;
            # genuine simulation failures still traceback.
            if profiler is not None:
                profiler.disable()
            return _usage_error(exc)
        except SweepFailure as exc:
            # The sweep finished everything it could; only the quarantined
            # repetitions are missing.  Report them and exit distinctly so
            # scripts can tell "partial" from "crashed".
            if profiler is not None:
                profiler.disable()
            for failure in exc.failures:
                print(f"error: {failure.describe()}", file=sys.stderr)
            print(
                f"error: {len(exc.failures)} repetition(s) exhausted their retries "
                f"and were quarantined ({executor.telemetry.summary()})",
                file=sys.stderr,
            )
            if store is not None:
                print(
                    "note: completed repetitions are cached; rerun with the same "
                    f"--cache-dir {args.cache_dir} to retry only the failures",
                    file=sys.stderr,
                )
            return 3
        except KeyboardInterrupt as exc:
            if profiler is not None:
                profiler.disable()
            print("interrupted", file=sys.stderr)
            if isinstance(exc, SweepInterrupted):
                print(
                    f"note: {exc.completed} repetition(s) were computed and cached "
                    f"before the interrupt ({exc.pending} still pending); resume with "
                    f"--cache-dir {exc.cache_dir} --resume",
                    file=sys.stderr,
                )
            return 130
        if profiler is not None:
            profiler.disable()
        elapsed = time.perf_counter() - started
    if profiler is not None:
        import pstats

        if args.profile_out:
            # Raw pstats dump: loadable with pstats.Stats(path), so two PRs'
            # profiles can be diffed instead of eyeballing stderr tables.
            profiler.dump_stats(args.profile_out)
            print(f"profile written to {args.profile_out}", file=sys.stderr)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)

    # With --export the rows own stdout; human-facing status moves to stderr.
    status = sys.stderr if args.export else sys.stdout
    print(f"{spec.name} — {spec.title}", file=status)
    summary = (
        f"scale={scale or 'base'} workers={args.workers} elapsed={elapsed:.1f}s"
    )
    if store is not None:
        # Uniform across store backends: hit/miss and integrity counters are
        # always reported, so a clean run shows torn-lines=0 instead of
        # nothing — after-the-fact service telemetry needs the explicit zero.
        summary += (
            f" cache-dir={args.cache_dir}"
            f" cache-hits={store.stats.hits} cache-misses={store.stats.misses}"
            f" torn-lines={store.stats.torn_lines}"
            f" checksum-failures={store.stats.checksum_failures}"
        )
    # Uniform across executor backends: attempts= always, recovery counters
    # when they fired (lease requeues of the queue backend included).
    summary += f" [fabric: {executor.telemetry.summary()}]"
    soa = soa_telemetry_snapshot()
    if soa.get("slots_run"):
        # SoA-tier observability for serial/in-process runs (process-pool
        # workers keep their own accumulators): how much executed on the
        # compiled tier, how often slots fell back, and how well the
        # busy-pattern memo held up.
        lookups = soa["busy_cache_hits"] + soa["busy_cache_misses"]
        hit_rate = soa["busy_cache_hits"] / lookups if lookups else 0.0
        summary += (
            f" [soa: slots_run={soa['slots_run']}"
            f" scalar_fallbacks={soa['scalar_fallbacks']}"
            f" busy_cache_hit_rate={hit_rate:.1%}"
        )
        if soa.get("busy_cache_evictions"):
            summary += f" busy_cache_evictions={soa['busy_cache_evictions']}"
        summary += "]"
    print(summary + "\n", file=status)

    if args.export_meta:
        # Machine-readable run metadata, kept off stdout so the exported rows
        # stay byte-comparable across backends while the telemetry that
        # produced them is still inspectable after the fact.
        meta = {
            "spec": spec.name,
            "scale": scale or "base",
            "workers": args.workers,
            "backend": args.backend,
            "elapsed_s": elapsed,
            "fabric": executor.telemetry.snapshot(),
            "store": store.stats.snapshot() if store is not None else None,
            "soa": soa if soa.get("slots_run") else None,
        }
        with open(args.export_meta, "w", encoding="utf8") as handle:
            json.dump(meta, handle, indent=2)
            handle.write("\n")
        print(f"run metadata written to {args.export_meta}", file=sys.stderr)

    rows = list(rows)
    if args.export == "json":
        print(json.dumps(rows, indent=2))
    elif args.export == "csv":
        sys.stdout.write(to_csv(rows))
    else:
        print(format_table(rows, title=None))
    return 0


def _command_submit(args) -> int:
    from ..service.frontend import submit
    from ..service.queue import DEFAULT_LEASE_SECONDS, QueueError
    from .driver import resolve_context

    try:
        from ..registry import STORE_BACKENDS

        STORE_BACKENDS.get(args.store_backend)  # typo → usage error, not traceback
        spec = _resolve_spec(args)
        scale = _resolve_scale(spec, args.scale)
        context = resolve_context(spec, scale=scale)
        submit(
            spec,
            context,
            queue_dir=args.queue,
            store_dir=args.store,
            store_backend=args.store_backend,
            lease_seconds=args.lease if args.lease is not None else DEFAULT_LEASE_SECONDS,
        )
    except (RegistryError, SpecValidationError, QueueError) as exc:
        return _usage_error(exc)
    return 0


def _command_serve(args) -> int:
    from ..service.frontend import serve
    from ..service.queue import QueueError

    try:
        return serve(
            args.queue,
            workers=args.workers,
            store_dir=args.store,
            idle_exit=args.idle_exit,
        )
    except QueueError as exc:
        return _usage_error(exc)


def _command_status(args) -> int:
    from ..service.frontend import status
    from ..service.queue import QueueError

    try:
        return status(args.queue, args.group)
    except QueueError as exc:
        return _usage_error(exc)


def _command_watch(args) -> int:
    from ..service.frontend import watch
    from ..service.queue import QueueError

    try:
        return watch(args.queue, args.group, poll_interval=args.poll, timeout=args.timeout)
    except QueueError as exc:
        return _usage_error(exc)
    except KeyboardInterrupt:
        return 130


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(_normalize_argv(list(argv if argv is not None else sys.argv[1:])))
    if args.command == "list":
        print(_list_experiments())
        return 0
    if args.command == "describe":
        return _command_describe(args)
    if args.command == "submit":
        return _command_submit(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "status":
        return _command_status(args)
    if args.command == "watch":
        return _command_watch(args)
    return _command_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
