"""Command-line entry point for the paper-reproduction experiments.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments FIG5 --scale small --workers 4
    python -m repro.experiments EPID --scale paper --workers 8 --chunk-size 2
    python -m repro.experiments FIG7 --scale small --cache-dir ~/.cache/repro
    python -m repro.experiments FIG7 --scale small --cache-dir ~/.cache/repro --resume
    python -m repro.experiments JAM --scale small --export csv > jam.csv
    python -m repro.experiments FIG7 --scale small --profile

``--profile`` wraps the sweep in :mod:`cProfile` and dumps the top 25
cumulative entries to stderr, so perf work can locate hot paths without
ad-hoc scripts (serial runs only see meaningful data; worker processes are
outside the profiler).  ``--profile-out PATH`` (implies ``--profile``)
additionally writes the raw :mod:`pstats` file, so profiles can be stored
next to ``BENCH_<pr>.json`` and diffed across PRs with
``pstats.Stats(old).print_stats()`` / ``Stats(new)`` instead of comparing
stderr tables by eye.

Runs one registered experiment (see ``--list`` for the identifiers), fanning
its seeded repetitions out over ``--workers`` processes via
:class:`~repro.sim.runner.SweepExecutor`.  Results are bit-identical for
every worker count, so ``--workers`` is purely a throughput knob.

``--cache-dir`` routes the sweep through the content-addressed
:class:`~repro.store.ResultStore`: repetitions already on disk are read back
instead of re-simulated (the summary line reports the hit/miss split), new
ones are persisted as they complete, and an interrupted run resumes from
whatever landed.  A warm-cache rerun prints byte-identical rows while
dispatching zero simulations.  ``--resume`` is the explicit spelling of that
resumption: it requires the cache directory to exist already.  ``--no-cache``
ignores an inherited cache dir for one invocation.

``--export {json,csv}`` writes the machine-readable rows to stdout (status
lines move to stderr), so two invocations can be compared byte for byte.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from ..analysis.tables import format_table, to_csv
from ..sim.runner import SweepExecutor
from .registry import EXPERIMENTS, run_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run one of the paper-reproduction experiments.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment identifier (e.g. FIG5; see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the registered experiments and exit"
    )
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="small",
        help="spec to run: 'small' (seconds-to-minutes) or 'paper' (hours)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the sweep (0/1 = serial; results are identical)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=1,
        help="repetitions each worker picks up at a time (amortises overhead)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the content-addressed result store; cached repetitions "
        "are reused, new ones persisted (results are identical either way)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir for this invocation (simulate everything)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run from --cache-dir (errors if the cache "
        "directory does not exist yet)",
    )
    parser.add_argument(
        "--export",
        choices=("json", "csv"),
        default=None,
        help="write the result rows to stdout as JSON or CSV instead of a table "
        "(status lines go to stderr)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the sweep under cProfile and dump the top-25 cumulative "
        "entries to stderr (results are unchanged; use with --workers 0, "
        "subprocess work is invisible to the profiler)",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="also write the raw pstats profile to PATH (implies --profile); "
        "load it with pstats.Stats(PATH) to diff hot paths across PRs",
    )
    return parser


def _list_experiments() -> str:
    width = max(len(key) for key in EXPERIMENTS)
    lines = [f"{key.ljust(width)}  {description}" for key, (description, _) in EXPERIMENTS.items()]
    return "\n".join(lines)


def _build_store(args):
    """The ResultStore the run should use, or None; raises ValueError on misuse."""
    if args.no_cache or args.cache_dir is None:
        if args.resume and args.cache_dir is None:
            raise ValueError("--resume requires --cache-dir")
        if args.resume and args.no_cache:
            raise ValueError("--resume and --no-cache are contradictory")
        return None
    from pathlib import Path

    from ..store import ResultStore

    if args.resume and not Path(args.cache_dir).is_dir():
        raise ValueError(
            f"--resume: cache directory {args.cache_dir!r} does not exist; "
            "nothing to resume from (drop --resume to start fresh)"
        )
    return ResultStore(args.cache_dir)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        print(_list_experiments())
        return 0

    # Validate the knobs and resolve the experiment id up front, so usage
    # errors exit cleanly with code 2 while genuine failures inside a running
    # experiment still surface with a full traceback.
    try:
        executor = SweepExecutor(args.workers, chunk_size=args.chunk_size)
        store = _build_store(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    profiler = None
    if args.profile_out:
        args.profile = True
    if args.profile:
        import cProfile

        if executor.parallel:
            print(
                "warning: --profile only sees the coordinating process; "
                "use --workers 0 to profile the simulations themselves",
                file=sys.stderr,
            )
        profiler = cProfile.Profile()
    with executor:
        try:
            started = time.perf_counter()
            if profiler is not None:
                profiler.enable()
            rows, description = run_experiment(
                args.experiment, scale=args.scale, executor=executor, store=store
            )
            if profiler is not None:
                profiler.disable()
            elapsed = time.perf_counter() - started
        except KeyError as exc:
            print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
            return 2
    if profiler is not None:
        import pstats

        if args.profile_out:
            # Raw pstats dump: loadable with pstats.Stats(path), so two PRs'
            # profiles can be diffed instead of eyeballing stderr tables.
            profiler.dump_stats(args.profile_out)
            print(f"profile written to {args.profile_out}", file=sys.stderr)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)

    # With --export the rows own stdout; human-facing status moves to stderr.
    status = sys.stderr if args.export else sys.stdout
    print(f"{args.experiment.upper()} — {description}", file=status)
    summary = f"scale={args.scale} workers={args.workers} elapsed={elapsed:.1f}s"
    if store is not None:
        summary += (
            f" cache-dir={args.cache_dir}"
            f" cache-hits={store.stats.hits} cache-misses={store.stats.misses}"
        )
    print(summary + "\n", file=status)

    rows = list(rows)
    if args.export == "json":
        print(json.dumps(rows, indent=2))
    elif args.export == "csv":
        sys.stdout.write(to_csv(rows))
    else:
        print(format_table(rows, title=None))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
