"""Command-line entry point for the paper-reproduction experiments.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments FIG5 --scale small --workers 4
    python -m repro.experiments EPID --scale paper --workers 8 --chunk-size 2

Runs one registered experiment (see ``--list`` for the identifiers), fanning
its seeded repetitions out over ``--workers`` processes via
:class:`~repro.sim.runner.SweepExecutor`, and prints the resulting table.
Results are bit-identical for every worker count, so ``--workers`` is purely
a throughput knob.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from ..analysis.tables import format_table
from ..sim.runner import SweepExecutor
from .registry import EXPERIMENTS, run_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run one of the paper-reproduction experiments.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment identifier (e.g. FIG5; see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the registered experiments and exit"
    )
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="small",
        help="spec to run: 'small' (seconds-to-minutes) or 'paper' (hours)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the sweep (0/1 = serial; results are identical)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=1,
        help="repetitions each worker picks up at a time (amortises overhead)",
    )
    return parser


def _list_experiments() -> str:
    width = max(len(key) for key in EXPERIMENTS)
    lines = [f"{key.ljust(width)}  {description}" for key, (description, _) in EXPERIMENTS.items()]
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        print(_list_experiments())
        return 0

    # Validate the knobs and resolve the experiment id up front, so usage
    # errors exit cleanly with code 2 while genuine failures inside a running
    # experiment still surface with a full traceback.
    try:
        executor = SweepExecutor(args.workers, chunk_size=args.chunk_size)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with executor:
        try:
            started = time.perf_counter()
            rows, description = run_experiment(
                args.experiment, scale=args.scale, executor=executor
            )
            elapsed = time.perf_counter() - started
        except KeyError as exc:
            print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
            return 2

    print(f"{args.experiment.upper()} — {description}")
    print(f"scale={args.scale} workers={args.workers} elapsed={elapsed:.1f}s\n")
    print(format_table(list(rows), title=None))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
