"""Experiment FIG7 — Byzantine tolerance as a function of deployment density.

Figure 7 of the paper asks, for each deployment density, what is the largest
fraction of lying devices such that at least 90% of the honest devices still
receive the *correct* message.  The paper sweeps 300-3600 nodes on a 20x20 map
and finds that NeighborWatchRB benefits the most from density (tolerating up
to ~25% lying devices at high density) while MultiPathRB's tolerance is pinned
near ``t / E[|N|]`` and its simulations become prohibitively slow beyond
density 5 (ours are capped far lower; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..adversary.placement import fraction_to_count
from ..analysis.metrics import max_tolerated_fraction
from ..sim.config import ProtocolName, ScenarioConfig
from ..sim.runner import SweepExecutor
from .base import run_point
from .factories import RandomLiarFactory, UniformDeploymentFactory

__all__ = ["DensityToleranceSpec", "run_density_tolerance"]


@dataclass(slots=True)
class DensityToleranceSpec:
    """Parameters of the density-vs-tolerance search."""

    map_size: float = 20.0
    densities: Sequence[float] = (0.75, 1.5, 3.0)
    candidate_fractions: Sequence[float] = (0.0, 0.025, 0.05, 0.10, 0.15, 0.25)
    radius: float = 4.0
    message_length: int = 4
    threshold: float = 0.9
    protocols: Sequence[tuple[str, str, int]] = field(
        default_factory=lambda: [
            ("NeighborWatchRB", "neighborwatch", 0),
            ("NeighborWatchRB-2vote", "neighborwatch2", 0),
        ]
    )
    repetitions: int = 2
    base_seed: int = 400

    @classmethod
    def paper(cls) -> "DensityToleranceSpec":
        return cls(
            densities=(0.75, 1.5, 3.0, 5.0, 9.0),
            candidate_fractions=(0.0, 0.025, 0.05, 0.075, 0.10, 0.15, 0.20, 0.25, 0.30),
            protocols=[
                ("NeighborWatchRB", "neighborwatch", 0),
                ("NeighborWatchRB-2vote", "neighborwatch2", 0),
                ("MultiPathRB(t=3)", "multipath", 3),
            ],
            repetitions=6,
        )

    @classmethod
    def small(cls) -> "DensityToleranceSpec":
        return cls(
            map_size=9.0,
            densities=(1.2, 2.5),
            candidate_fractions=(0.0, 0.05, 0.15),
            radius=3.0,
            message_length=2,
            protocols=[("NeighborWatchRB", "neighborwatch", 0)],
            repetitions=1,
        )


def run_density_tolerance(
    spec: DensityToleranceSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> list[dict]:
    """For each (protocol, density), search the largest tolerated lying fraction.

    The search over candidate fractions is adaptive (each evaluation depends
    on the previous outcome), so only the repetitions *within* one evaluation
    are fanned out over the executor.
    """
    rows: list[dict] = []
    for label, protocol, tolerance in spec.protocols:
        for density in spec.densities:
            num_nodes = max(10, int(round(density * spec.map_size * spec.map_size)))
            config = ScenarioConfig(
                protocol=ProtocolName.parse(protocol),
                radius=spec.radius,
                message_length=spec.message_length,
                multipath_tolerance=tolerance,
            )

            evaluations: dict[float, float] = {}

            def evaluate(fraction: float, _num_nodes=num_nodes, _config=config) -> float:
                point = run_point(
                    f"{fraction:.1%}",
                    UniformDeploymentFactory(_num_nodes, spec.map_size, spec.map_size),
                    _config,
                    fault_factory=RandomLiarFactory(
                        fraction_to_count(_num_nodes, fraction), seed_offset=17
                    ),
                    repetitions=spec.repetitions,
                    base_seed=spec.base_seed,
                    executor=executor,
                    store=store,
                )
                value = point.correct_delivery_fraction
                evaluations[fraction] = value
                return value

            tolerated = max_tolerated_fraction(
                evaluate, spec.candidate_fractions, threshold=spec.threshold
            )
            rows.append(
                {
                    "protocol": label,
                    "density": density,
                    "num_nodes": num_nodes,
                    "max_tolerated_%": 100.0 * tolerated,
                    "evaluated_points": len(evaluations),
                }
            )
    return rows
