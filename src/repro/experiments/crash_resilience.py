"""Experiment FIG5 — tolerating crashed devices (Figure 5 of the paper).

The paper deploys devices on a 24x24 map, crashes a varying fraction of them
(equivalently: varies the density of *active* devices) and reports the
percentage of devices that complete the protocol, for NeighborWatchRB, its
2-voting variant, and MultiPathRB with t = 3 and t = 5.  The expected shape:
completion climbs towards 100% with density, NeighborWatchRB needs the least
density, 2-voting a bit more, and MultiPathRB — which needs ``t + 1``
node-disjoint paths — the most, with t = 5 failing at the network edges even
at moderate densities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..sim.config import ProtocolName, ScenarioConfig
from ..sim.runner import SweepExecutor, SweepTask
from .base import run_points
from .factories import TargetDensityCrashFactory, UniformDeploymentFactory

__all__ = ["CrashResilienceSpec", "run_crash_resilience"]


@dataclass(slots=True)
class CrashResilienceSpec:
    """Parameters of the crash-resilience sweep."""

    map_size: float = 24.0
    deployed_density: float = 3.0          # devices deployed before crashing
    densities: Sequence[float] = (0.75, 1.0, 1.5, 2.0)  # active densities swept
    radius: float = 4.0
    message_length: int = 4
    protocols: Sequence[tuple[str, str, int]] = field(
        default_factory=lambda: [
            ("NeighborWatchRB", "neighborwatch", 0),
            ("NeighborWatchRB-2vote", "neighborwatch2", 0),
            ("MultiPathRB(t=3)", "multipath", 3),
            ("MultiPathRB(t=5)", "multipath", 5),
        ]
    )
    repetitions: int = 3
    base_seed: int = 100

    @classmethod
    def paper(cls) -> "CrashResilienceSpec":
        """Parameters close to the paper's Figure 5 (slow: hours of CPU)."""
        return cls(
            map_size=24.0,
            deployed_density=3.0,
            densities=(0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0),
            radius=4.0,
            message_length=4,
            repetitions=6,
        )

    @classmethod
    def small(cls) -> "CrashResilienceSpec":
        """A scaled-down sweep with the same qualitative shape (tens of seconds)."""
        return cls(
            map_size=8.0,
            deployed_density=2.2,
            densities=(0.8, 1.6),
            radius=3.0,
            message_length=2,
            protocols=[
                ("NeighborWatchRB", "neighborwatch", 0),
                ("NeighborWatchRB-2vote", "neighborwatch2", 0),
                ("MultiPathRB(t=1)", "multipath", 1),
            ],
            repetitions=2,
        )


def run_crash_resilience(
    spec: CrashResilienceSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> list[dict]:
    """Run the FIG5 sweep and return one row per (protocol, density) point."""
    num_deployed = int(round(spec.deployed_density * spec.map_size * spec.map_size))
    deployment_factory = UniformDeploymentFactory(num_deployed, spec.map_size, spec.map_size)

    tasks = [
        SweepTask(
            label=f"{label}@density={density}",
            deployment_factory=deployment_factory,
            config=ScenarioConfig(
                protocol=ProtocolName.parse(protocol),
                radius=spec.radius,
                message_length=spec.message_length,
                multipath_tolerance=tolerance,
            ),
            fault_factory=TargetDensityCrashFactory(density),
            repetitions=spec.repetitions,
            base_seed=spec.base_seed,
            extra={"protocol": label, "density": density},
        )
        for label, protocol, tolerance in spec.protocols
        for density in spec.densities
    ]
    points = run_points(tasks, executor=executor, store=store)
    return [point.row(**task.extra) for task, point in zip(tasks, points)]
