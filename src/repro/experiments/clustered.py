"""Experiment CLUST — non-uniform (clustered) node distributions (Section 6.2).

The paper deploys 1200 devices on a 30x30 map in clusters (cluster centers
chosen at random, devices spread normally around their cluster center via
Marsaglia's method) and observes that NeighborWatchRB keeps working as long as
connectivity is sufficient, that completion may fall short of 100% because
some clusters are disconnected from the source, and that under lying attacks
the inherent clustering *helps* (correctness up to ~10% higher than uniform).
This experiment compares uniform vs clustered deployments with and without
lying devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..adversary.placement import fraction_to_count
from ..sim.config import ProtocolName, ScenarioConfig
from ..sim.runner import SweepExecutor, SweepTask
from ..topology.connectivity import connectivity_report
from .base import run_points
from .factories import ClusteredDeploymentFactory, RandomLiarFactory, UniformDeploymentFactory

__all__ = ["ClusteredSpec", "run_clustered"]


@dataclass(slots=True)
class ClusteredSpec:
    """Parameters of the clustered-deployment comparison."""

    map_size: float = 30.0
    num_nodes: int = 1200
    num_clusters: int = 10
    radius: float = 4.0
    message_length: int = 4
    protocol: str = "neighborwatch"
    lying_fractions: Sequence[float] = (0.0, 0.05)
    repetitions: int = 3
    base_seed: int = 500

    @classmethod
    def paper(cls) -> "ClusteredSpec":
        return cls(lying_fractions=(0.0, 0.05, 0.10), repetitions=6)

    @classmethod
    def small(cls) -> "ClusteredSpec":
        return cls(
            map_size=12.0,
            num_nodes=200,
            num_clusters=5,
            radius=3.0,
            message_length=2,
            lying_fractions=(0.0, 0.05),
            repetitions=2,
        )


def run_clustered(
    spec: ClusteredSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> list[dict]:
    """Compare uniform vs clustered deployments; one row per (kind, fraction)."""
    config = ScenarioConfig(
        protocol=ProtocolName.parse(spec.protocol),
        radius=spec.radius,
        message_length=spec.message_length,
    )
    factories = {
        "uniform": UniformDeploymentFactory(spec.num_nodes, spec.map_size, spec.map_size),
        "clustered": ClusteredDeploymentFactory(
            spec.num_nodes, spec.map_size, spec.map_size, num_clusters=spec.num_clusters
        ),
    }

    tasks = [
        SweepTask(
            label=f"{kind}@{fraction:.0%}",
            deployment_factory=factories[kind],
            config=config,
            fault_factory=RandomLiarFactory(
                fraction_to_count(spec.num_nodes, fraction), seed_offset=23
            ),
            repetitions=spec.repetitions,
            base_seed=spec.base_seed,
            extra={"deployment": kind, "byzantine_fraction": fraction},
        )
        for kind in ("uniform", "clustered")
        for fraction in spec.lying_fractions
    ]
    points = run_points(tasks, executor=executor, store=store)

    rows: list[dict] = []
    for task, point in zip(tasks, points):
        # Report source-component connectivity alongside, since the paper
        # attributes sub-100% completion to disconnected clusters.
        sample = task.deployment_factory(spec.base_seed)
        report = connectivity_report(sample.positions, spec.radius, sample.source_index, norm="l2")
        rows.append(
            point.row(
                **task.extra,
                reachable_from_source_pct=100.0 * report.reachable_from_source,
            )
        )
    return rows
