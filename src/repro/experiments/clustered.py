"""Experiment CLUST — non-uniform (clustered) node distributions (Section 6.2).

The paper deploys 1200 devices on a 30x30 map in clusters (cluster centers
chosen at random, devices spread normally around their cluster center via
Marsaglia's method) and observes that NeighborWatchRB keeps working as long as
connectivity is sufficient, that completion may fall short of 100% because
some clusters are disconnected from the source, and that under lying attacks
the inherent clustering *helps* (correctness up to ~10% higher than uniform).
This experiment compares uniform vs clustered deployments with and without
lying devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..adversary.placement import fraction_to_count, random_fault_selection
from ..sim.config import FaultPlan, ProtocolName, ScenarioConfig
from ..topology.connectivity import connectivity_report
from ..topology.deployment import clustered_deployment, uniform_deployment
from .base import run_point

__all__ = ["ClusteredSpec", "run_clustered"]


@dataclass(slots=True)
class ClusteredSpec:
    """Parameters of the clustered-deployment comparison."""

    map_size: float = 30.0
    num_nodes: int = 1200
    num_clusters: int = 10
    radius: float = 4.0
    message_length: int = 4
    protocol: str = "neighborwatch"
    lying_fractions: Sequence[float] = (0.0, 0.05)
    repetitions: int = 3
    base_seed: int = 500

    @classmethod
    def paper(cls) -> "ClusteredSpec":
        return cls(lying_fractions=(0.0, 0.05, 0.10), repetitions=6)

    @classmethod
    def small(cls) -> "ClusteredSpec":
        return cls(
            map_size=12.0,
            num_nodes=200,
            num_clusters=5,
            radius=3.0,
            message_length=2,
            lying_fractions=(0.0, 0.05),
            repetitions=2,
        )


def run_clustered(spec: ClusteredSpec) -> list[dict]:
    """Compare uniform vs clustered deployments; one row per (kind, fraction)."""
    rows: list[dict] = []
    config = ScenarioConfig(
        protocol=ProtocolName.parse(spec.protocol),
        radius=spec.radius,
        message_length=spec.message_length,
    )

    for kind in ("uniform", "clustered"):
        for fraction in spec.lying_fractions:
            num_liars = fraction_to_count(spec.num_nodes, fraction)

            def deployment_factory(seed: int, _kind=kind):
                if _kind == "clustered":
                    return clustered_deployment(
                        spec.num_nodes,
                        spec.map_size,
                        spec.map_size,
                        num_clusters=spec.num_clusters,
                        rng=seed,
                    )
                return uniform_deployment(spec.num_nodes, spec.map_size, spec.map_size, rng=seed)

            def fault_factory(deployment, seed: int, _count=num_liars) -> FaultPlan:
                if _count == 0:
                    return FaultPlan()
                liars = random_fault_selection(
                    deployment.num_nodes, _count, exclude=[deployment.source_index], rng=seed + 23
                )
                return FaultPlan(liars=tuple(liars))

            point = run_point(
                f"{kind}@{fraction:.0%}",
                deployment_factory,
                config,
                fault_factory=fault_factory,
                repetitions=spec.repetitions,
                base_seed=spec.base_seed,
            )
            # Report source-component connectivity alongside, since the paper
            # attributes sub-100% completion to disconnected clusters.
            sample = deployment_factory(spec.base_seed)
            report = connectivity_report(
                sample.positions, spec.radius, sample.source_index, norm="l2"
            )
            rows.append(
                point.row(
                    deployment=kind,
                    byzantine_fraction=fraction,
                    reachable_from_source_pct=100.0 * report.reachable_from_source,
                )
            )
    return rows
