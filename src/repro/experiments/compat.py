"""Typed compatibility wrappers over the declarative experiment specs.

Before PR 5 every experiment was a hand-written module exposing a parameter
dataclass (``CrashResilienceSpec``, ``JammingSpec``, ...) and a ``run_*``
function.  Those modules are gone — the experiments are
:class:`~repro.experiments.spec.ExperimentSpec` *data* executed by the
generic drivers — but the typed surface is kept here because it is a
pleasant programmatic API (and the benchmark suite uses it): each dataclass
mirrors one spec's parameters field-for-field, its ``paper()``/``small()``
constructors mirror the spec's scales, and ``run_*`` simply feeds the field
values into :func:`~repro.experiments.driver.run_spec` as overrides.

The wrappers are *exactly* equivalent to running the registered spec: same
tasks, same fingerprints, same rows.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..registry import EXPERIMENT_SPECS
from ..sim.runner import SweepExecutor
from .driver import run_spec

__all__ = [
    "CrashResilienceSpec",
    "run_crash_resilience",
    "JammingSpec",
    "run_jamming",
    "LyingSpec",
    "run_lying",
    "DensityToleranceSpec",
    "run_density_tolerance",
    "ClusteredSpec",
    "run_clustered",
    "MapSizeSpec",
    "run_map_size",
    "EpidemicComparisonSpec",
    "run_epidemic_comparison",
    "DualModeSpec",
    "run_dual_mode",
]


def _protocol_entries(protocols) -> tuple[dict, ...]:
    """Normalise ``(label, protocol, tolerance)`` triples to spec mappings."""
    entries = []
    for entry in protocols:
        if isinstance(entry, Mapping):
            entries.append(dict(entry))
        else:
            label, protocol, tolerance = entry
            entries.append({"label": label, "protocol": protocol, "tolerance": tolerance})
    return tuple(entries)


def _overrides(spec_dataclass, *, protocols_field: Optional[str] = "protocols") -> dict:
    """The spec-parameter overrides equivalent to a compat dataclass instance."""
    overrides = {
        f.name: getattr(spec_dataclass, f.name) for f in dataclasses.fields(spec_dataclass)
    }
    if protocols_field and protocols_field in overrides:
        overrides[protocols_field] = _protocol_entries(overrides[protocols_field])
    return overrides


def _run(experiment_id: str, spec_dataclass, executor, store, **extra_overrides) -> list[dict]:
    overrides = _overrides(spec_dataclass)
    overrides.update(extra_overrides)
    return run_spec(
        EXPERIMENT_SPECS.get(experiment_id), overrides=overrides, executor=executor, store=store
    )


# -- FIG5 ---------------------------------------------------------------------------------
@dataclass(slots=True)
class CrashResilienceSpec:
    """Parameters of the crash-resilience sweep (experiment FIG5)."""

    map_size: float = 24.0
    deployed_density: float = 3.0          # devices deployed before crashing
    densities: Sequence[float] = (0.75, 1.0, 1.5, 2.0)  # active densities swept
    radius: float = 4.0
    message_length: int = 4
    protocols: Sequence[tuple[str, str, int]] = field(
        default_factory=lambda: [
            ("NeighborWatchRB", "neighborwatch", 0),
            ("NeighborWatchRB-2vote", "neighborwatch2", 0),
            ("MultiPathRB(t=3)", "multipath", 3),
            ("MultiPathRB(t=5)", "multipath", 5),
        ]
    )
    repetitions: int = 3
    base_seed: int = 100

    @classmethod
    def paper(cls) -> "CrashResilienceSpec":
        """Parameters close to the paper's Figure 5 (slow: hours of CPU)."""
        return cls(
            map_size=24.0,
            deployed_density=3.0,
            densities=(0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0),
            radius=4.0,
            message_length=4,
            repetitions=6,
        )

    @classmethod
    def small(cls) -> "CrashResilienceSpec":
        """A scaled-down sweep with the same qualitative shape (tens of seconds)."""
        return cls(
            map_size=8.0,
            deployed_density=2.2,
            densities=(0.8, 1.6),
            radius=3.0,
            message_length=2,
            protocols=[
                ("NeighborWatchRB", "neighborwatch", 0),
                ("NeighborWatchRB-2vote", "neighborwatch2", 0),
                ("MultiPathRB(t=1)", "multipath", 1),
            ],
            repetitions=2,
        )


def run_crash_resilience(
    spec: CrashResilienceSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> list[dict]:
    """Run the FIG5 sweep and return one row per (protocol, density) point."""
    return _run("FIG5", spec, executor, store)


# -- JAM ----------------------------------------------------------------------------------
@dataclass(slots=True)
class JammingSpec:
    """Parameters of the jamming sweep (experiment JAM)."""

    map_size: float = 24.0
    num_nodes: int = 800
    radius: float = 4.0
    message_length: int = 4
    protocol: str = "neighborwatch"
    jammer_fraction: float = 0.10
    jam_probability: float = 0.2
    budgets: Sequence[int] = (0, 5, 10, 20)
    repetitions: int = 3
    base_seed: int = 200

    @classmethod
    def paper(cls) -> "JammingSpec":
        return cls(budgets=(0, 5, 10, 20, 40, 80), repetitions=6)

    @classmethod
    def small(cls) -> "JammingSpec":
        return cls(
            map_size=10.0,
            num_nodes=150,
            radius=3.0,
            message_length=2,
            budgets=(0, 4, 8),
            repetitions=2,
        )


def run_jamming(
    spec: JammingSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> list[dict]:
    """Run the jamming sweep and return one row per budget value."""
    return _run("JAM", spec, executor, store)


# -- FIG6 ---------------------------------------------------------------------------------
@dataclass(slots=True)
class LyingSpec:
    """Parameters of the lying sweep (experiment FIG6)."""

    map_size: float = 20.0
    num_nodes: int = 600
    radius: float = 4.0
    message_length: int = 4
    fractions: Sequence[float] = (0.0, 0.025, 0.05, 0.10, 0.15)
    protocols: Sequence[tuple[str, str, int]] = field(
        default_factory=lambda: [
            ("NeighborWatchRB", "neighborwatch", 0),
            ("NeighborWatchRB-2vote", "neighborwatch2", 0),
            ("MultiPathRB(t=3)", "multipath", 3),
            ("MultiPathRB(t=5)", "multipath", 5),
        ]
    )
    clustered: bool = False
    repetitions: int = 3
    base_seed: int = 300

    @classmethod
    def paper(cls) -> "LyingSpec":
        return cls(fractions=(0.0, 0.01, 0.025, 0.05, 0.075, 0.10, 0.15, 0.20), repetitions=6)

    @classmethod
    def small(cls) -> "LyingSpec":
        return cls(
            map_size=10.0,
            num_nodes=150,
            radius=3.0,
            message_length=2,
            fractions=(0.0, 0.05, 0.20),
            protocols=[
                ("NeighborWatchRB", "neighborwatch", 0),
                ("NeighborWatchRB-2vote", "neighborwatch2", 0),
            ],
            repetitions=2,
        )

    @classmethod
    def small_multipath(cls) -> "LyingSpec":
        """A tiny MultiPathRB-only variant (MultiPathRB is far slower to simulate)."""
        return cls(
            map_size=8.0,
            num_nodes=110,
            radius=3.0,
            message_length=2,
            fractions=(0.0, 0.03, 0.20),
            protocols=[("MultiPathRB(t=2)", "multipath", 2)],
            repetitions=2,
        )


def run_lying(
    spec: LyingSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> list[dict]:
    """Run the FIG6 sweep and return one row per (protocol, fraction) point."""
    return _run("FIG6", spec, executor, store)


# -- FIG7 ---------------------------------------------------------------------------------
@dataclass(slots=True)
class DensityToleranceSpec:
    """Parameters of the density-vs-tolerance search (experiment FIG7)."""

    map_size: float = 20.0
    densities: Sequence[float] = (0.75, 1.5, 3.0)
    candidate_fractions: Sequence[float] = (0.0, 0.025, 0.05, 0.10, 0.15, 0.25)
    radius: float = 4.0
    message_length: int = 4
    threshold: float = 0.9
    protocols: Sequence[tuple[str, str, int]] = field(
        default_factory=lambda: [
            ("NeighborWatchRB", "neighborwatch", 0),
            ("NeighborWatchRB-2vote", "neighborwatch2", 0),
        ]
    )
    repetitions: int = 2
    base_seed: int = 400

    @classmethod
    def paper(cls) -> "DensityToleranceSpec":
        return cls(
            densities=(0.75, 1.5, 3.0, 5.0, 9.0),
            candidate_fractions=(0.0, 0.025, 0.05, 0.075, 0.10, 0.15, 0.20, 0.25, 0.30),
            protocols=[
                ("NeighborWatchRB", "neighborwatch", 0),
                ("NeighborWatchRB-2vote", "neighborwatch2", 0),
                ("MultiPathRB(t=3)", "multipath", 3),
            ],
            repetitions=6,
        )

    @classmethod
    def small(cls) -> "DensityToleranceSpec":
        return cls(
            map_size=9.0,
            densities=(1.2, 2.5),
            candidate_fractions=(0.0, 0.05, 0.15),
            radius=3.0,
            message_length=2,
            protocols=[("NeighborWatchRB", "neighborwatch", 0)],
            repetitions=1,
        )


def run_density_tolerance(
    spec: DensityToleranceSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> list[dict]:
    """For each (protocol, density), search the largest tolerated lying fraction."""
    return _run("FIG7", spec, executor, store)


# -- CLUST --------------------------------------------------------------------------------
@dataclass(slots=True)
class ClusteredSpec:
    """Parameters of the clustered-deployment comparison (experiment CLUST)."""

    map_size: float = 30.0
    num_nodes: int = 1200
    num_clusters: int = 10
    radius: float = 4.0
    message_length: int = 4
    protocol: str = "neighborwatch"
    lying_fractions: Sequence[float] = (0.0, 0.05)
    repetitions: int = 3
    base_seed: int = 500

    @classmethod
    def paper(cls) -> "ClusteredSpec":
        return cls(lying_fractions=(0.0, 0.05, 0.10), repetitions=6)

    @classmethod
    def small(cls) -> "ClusteredSpec":
        return cls(
            map_size=12.0,
            num_nodes=200,
            num_clusters=5,
            radius=3.0,
            message_length=2,
            lying_fractions=(0.0, 0.05),
            repetitions=2,
        )


def run_clustered(
    spec: ClusteredSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> list[dict]:
    """Compare uniform vs clustered deployments; one row per (kind, fraction)."""
    return _run("CLUST", spec, executor, store)


# -- MAPSZ --------------------------------------------------------------------------------
@dataclass(slots=True)
class MapSizeSpec:
    """Parameters of the map-size sweep (experiment MAPSZ)."""

    map_sizes: Sequence[float] = (10.0, 15.0, 20.0)
    density: float = 1.25
    radius: float = 3.0
    message_length: int = 5
    protocol: str = "neighborwatch"
    repetitions: int = 3
    base_seed: int = 600

    @classmethod
    def paper(cls) -> "MapSizeSpec":
        return cls(map_sizes=(30.0, 40.0, 50.0), repetitions=6)

    @classmethod
    def small(cls) -> "MapSizeSpec":
        return cls(map_sizes=(8.0, 12.0), density=1.5, message_length=2, repetitions=2)


def run_map_size(
    spec: MapSizeSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> list[dict]:
    """Run the sweep; one row per map size, with diameter-normalised columns."""
    return _run("MAPSZ", spec, executor, store)


# -- EPID ---------------------------------------------------------------------------------
@dataclass(slots=True)
class EpidemicComparisonSpec:
    """Parameters of the epidemic-vs-authenticated comparison (experiment EPID)."""

    map_sizes: Sequence[float] = (15.0,)
    density: float = 1.25
    radius: float = 3.0
    message_length: int = 5
    include_multipath: bool = False
    multipath_tolerance: int = 1
    repetitions: int = 3
    base_seed: int = 700

    @classmethod
    def paper(cls) -> "EpidemicComparisonSpec":
        return cls(map_sizes=(30.0, 40.0, 50.0), repetitions=6, include_multipath=True)

    @classmethod
    def small(cls) -> "EpidemicComparisonSpec":
        return cls(map_sizes=(10.0,), density=1.5, message_length=3, repetitions=2)

    @classmethod
    def small_with_multipath(cls) -> "EpidemicComparisonSpec":
        return cls(
            map_sizes=(8.0,),
            density=1.5,
            message_length=2,
            repetitions=1,
            include_multipath=True,
            multipath_tolerance=1,
        )


def run_epidemic_comparison(
    spec: EpidemicComparisonSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> list[dict]:
    """One row per (map size, protocol), with the slowdown over the epidemic baseline."""
    return _run("EPID", spec, executor, store)


# -- DUAL ---------------------------------------------------------------------------------
@dataclass(slots=True)
class DualModeSpec:
    """Parameters of the dual-mode (payload flood + secured digest) experiment."""

    map_size: float = 12.0
    density: float = 1.5
    radius: float = 3.0
    payload_bits: int = 20
    digest_ratio: float = 0.1
    seed: int = 800

    @classmethod
    def paper(cls) -> "DualModeSpec":
        return cls(map_size=30.0, density=1.25, payload_bits=50, digest_ratio=0.1)

    @classmethod
    def small(cls) -> "DualModeSpec":
        return cls(map_size=9.0, density=1.5, payload_bits=10, digest_ratio=0.2)


def run_dual_mode(
    spec: DualModeSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> dict:
    """Run the dual-mode experiment; returns a single summary row."""
    return _run("DUAL", spec, executor, store)[0]
