"""Experiments EPID and DUAL — comparison with epidemic flooding and the
dual-mode protocol (Sections 1 and 6.2).

The paper compares NeighborWatchRB against a simple epidemic protocol on maps
of 30x30 to 50x50 with density 1.25, R = 3 and 5-bit messages: the epidemic
baseline is the fastest (and completely unprotected), NeighborWatchRB takes on
average about 7.7x longer, and MultiPathRB is orders of magnitude slower.  The
dual-mode construction — flood the payload, secure only a short digest —
brings the overhead of Byzantine tolerance down to (conjecturally) below 2x
when the digest is about a tenth of the payload.

Air-time accounting
-------------------
The simulator counts slotted *rounds*, but a round of the epidemic baseline
carries an entire k-bit payload frame whereas a round of the authenticated
protocols carries at most one bit (plus silence).  Comparing raw round counts
would therefore overstate the epidemic's advantage by roughly a factor of k.
Both comparisons below report, next to the raw rounds, an *air-time* figure in
bit-times — rounds weighted by the number of payload bits a frame of that
protocol occupies on the air — and the slowdown factors are computed on
air-time, which is the quantity comparable to the paper's wall-clock ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.digest import polynomial_digest, recommended_digest_length
from ..core.dualmode import DualModeResult, combine_dual_mode
from ..analysis.metrics import slowdown_factor
from ..sim.config import ProtocolName, ScenarioConfig
from ..sim.results import RunResult
from ..sim.runner import SweepExecutor, SweepTask
from ..topology.deployment import Deployment, uniform_deployment
from .base import run_points
from .factories import FixedDeploymentFactory, UniformDeploymentFactory

__all__ = [
    "EpidemicComparisonSpec",
    "run_epidemic_comparison",
    "DualModeSpec",
    "run_dual_mode",
    "airtime_bits",
]


def airtime_bits(protocol: ProtocolName | str, rounds: float, message_length: int) -> float:
    """Air-time (in bit-times) of a run of ``rounds`` slotted rounds.

    Epidemic rounds carry whole ``message_length``-bit payload frames; rounds
    of the bit-by-bit authenticated protocols carry at most one bit.
    """
    if ProtocolName.parse(protocol) is ProtocolName.EPIDEMIC:
        return rounds * max(1, message_length)
    return rounds


@dataclass(slots=True)
class EpidemicComparisonSpec:
    """Parameters of the epidemic-vs-authenticated comparison."""

    map_sizes: Sequence[float] = (15.0,)
    density: float = 1.25
    radius: float = 3.0
    message_length: int = 5
    include_multipath: bool = False
    multipath_tolerance: int = 1
    repetitions: int = 3
    base_seed: int = 700

    @classmethod
    def paper(cls) -> "EpidemicComparisonSpec":
        return cls(map_sizes=(30.0, 40.0, 50.0), repetitions=6, include_multipath=True)

    @classmethod
    def small(cls) -> "EpidemicComparisonSpec":
        return cls(map_sizes=(10.0,), density=1.5, message_length=3, repetitions=2)

    @classmethod
    def small_with_multipath(cls) -> "EpidemicComparisonSpec":
        return cls(
            map_sizes=(8.0,),
            density=1.5,
            message_length=2,
            repetitions=1,
            include_multipath=True,
            multipath_tolerance=1,
        )


def run_epidemic_comparison(
    spec: EpidemicComparisonSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> list[dict]:
    """One row per (map size, protocol), with the slowdown over the epidemic baseline."""
    protocols: list[tuple[str, str, int]] = [
        ("epidemic", "epidemic", 0),
        ("NeighborWatchRB", "neighborwatch", 0),
    ]
    if spec.include_multipath:
        protocols.append((f"MultiPathRB(t={spec.multipath_tolerance})", "multipath", spec.multipath_tolerance))

    tasks = [
        SweepTask(
            label=f"{label}@map={size:.0f}",
            deployment_factory=UniformDeploymentFactory(
                max(10, int(round(spec.density * size * size))), size, size
            ),
            config=ScenarioConfig(
                protocol=ProtocolName.parse(protocol),
                radius=spec.radius,
                message_length=spec.message_length,
                multipath_tolerance=tolerance,
            ),
            repetitions=spec.repetitions,
            base_seed=spec.base_seed,
            extra={"map_size": size, "protocol": label, "protocol_id": protocol},
        )
        for size in spec.map_sizes
        for label, protocol, tolerance in protocols
    ]
    points = run_points(tasks, executor=executor, store=store)

    rows: list[dict] = []
    baselines: dict[float, tuple[float, float]] = {}
    for task, point in zip(tasks, points):
        size = task.extra["map_size"]
        airtime = airtime_bits(task.extra["protocol_id"], point.rounds, spec.message_length)
        if task.extra["protocol"] == "epidemic":
            baselines[size] = (airtime, point.rounds)
        baseline_airtime, baseline_rounds = baselines.get(size, (None, None))
        slowdown = airtime / baseline_airtime if baseline_airtime else float("nan")
        raw_slowdown = point.rounds / baseline_rounds if baseline_rounds else float("nan")
        rows.append(
            point.row(
                map_size=size,
                protocol=task.extra["protocol"],
                num_nodes=task.deployment_factory.num_nodes,
                airtime_bits=airtime,
                slowdown=slowdown,
                raw_round_slowdown=raw_slowdown,
            )
        )
    return rows


@dataclass(slots=True)
class DualModeSpec:
    """Parameters of the dual-mode (payload flood + secured digest) experiment."""

    map_size: float = 12.0
    density: float = 1.5
    radius: float = 3.0
    payload_bits: int = 20
    digest_ratio: float = 0.1
    seed: int = 800

    @classmethod
    def paper(cls) -> "DualModeSpec":
        return cls(map_size=30.0, density=1.25, payload_bits=50, digest_ratio=0.1)

    @classmethod
    def small(cls) -> "DualModeSpec":
        return cls(map_size=9.0, density=1.5, payload_bits=10, digest_ratio=0.2)


def run_dual_mode(
    spec: DualModeSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> dict:
    """Run the dual-mode experiment; returns a single summary row.

    Three runs are combined: (a) the epidemic flood of the full payload,
    (b) the NeighborWatchRB broadcast of its digest, and (c) a plain epidemic
    flood of the payload as the no-security baseline (identical to (a) here,
    kept separate for clarity).  The reported overhead is
    ``(payload + digest rounds) / payload rounds``.  The payload and digest
    runs are independent, so a parallel executor overlaps them.
    """
    num_nodes = max(10, int(round(spec.density * spec.map_size * spec.map_size)))
    deployment: Deployment = uniform_deployment(num_nodes, spec.map_size, spec.map_size, rng=spec.seed)

    payload = tuple((i * 7 + 3) % 2 for i in range(spec.payload_bits))
    digest_bits = recommended_digest_length(spec.payload_bits, spec.digest_ratio)
    digest = polynomial_digest(payload, digest_bits)

    payload_config = ScenarioConfig(
        protocol="epidemic",
        radius=spec.radius,
        message_length=spec.payload_bits,
        message=payload,
        seed=spec.seed,
    )
    digest_config = ScenarioConfig(
        protocol="neighborwatch",
        radius=spec.radius,
        message_length=digest_bits,
        message=digest,
        seed=spec.seed + 1,
    )
    factory = FixedDeploymentFactory(deployment)
    tasks = [
        SweepTask(
            label="payload-flood",
            deployment_factory=factory,
            config=payload_config,
            repetitions=1,
            base_seed=spec.seed,
        ),
        SweepTask(
            label="digest-broadcast",
            deployment_factory=factory,
            config=digest_config,
            repetitions=1,
            base_seed=spec.seed + 1,
        ),
    ]
    payload_point, digest_point = run_points(tasks, executor=executor, store=store)
    payload_result: RunResult = payload_point.runs[0]
    digest_result: RunResult = digest_point.runs[0]
    combined: DualModeResult = combine_dual_mode(payload, payload_result, digest_result)

    payload_airtime = airtime_bits("epidemic", payload_result.completion_rounds, spec.payload_bits)
    digest_airtime = airtime_bits("neighborwatch", digest_result.completion_rounds, digest_bits)
    overhead = (payload_airtime + digest_airtime) / max(payload_airtime, 1.0)
    return {
        "num_nodes": num_nodes,
        "payload_bits": spec.payload_bits,
        "digest_bits": digest_bits,
        "payload_rounds": payload_result.completion_rounds,
        "digest_rounds": digest_result.completion_rounds,
        "total_rounds": combined.total_rounds,
        "payload_airtime_bits": payload_airtime,
        "digest_airtime_bits": digest_airtime,
        "overhead_factor": overhead,
        "acceptance_%": 100.0 * combined.acceptance_fraction,
        "correct_%": 100.0 * combined.correctness_fraction,
    }
