"""Picklable deployment and fault factories for the sweep runner.

The parallel :class:`~repro.sim.runner.SweepExecutor` ships every sweep task
to worker processes, so the callables a task carries must survive pickling.
Closures — which the experiment modules historically used — do not.  These
small frozen dataclasses capture the same parameters explicitly and are the
canonical factories the experiments build their tasks from.

Each fault factory keeps the experiment's historical ``seed_offset`` (the
constant added to the repetition seed before drawing fault placements), so a
refactored experiment reproduces the exact same runs as its closure-based
predecessor, seed for seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..adversary.crash import crashes_for_target_density
from ..adversary.placement import random_fault_selection
from ..registry import register_deployment, register_fault_plan
from ..sim.config import FaultPlan
from ..topology.deployment import Deployment, clustered_deployment, uniform_deployment

__all__ = [
    "UniformDeploymentFactory",
    "ClusteredDeploymentFactory",
    "FixedDeploymentFactory",
    "TargetDensityCrashFactory",
    "BudgetedJammerFactory",
    "RandomLiarFactory",
]


# -- deployment factories ---------------------------------------------------------------
@register_deployment("uniform")
@dataclass(frozen=True, slots=True)
class UniformDeploymentFactory:
    """Uniformly random deployment of ``num_nodes`` on a ``width x height`` map."""

    num_nodes: int
    width: float
    height: float

    def __call__(self, seed: int) -> Deployment:
        return uniform_deployment(self.num_nodes, self.width, self.height, rng=seed)


@register_deployment("clustered")
@dataclass(frozen=True, slots=True)
class ClusteredDeploymentFactory:
    """Clustered deployment (random cluster centers, normal spread)."""

    num_nodes: int
    width: float
    height: float
    num_clusters: int

    def __call__(self, seed: int) -> Deployment:
        return clustered_deployment(
            self.num_nodes, self.width, self.height, num_clusters=self.num_clusters, rng=seed
        )


@register_deployment("fixed")
@dataclass(frozen=True, slots=True)
class FixedDeploymentFactory:
    """Always returns the same pre-built deployment (seed is ignored)."""

    deployment: Deployment

    def __call__(self, seed: int) -> Deployment:
        return self.deployment


# -- fault factories --------------------------------------------------------------------
@register_fault_plan("target_density_crash")
@dataclass(frozen=True, slots=True)
class TargetDensityCrashFactory:
    """Crash devices until the *active* density reaches ``density``."""

    density: float
    seed_offset: int = 7

    def __call__(self, deployment: Deployment, seed: int) -> FaultPlan:
        crashed = crashes_for_target_density(deployment, self.density, rng=seed + self.seed_offset)
        return FaultPlan(crashed=tuple(crashed))


@register_fault_plan("budgeted_jammer")
@dataclass(frozen=True, slots=True)
class BudgetedJammerFactory:
    """``count`` randomly placed jammers with a per-device broadcast budget."""

    count: int
    budget: int
    jam_probability: float
    seed_offset: int = 13

    def __call__(self, deployment: Deployment, seed: int) -> FaultPlan:
        jammers = random_fault_selection(
            deployment.num_nodes,
            self.count,
            exclude=[deployment.source_index],
            rng=seed + self.seed_offset,
        )
        return FaultPlan(
            jammers=tuple(jammers),
            jammer_budget=int(self.budget),
            jam_probability=self.jam_probability,
        )


@register_fault_plan("random_liar")
@dataclass(frozen=True, slots=True)
class RandomLiarFactory:
    """``count`` randomly placed lying devices (no faults when ``count`` is 0)."""

    count: int
    seed_offset: int = 31

    def __call__(self, deployment: Deployment, seed: int) -> FaultPlan:
        if self.count == 0:
            return FaultPlan()
        liars = random_fault_selection(
            deployment.num_nodes,
            self.count,
            exclude=[deployment.source_index],
            rng=seed + self.seed_offset,
        )
        return FaultPlan(liars=tuple(liars))
