"""Experiment FIG6 — tolerating lying devices (Figure 6 of the paper).

600 devices on a 20x20 map (density ~1.5, R = 4); a varying fraction of them
is initialised with a fake message and otherwise runs the correct protocol.
The figure reports the percentage of *delivered* messages that are correct as
a function of the fraction of malicious devices, for NeighborWatchRB, its
2-voting variant, and MultiPathRB with t = 3 and t = 5.  Expected shape:

* MultiPathRB(t) is safe up to roughly ``t / E[|N|]`` lying devices (~2.5% for
  t = 3, ~5% for t = 5 at the paper's density) and degrades beyond;
* NeighborWatchRB tolerates more lying devices than its worst-case analysis
  suggests, the 2-voting variant more still;
* past the threshold there is a steep drop-off (the snowball effect).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..adversary.placement import fraction_to_count
from ..sim.config import ProtocolName, ScenarioConfig
from ..sim.runner import SweepExecutor, SweepTask
from .base import run_points
from .factories import ClusteredDeploymentFactory, RandomLiarFactory, UniformDeploymentFactory

__all__ = ["LyingSpec", "run_lying"]


@dataclass(slots=True)
class LyingSpec:
    """Parameters of the lying sweep."""

    map_size: float = 20.0
    num_nodes: int = 600
    radius: float = 4.0
    message_length: int = 4
    fractions: Sequence[float] = (0.0, 0.025, 0.05, 0.10, 0.15)
    protocols: Sequence[tuple[str, str, int]] = field(
        default_factory=lambda: [
            ("NeighborWatchRB", "neighborwatch", 0),
            ("NeighborWatchRB-2vote", "neighborwatch2", 0),
            ("MultiPathRB(t=3)", "multipath", 3),
            ("MultiPathRB(t=5)", "multipath", 5),
        ]
    )
    clustered: bool = False
    repetitions: int = 3
    base_seed: int = 300

    @classmethod
    def paper(cls) -> "LyingSpec":
        return cls(fractions=(0.0, 0.01, 0.025, 0.05, 0.075, 0.10, 0.15, 0.20), repetitions=6)

    @classmethod
    def small(cls) -> "LyingSpec":
        return cls(
            map_size=10.0,
            num_nodes=150,
            radius=3.0,
            message_length=2,
            fractions=(0.0, 0.05, 0.20),
            protocols=[
                ("NeighborWatchRB", "neighborwatch", 0),
                ("NeighborWatchRB-2vote", "neighborwatch2", 0),
            ],
            repetitions=2,
        )

    @classmethod
    def small_multipath(cls) -> "LyingSpec":
        """A tiny MultiPathRB-only variant (MultiPathRB is far slower to simulate)."""
        return cls(
            map_size=8.0,
            num_nodes=110,
            radius=3.0,
            message_length=2,
            fractions=(0.0, 0.03, 0.20),
            protocols=[("MultiPathRB(t=2)", "multipath", 2)],
            repetitions=2,
        )


def run_lying(
    spec: LyingSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> list[dict]:
    """Run the FIG6 sweep and return one row per (protocol, fraction) point."""
    if spec.clustered:
        deployment_factory = ClusteredDeploymentFactory(
            spec.num_nodes, spec.map_size, spec.map_size, num_clusters=8
        )
    else:
        deployment_factory = UniformDeploymentFactory(spec.num_nodes, spec.map_size, spec.map_size)

    tasks = [
        SweepTask(
            label=f"{label}@{fraction:.1%}",
            deployment_factory=deployment_factory,
            config=ScenarioConfig(
                protocol=ProtocolName.parse(protocol),
                radius=spec.radius,
                message_length=spec.message_length,
                multipath_tolerance=tolerance,
            ),
            fault_factory=RandomLiarFactory(fraction_to_count(spec.num_nodes, fraction)),
            repetitions=spec.repetitions,
            base_seed=spec.base_seed,
            extra={"protocol": label, "byzantine_fraction": fraction},
        )
        for label, protocol, tolerance in spec.protocols
        for fraction in spec.fractions
    ]
    points = run_points(tasks, executor=executor, store=store)
    return [point.row(**task.extra) for task, point in zip(tasks, points)]
