"""Row builders and figure-level metric helpers for the experiment drivers.

A *row builder* turns one sweep's aggregated points into the flat table rows
an experiment reports.  Builders are registered in
``repro.registry.METRICS`` and referenced by key from an
:class:`~repro.experiments.spec.ExperimentSpec`'s ``rows`` field, so derived
columns are part of the declarative surface: a spec opts into connectivity
reporting, diameter normalization or baseline slowdowns by naming the
builder, and new derived-column sets are added by registering a function —
not by writing a new experiment module.

Every builder has the signature ``builder(ctx, tasks, points) -> list[dict]``
where ``ctx`` is the resolved parameter context, and ``tasks``/``points`` are
the parallel lists of :class:`~repro.sim.runner.SweepTask` and
:class:`~repro.experiments.base.PointResult`.

The free functions (:func:`airtime_bits`, :func:`fit_linear_trend`,
:func:`linear_scaling_error`) are the figure-level helpers the benchmark
harness and the examples import; they lived in the per-experiment modules
before PR 5.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..registry import PROTOCOLS, register_metric
from ..topology.connectivity import connectivity_report

__all__ = [
    "airtime_bits",
    "fit_linear_trend",
    "linear_scaling_error",
]


def airtime_bits(protocol: str, rounds: float, message_length: int) -> float:
    """Air-time (in bit-times) of a run of ``rounds`` slotted rounds.

    Epidemic rounds carry whole ``message_length``-bit payload frames; rounds
    of the bit-by-bit authenticated protocols carry at most one bit.  The
    per-protocol weight is the registered plugin's ``airtime_multiplier``.
    """
    return rounds * PROTOCOLS.get(protocol).airtime_multiplier(message_length)


def fit_linear_trend(
    rows: Sequence[dict], x_key: str = "budget", y_key: str = "rounds"
) -> tuple[float, float, float]:
    """Least-squares fit ``y = a*x + b``; returns ``(a, b, r_squared)``.

    Used to verify the paper's observation that delay grows linearly with the
    jamming budget.
    """
    xs = np.asarray([float(r[x_key]) for r in rows])
    ys = np.asarray([float(r[y_key]) for r in rows])
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a line")
    a, b = np.polyfit(xs, ys, 1)
    predicted = a * xs + b
    ss_res = float(np.sum((ys - predicted) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(a), float(b), r_squared


def linear_scaling_error(
    rows: Sequence[dict], x_key: str = "diameter_hops", y_key: str = "rounds"
) -> float:
    """Relative RMS error of the best linear (through-origin-free) fit.

    Small values mean the measured series is consistent with linear scaling in
    the diameter, which is what Theorem 5 and the paper's map-size experiment
    claim.
    """
    xs = np.asarray([float(r[x_key]) for r in rows])
    ys = np.asarray([float(r[y_key]) for r in rows])
    if len(xs) < 2:
        return 0.0
    coeffs = np.polyfit(xs, ys, 1)
    predicted = np.polyval(coeffs, xs)
    rms = float(np.sqrt(np.mean((ys - predicted) ** 2)))
    scale = float(np.mean(np.abs(ys))) or 1.0
    return rms / scale


# -- registered row builders --------------------------------------------------------------
@register_metric("default")
def default_rows(ctx, tasks, points) -> list[dict]:
    """One row per point: the standard aggregate columns plus the task's extras."""
    return [point.row(**task.extra) for task, point in zip(tasks, points)]


@register_metric("clustered_connectivity")
def clustered_connectivity_rows(ctx, tasks, points) -> list[dict]:
    """Standard rows plus source-component connectivity of a sample deployment.

    The paper attributes sub-100% completion of clustered deployments to
    clusters disconnected from the source, so the table reports the reachable
    fraction alongside.
    """
    rows: list[dict] = []
    for task, point in zip(tasks, points):
        sample = task.deployment_factory(task.base_seed)
        report = connectivity_report(
            sample.positions, ctx["radius"], sample.source_index, norm="l2"
        )
        rows.append(
            point.row(
                **task.extra,
                reachable_from_source_pct=100.0 * report.reachable_from_source,
            )
        )
    return rows


@register_metric("map_size_scaling")
def map_size_scaling_rows(ctx, tasks, points) -> list[dict]:
    """Diameter-normalised columns for the Theorem 5 map-size sweep."""
    rows: list[dict] = []
    for task, point in zip(tasks, points):
        num_nodes = task.deployment_factory.num_nodes
        sample = task.deployment_factory(task.base_seed)
        report = connectivity_report(sample.positions, ctx["radius"], sample.source_index)
        diameter = max(report.diameter_hops_from_source, 1)
        rows.append(
            point.row(
                map_size=task.extra["map_size"],
                num_nodes=num_nodes,
                diameter_hops=diameter,
                rounds_per_hop=point.rounds / diameter,
                broadcasts_per_node=point.honest_broadcasts / num_nodes,
            )
        )
    return rows


@register_metric("epidemic_slowdown")
def epidemic_slowdown_rows(ctx, tasks, points) -> list[dict]:
    """Air-time slowdown of each protocol over the epidemic baseline per map size.

    Raw round counts would overstate the epidemic's advantage by ~the message
    length (its rounds carry whole payload frames), so the slowdown factors
    are computed on air-time; the raw-round ratio is reported alongside.
    """
    message_length = ctx["message_length"]
    rows: list[dict] = []
    baselines: dict[float, tuple[float, float]] = {}
    for task, point in zip(tasks, points):
        size = task.extra["map_size"]
        airtime = airtime_bits(task.extra["protocol_id"], point.rounds, message_length)
        if task.extra["protocol"] == "epidemic":
            baselines[size] = (airtime, point.rounds)
        baseline_airtime, baseline_rounds = baselines.get(size, (None, None))
        slowdown = airtime / baseline_airtime if baseline_airtime else float("nan")
        raw_slowdown = point.rounds / baseline_rounds if baseline_rounds else float("nan")
        rows.append(
            point.row(
                map_size=size,
                protocol=task.extra["protocol"],
                num_nodes=task.deployment_factory.num_nodes,
                airtime_bits=airtime,
                slowdown=slowdown,
                raw_round_slowdown=raw_slowdown,
            )
        )
    return rows
