"""Common machinery for the paper-reproduction experiments.

Every experiment module follows the same pattern:

* a *spec* dataclass with two constructors — ``paper()`` (parameters matching
  the paper's evaluation as closely as is practical in pure Python) and
  ``small()`` (a scaled-down configuration with the same qualitative shape,
  used by the test suite and the benchmark harness);
* a ``run_*`` function that sweeps the experiment's independent variable,
  repeats each point over several seeds, aggregates the metrics and returns a
  list of row dictionaries (one per sweep point);
* the rows render to text via :func:`repro.analysis.tables.format_table` and
  are recorded in EXPERIMENTS.md.

This module provides the shared sweep-point runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from ..analysis.stats import Aggregate, summarize_runs
from ..sim.builder import run_scenario
from ..sim.config import FaultPlan, ScenarioConfig
from ..sim.results import RunResult
from ..topology.deployment import Deployment

__all__ = ["PointResult", "run_point"]

#: A deployment factory receives the repetition seed and returns a deployment.
DeploymentFactory = Callable[[int], Deployment]
#: A fault factory receives the deployment and the repetition seed.
FaultFactory = Callable[[Deployment, int], FaultPlan]


@dataclass(slots=True)
class PointResult:
    """Aggregated outcome of one sweep point (one x-value of a figure)."""

    label: str
    repetitions: int
    aggregates: Mapping[str, Aggregate]
    runs: list[RunResult]

    @property
    def rounds(self) -> float:
        return self.aggregates["rounds"].mean

    @property
    def completion_fraction(self) -> float:
        return self.aggregates["completion_fraction"].mean

    @property
    def correctness_fraction(self) -> float:
        return self.aggregates["correctness_fraction"].mean

    @property
    def correct_delivery_fraction(self) -> float:
        return self.aggregates["correct_delivery_fraction"].mean

    @property
    def honest_broadcasts(self) -> float:
        return self.aggregates["honest_broadcasts"].mean

    @property
    def adversary_broadcasts(self) -> float:
        return self.aggregates["adversary_broadcasts"].mean

    def row(self, **extra) -> dict:
        """A flat row dictionary for table rendering."""
        row = {
            "label": self.label,
            "rounds": self.rounds,
            "completion_%": 100.0 * self.completion_fraction,
            "correct_%": 100.0 * self.correctness_fraction,
            "correct_delivery_%": 100.0 * self.correct_delivery_fraction,
            "honest_broadcasts": self.honest_broadcasts,
            "adversary_broadcasts": self.adversary_broadcasts,
            "repetitions": self.repetitions,
        }
        row.update(extra)
        return row


def run_point(
    label: str,
    deployment_factory: DeploymentFactory,
    config: ScenarioConfig,
    *,
    fault_factory: Optional[FaultFactory] = None,
    repetitions: int = 3,
    base_seed: int = 0,
    max_rounds: Optional[int] = None,
) -> PointResult:
    """Run one sweep point: ``repetitions`` independent simulations, aggregated.

    Each repetition re-derives the deployment, the fault placement and the
    scenario seed from ``base_seed + i`` so the whole experiment is
    reproducible from its spec alone.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    runs: list[RunResult] = []
    for rep in range(repetitions):
        seed = base_seed + rep
        deployment = deployment_factory(seed)
        faults = fault_factory(deployment, seed) if fault_factory is not None else FaultPlan()
        scenario = ScenarioConfig(
            protocol=config.protocol,
            radius=config.radius,
            message_length=config.message_length,
            message=config.message,
            norm=config.norm,
            channel=config.channel,
            capture_probability=config.capture_probability,
            loss_probability=config.loss_probability,
            square_side=config.square_side,
            multipath_tolerance=config.multipath_tolerance,
            schedule_separation=config.schedule_separation,
            epidemic_separation=config.epidemic_separation,
            idle_veto=config.idle_veto,
            max_rounds=config.max_rounds,
            seed=seed,
        )
        runs.append(run_scenario(deployment, scenario, faults, max_rounds=max_rounds))
    aggregates = summarize_runs(runs)
    return PointResult(label=label, repetitions=repetitions, aggregates=aggregates, runs=runs)
