"""Common machinery for the paper-reproduction experiments.

Every experiment module follows the same pattern:

* a *spec* dataclass with two constructors — ``paper()`` (parameters matching
  the paper's evaluation as closely as is practical in pure Python) and
  ``small()`` (a scaled-down configuration with the same qualitative shape,
  used by the test suite and the benchmark harness);
* a ``run_*`` function that builds one :class:`~repro.sim.runner.SweepTask`
  per sweep point (one x-value of a figure), executes them — serially or in
  parallel — through a :class:`~repro.sim.runner.SweepExecutor`, aggregates
  the metrics and returns a list of row dictionaries;
* the rows render to text via :func:`repro.analysis.tables.format_table` and
  are recorded in EXPERIMENTS.md.

This module provides the shared sweep-point runners.  :func:`run_point` runs
a single point; :func:`run_points` runs a whole batch at once, which is what
lets an executor with ``workers > 1`` overlap repetitions *across* sweep
points, not just within one.  Because every repetition derives all of its
randomness from ``base_seed + i``, the results are bit-identical regardless
of the worker count (see :mod:`repro.sim.runner`).

Factories handed to these helpers must be picklable when a parallel executor
is used — use the dataclass factories in :mod:`repro.experiments.factories`
rather than closures.

Passing a :class:`~repro.store.ResultStore` (the ``store`` argument accepted
here and by every experiment's ``run_*`` function) routes the sweep through a
:class:`~repro.store.CachingSweepExecutor`: repetitions already on disk are
not re-simulated, misses are persisted as they complete, and the resulting
rows are byte-identical to an uncached run.

The same bit-identity extends to fault recovery: the executor dispatches
every repetition under the supervision envelope of
:mod:`repro.sim.supervision` (timeout, bounded retry, quarantine), so a sweep
that survives worker crashes or injected chaos faults produces exactly the
rows a fault-free run would.  Jobs that exhaust their retries surface
together as a :class:`~repro.sim.supervision.SweepFailure` *after* every
other point completed — callers that want partial figures can catch it and
keep the rows computed so far via a cache dir.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from ..analysis.stats import Aggregate, summarize_runs
from ..sim.results import RECORD_VERSION, RunResult
from ..sim.runner import DeploymentFactory, FaultFactory, SweepExecutor, SweepTask

__all__ = ["PointResult", "run_point", "run_points", "resolve_executor"]


@dataclass(slots=True)
class PointResult:
    """Aggregated outcome of one sweep point (one x-value of a figure)."""

    label: str
    repetitions: int
    aggregates: Mapping[str, Aggregate]
    runs: list[RunResult]

    @property
    def rounds(self) -> float:
        return self.aggregates["rounds"].mean

    @property
    def completion_fraction(self) -> float:
        return self.aggregates["completion_fraction"].mean

    @property
    def correctness_fraction(self) -> float:
        return self.aggregates["correctness_fraction"].mean

    @property
    def correct_delivery_fraction(self) -> float:
        return self.aggregates["correct_delivery_fraction"].mean

    @property
    def honest_broadcasts(self) -> float:
        return self.aggregates["honest_broadcasts"].mean

    @property
    def adversary_broadcasts(self) -> float:
        return self.aggregates["adversary_broadcasts"].mean

    def row(self, **extra) -> dict:
        """A flat row dictionary for table rendering."""
        row = {
            "label": self.label,
            "rounds": self.rounds,
            "completion_%": 100.0 * self.completion_fraction,
            "correct_%": 100.0 * self.correctness_fraction,
            "correct_delivery_%": 100.0 * self.correct_delivery_fraction,
            "honest_broadcasts": self.honest_broadcasts,
            "adversary_broadcasts": self.adversary_broadcasts,
            "repetitions": self.repetitions,
        }
        row.update(extra)
        return row

    # -- serialization ----------------------------------------------------------------
    def to_record(self, *, aggregate_only: bool = False) -> dict:
        """A JSON-compatible dictionary; lossless unless ``aggregate_only``.

        The lossless form embeds every repetition's full
        :meth:`~repro.sim.results.RunResult.to_record`, so a whole figure's
        points — and everything derivable from them — round-trip through
        :meth:`from_record`.  ``aggregate_only`` keeps just the per-metric
        aggregates (compact, but not reconstructible).
        """
        return {
            "version": RECORD_VERSION,
            "label": self.label,
            "repetitions": self.repetitions,
            "aggregates": {metric: agg.as_dict() for metric, agg in self.aggregates.items()},
            "runs": [run.to_record(aggregate_only=aggregate_only) for run in self.runs],
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "PointResult":
        """Rebuild a point from a lossless :meth:`to_record` dictionary."""
        version = record.get("version")
        if version != RECORD_VERSION:
            raise ValueError(
                f"cannot read PointResult record version {version!r} "
                f"(this build reads version {RECORD_VERSION})"
            )
        aggregates = {
            metric: Aggregate(
                mean=float(fields["mean"]),
                std=float(fields["std"]),
                count=int(fields["count"]),
                minimum=float(fields["min"]),
                maximum=float(fields["max"]),
                ci_low=float(fields["ci_low"]),
                ci_high=float(fields["ci_high"]),
            )
            for metric, fields in record["aggregates"].items()
        }
        return cls(
            label=str(record["label"]),
            repetitions=int(record["repetitions"]),
            aggregates=aggregates,
            runs=[RunResult.from_record(r) for r in record["runs"]],
        )


def _point_from_runs(task: SweepTask, runs: list[RunResult]) -> PointResult:
    return PointResult(
        label=task.label,
        repetitions=task.repetitions,
        aggregates=summarize_runs(runs),
        runs=runs,
    )


def resolve_executor(executor=None, store=None):
    """The executor a sweep should actually run through.

    ``None``/``None`` gives a serial :class:`SweepExecutor`; a ``store`` wraps
    whatever executor was chosen in a
    :class:`~repro.store.CachingSweepExecutor` (unless the executor is
    already one, in which case it is used as-is — its own store wins).
    """
    if executor is None:
        executor = SweepExecutor(0)
    if store is None:
        return executor
    from ..store import CachingSweepExecutor

    if isinstance(executor, CachingSweepExecutor):
        return executor
    return CachingSweepExecutor(store, executor)


def run_points(
    tasks: Sequence[SweepTask],
    *,
    executor: Optional[SweepExecutor] = None,
    store=None,
) -> list[PointResult]:
    """Run a batch of sweep points and aggregate each one.

    With a parallel ``executor`` every ``(point, repetition)`` pair of the
    batch is fanned out at once; results come back in task order either way.
    With a ``store`` (a :class:`~repro.store.ResultStore`) repetitions
    already cached are returned from disk and fresh ones are persisted.
    """
    tasks = list(tasks)
    runs_per_task = resolve_executor(executor, store).run(tasks)
    return [_point_from_runs(task, runs) for task, runs in zip(tasks, runs_per_task)]


def run_point(
    label: str,
    deployment_factory: DeploymentFactory,
    config,
    *,
    fault_factory: Optional[FaultFactory] = None,
    repetitions: int = 3,
    base_seed: int = 0,
    max_rounds: Optional[int] = None,
    executor: Optional[SweepExecutor] = None,
    store=None,
) -> PointResult:
    """Run one sweep point: ``repetitions`` independent simulations, aggregated.

    Each repetition re-derives the deployment, the fault placement and the
    scenario seed from ``base_seed + i`` so the whole experiment is
    reproducible from its spec alone.
    """
    task = SweepTask(
        label=label,
        deployment_factory=deployment_factory,
        config=config,
        fault_factory=fault_factory,
        repetitions=repetitions,
        base_seed=base_seed,
        max_rounds=max_rounds,
    )
    return run_points([task], executor=executor, store=store)[0]
