"""Generic drivers executing declarative :class:`ExperimentSpec`s.

A driver compiles a resolved spec into :class:`~repro.sim.runner.SweepTask`s
against the component registries and runs them through the existing fast
sweep machinery (:func:`repro.experiments.base.run_points`, and therefore the
parallel :class:`~repro.sim.runner.SweepExecutor` and the content-addressed
:class:`~repro.store.ResultStore`).  Three drivers cover every experiment of
the paper's evaluation:

``sweep``
    The workhorse: cartesian product of the spec's axes, one task per grid
    point, rows built by the registered row builder (``spec.rows``).
``tolerance_search``
    Figure 7's adaptive search: per grid point, find the largest candidate
    fault fraction whose metric stays above a threshold.  Evaluations are
    sequential (each depends on the previous outcome) but the repetitions
    within one evaluation still fan out over the executor.
``dual_mode``
    The payload-flood + secured-digest construction: two coupled runs whose
    results are combined by :func:`repro.core.dualmode.combine_dual_mode`.

Task-identity contract
----------------------
The drivers reproduce the hand-written experiment modules they replaced
*exactly*: same task construction order, same labels, same factory dataclass
instances and scenario fields, and therefore byte-identical
``SweepTask.fingerprint()`` values — every result cached by a pre-redesign
:class:`~repro.store.ResultStore` keeps replaying with zero dispatches.
``tests/test_spec_roundtrip.py`` pins this against a golden file captured
from the PR 4 tree.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Mapping, Optional, Sequence

from ..analysis.metrics import max_tolerated_fraction
from ..registry import DEPLOYMENTS, DRIVERS, FAULT_PLANS, METRICS, register_driver
from ..sim.config import ScenarioConfig
from ..sim.runner import SweepExecutor, SweepTask
from .base import run_points
from .spec import ExperimentSpec, SpecValidationError, render_template

__all__ = ["resolve_context", "run_spec", "describe_spec", "build_sweep_tasks"]


def resolve_context(
    spec: ExperimentSpec,
    *,
    scale: Optional[str] = None,
    overrides: Optional[Mapping[str, Any]] = None,
) -> dict:
    """The resolved parameter context: params → scale → overrides → derived."""
    context = dict(spec.params)
    if scale is not None:
        if scale not in spec.scales:
            known = ", ".join(spec.scales) or "(none declared)"
            raise SpecValidationError(
                [f"unknown scale {scale!r}; expected one of: {known}"], source=spec.name
            )
        context.update(spec.scales[scale])
    if overrides:
        context.update(overrides)
    for key, template in spec.derived.items():
        context[key] = render_template(template, context)
    return context


def iter_grid(spec: ExperimentSpec, context: Mapping[str, Any]) -> Iterator[dict]:
    """Per-point contexts of the axes' cartesian product, in axis order."""
    names = [axis["name"] for axis in spec.axes]
    values = [list(render_template(axis["values"], context)) for axis in spec.axes]
    for combo in itertools.product(*values):
        point_context = dict(context)
        point_context.update(zip(names, combo))
        for key, template in spec.point_derived.items():
            point_context[key] = render_template(template, point_context)
        yield point_context


def _build_component(registry, template: Any, context: Mapping[str, Any]):
    """Instantiate a registered component from a ``{"kind": ..., **fields}`` template."""
    resolved = render_template(template, context)
    if resolved is None:
        return None
    if not isinstance(resolved, Mapping) or "kind" not in resolved:
        raise SpecValidationError(
            [f"component template must resolve to a mapping with 'kind', got {resolved!r}"]
        )
    params = dict(resolved)
    kind = params.pop("kind")
    return registry.get(kind)(**params)


def _render_label(spec: ExperimentSpec, point_context: Mapping[str, Any]) -> str:
    try:
        return spec.label.format(**point_context)
    except (KeyError, IndexError, AttributeError, ValueError) as exc:
        raise SpecValidationError(
            [f"label template {spec.label!r} failed: {type(exc).__name__}: {exc}"],
            source=spec.name,
        ) from exc


def _build_task(spec: ExperimentSpec, point_context: Mapping[str, Any]) -> SweepTask:
    scenario_kwargs = render_template(spec.scenario, point_context)
    return SweepTask(
        label=_render_label(spec, point_context),
        deployment_factory=_build_component(DEPLOYMENTS, spec.deployment, point_context),
        config=ScenarioConfig(**scenario_kwargs),
        fault_factory=_build_component(FAULT_PLANS, spec.faults, point_context),
        repetitions=int(render_template(spec.repetitions, point_context)),
        base_seed=int(render_template(spec.base_seed, point_context)),
        max_rounds=render_template(spec.max_rounds, point_context),
        extra=dict(render_template(spec.extra, point_context)),
    )


def build_sweep_tasks(spec: ExperimentSpec, context: Mapping[str, Any]) -> list[SweepTask]:
    """Compile the spec's whole grid into sweep tasks (the ``sweep`` driver's plan)."""
    return [_build_task(spec, point_context) for point_context in iter_grid(spec, context)]


@register_driver("sweep")
class SweepDriver:
    """Grid sweep: one task per axes-product point, rows via the row builder."""

    def run(self, spec: ExperimentSpec, context: dict, *, executor=None, store=None) -> list[dict]:
        tasks = build_sweep_tasks(spec, context)
        points = run_points(tasks, executor=executor, store=store)
        return METRICS.get(spec.rows)(context, tasks, points)


@register_driver("tolerance_search")
class ToleranceSearchDriver:
    """Per grid point, search the largest tolerated candidate value (Fig. 7).

    Driver options (all templates over the resolved context):

    * ``candidate`` — the context name each candidate binds to (``"fraction"``);
    * ``candidates`` — the ascending candidate values to try;
    * ``threshold`` — minimum metric value to count as tolerated;
    * ``metric`` — the :class:`~repro.experiments.base.PointResult` attribute
      evaluated against the threshold.

    The search is adaptive (stops at the first failing candidate), so
    evaluations run sequentially; only the repetitions within one evaluation
    fan out over the executor.
    """

    def run(self, spec: ExperimentSpec, context: dict, *, executor=None, store=None) -> list[dict]:
        options = render_template(spec.options, context)
        if "candidates" not in options:
            raise SpecValidationError(
                ["the tolerance_search driver requires options.candidates "
                 "(plus optional candidate/threshold/metric)"],
                source=spec.name,
            )
        candidate_name = options.get("candidate", "fraction")
        candidates = options["candidates"]
        threshold = options.get("threshold", 0.9)
        metric = options.get("metric", "correct_delivery_fraction")

        rows: list[dict] = []
        for point_context in iter_grid(spec, context):
            evaluations: dict[float, float] = {}

            def evaluate(candidate: float, _point_context=point_context) -> float:
                candidate_context = dict(_point_context)
                candidate_context[candidate_name] = candidate
                task = _build_task(spec, candidate_context)
                point = run_points([task], executor=executor, store=store)[0]
                value = getattr(point, metric)
                evaluations[candidate] = value
                return value

            tolerated = max_tolerated_fraction(evaluate, candidates, threshold=threshold)
            row = dict(render_template(spec.extra, point_context))
            row["max_tolerated_%"] = 100.0 * tolerated
            row["evaluated_points"] = len(evaluations)
            rows.append(row)
        return rows


@register_driver("dual_mode")
class DualModeDriver:
    """Payload flood + secured digest (Sections 1 and 6.2), as one summary row.

    Context parameters: ``map_size``, ``density``, ``radius``,
    ``payload_bits``, ``digest_ratio``, ``seed``.  Three logical runs are
    combined: (a) the epidemic flood of the full payload, (b) the
    NeighborWatchRB broadcast of its digest, and (c) a plain epidemic flood
    as the no-security baseline (identical to (a) here, kept separate for
    clarity).  The reported overhead is ``(payload + digest air-time) /
    payload air-time``; payload and digest runs are independent, so a
    parallel executor overlaps them.
    """

    def run(self, spec: ExperimentSpec, context: dict, *, executor=None, store=None) -> list[dict]:
        from ..core.digest import polynomial_digest, recommended_digest_length
        from ..core.dualmode import combine_dual_mode
        from ..topology.deployment import uniform_deployment
        from .factories import FixedDeploymentFactory
        from .metrics import airtime_bits

        required = ("map_size", "density", "radius", "payload_bits", "digest_ratio", "seed")
        missing = [key for key in required if key not in context]
        if missing:
            raise SpecValidationError(
                [f"the dual_mode driver requires params: {', '.join(missing)}"],
                source=spec.name,
            )
        map_size = context["map_size"]
        seed = context["seed"]
        payload_bits = context["payload_bits"]
        num_nodes = max(10, int(round(context["density"] * map_size * map_size)))
        deployment = uniform_deployment(num_nodes, map_size, map_size, rng=seed)

        payload = tuple((i * 7 + 3) % 2 for i in range(payload_bits))
        digest_bits = recommended_digest_length(payload_bits, context["digest_ratio"])
        digest = polynomial_digest(payload, digest_bits)

        payload_config = ScenarioConfig(
            protocol="epidemic",
            radius=context["radius"],
            message_length=payload_bits,
            message=payload,
            seed=seed,
        )
        digest_config = ScenarioConfig(
            protocol="neighborwatch",
            radius=context["radius"],
            message_length=digest_bits,
            message=digest,
            seed=seed + 1,
        )
        factory = FixedDeploymentFactory(deployment)
        tasks = [
            SweepTask(
                label="payload-flood",
                deployment_factory=factory,
                config=payload_config,
                repetitions=1,
                base_seed=seed,
            ),
            SweepTask(
                label="digest-broadcast",
                deployment_factory=factory,
                config=digest_config,
                repetitions=1,
                base_seed=seed + 1,
            ),
        ]
        payload_point, digest_point = run_points(tasks, executor=executor, store=store)
        payload_result = payload_point.runs[0]
        digest_result = digest_point.runs[0]
        combined = combine_dual_mode(payload, payload_result, digest_result)

        payload_airtime = airtime_bits("epidemic", payload_result.completion_rounds, payload_bits)
        digest_airtime = airtime_bits(
            "neighborwatch", digest_result.completion_rounds, digest_bits
        )
        overhead = (payload_airtime + digest_airtime) / max(payload_airtime, 1.0)
        return [
            {
                "num_nodes": num_nodes,
                "payload_bits": payload_bits,
                "digest_bits": digest_bits,
                "payload_rounds": payload_result.completion_rounds,
                "digest_rounds": digest_result.completion_rounds,
                "total_rounds": combined.total_rounds,
                "payload_airtime_bits": payload_airtime,
                "digest_airtime_bits": digest_airtime,
                "overhead_factor": overhead,
                "acceptance_%": 100.0 * combined.acceptance_fraction,
                "correct_%": 100.0 * combined.correctness_fraction,
            }
        ]


def run_spec(
    spec: ExperimentSpec,
    *,
    scale: Optional[str] = None,
    overrides: Optional[Mapping[str, Any]] = None,
    executor: Optional[SweepExecutor] = None,
    store=None,
) -> list[dict]:
    """Resolve ``spec`` (scale + overrides) and execute it through its driver."""
    context = resolve_context(spec, scale=scale, overrides=overrides)
    driver = DRIVERS.get(spec.driver)
    return driver.run(spec, context, executor=executor, store=store)


def _format_bytes(num: int) -> str:
    value = float(num)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{int(num)} B"  # pragma: no cover - unreachable


def _memory_lines(context: Mapping[str, Any]) -> list[str]:
    """Dense link-state memory estimate lines for ``describe`` output.

    Shown whenever the resolved context pins a concrete node count: the node
    count, what the dense ``N x N`` link state of the configured channel would
    occupy, and — when that is large — a reminder that the sparse
    spatially-tiled tier avoids materializing it.
    """
    from ..sim.config import dense_link_state_bytes
    from ..sim.engine import SPATIAL_TILING_AUTO_NODES

    num_nodes = context.get("num_nodes")
    if not isinstance(num_nodes, int):
        # Density-driven specs resolve the deployed count under another name.
        num_nodes = context.get("num_deployed")
    if not isinstance(num_nodes, int) or num_nodes <= 0:
        return []
    channel = context.get("channel", "unitdisk")
    try:
        dense = dense_link_state_bytes(num_nodes, str(channel))
    except Exception:
        return []
    lines = [
        f"memory: {num_nodes} nodes — dense {channel} link state would be "
        f"{_format_bytes(dense)}"
    ]
    if num_nodes > SPATIAL_TILING_AUTO_NODES:
        lines.append(
            "  spatial tiling auto-enables at this size "
            f"(> {SPATIAL_TILING_AUTO_NODES} nodes); the sparse tier never "
            "materializes the dense matrix"
        )
    else:
        lines.append(
            "  (spatial tiling available via REPRO_SPATIAL_TILING=1; "
            f"auto-enables above {SPATIAL_TILING_AUTO_NODES} nodes)"
        )
    return lines


def _tier_lines(context: Mapping[str, Any]) -> list[str]:
    """Execution-tier eligibility lines for ``describe`` output.

    Asks the scenario's channel for its per-capability SoA verdict
    (:meth:`repro.sim.radio.Channel.soa_round_support`) — the same predicate
    the engine's gate aggregates at build time — and prints each
    capability's reason, so a reader sees exactly *which* predicate keeps a
    configuration off the fast tier (e.g. "capture: capture_probability=0.5
    draws are data-dependent ... → scalar").  Purely advisory — the engine
    re-evaluates eligibility at build time.
    """
    from ..sim.radio import FriisChannel, UnitDiskChannel

    channel = str(context.get("channel", "unitdisk"))
    loss = float(context.get("loss_probability", 0.0) or 0.0)
    capture = float(context.get("capture_probability", 0.0) or 0.0)
    radius = float(context.get("radius", 1.0) or 1.0)
    if channel == "unitdisk":
        probe = UnitDiskChannel(
            radius, capture_probability=capture, loss_probability=loss
        )
    elif channel == "friis":
        probe = FriisChannel(radius, loss_probability=loss)
    else:
        return [
            "execution tier: cohort runtime (struct-of-arrays kernels ineligible)",
            f"  - channel: {channel} defines no SoA busy model",
        ]
    support = probe.soa_round_support()
    if support.eligible:
        lines = [
            f"execution tier: struct-of-arrays slot kernels ({support.busy} busy "
            "model; REPRO_SOA_KERNELS=0 falls back to the cohort runtime)"
        ]
        lines.extend(
            f"  {name}: {reason}" for name, _ok, reason in support.verdicts
        )
    else:
        lines = ["execution tier: cohort runtime (struct-of-arrays kernels ineligible)"]
        lines.extend(f"  - {name}: {reason}" for name, reason in support.blockers())
    jammers = context.get("num_jammers") or context.get("jammer_fraction")
    if jammers and support.eligible:
        lines.append(
            "  jammed neighborhoods fall back per-slot to the scalar loop; "
            "unjammed slots stay compiled"
        )
    return lines


def _fabric_lines() -> list[str]:
    """Available executor/store backends for ``describe`` output.

    Listed straight from the registries, so plugins registered by downstream
    code (or the queue backend of the service fabric) show up without edits
    here — the same keys ``--backend`` / ``--store-backend`` accept.
    """
    from ..registry import EXECUTOR_BACKENDS, STORE_BACKENDS

    return [
        f"executor backends: {', '.join(EXECUTOR_BACKENDS.keys())}",
        f"store backends: {', '.join(STORE_BACKENDS.keys())}",
    ]


def describe_spec(spec: ExperimentSpec, *, scale: Optional[str] = None) -> str:
    """A human-readable dump of the resolved spec: parameters, axes, grid size."""
    import json

    lines = [
        f"{spec.name} — {spec.title}",
        f"driver: {spec.driver}    rows: {spec.rows}",
        f"scales: {', '.join(spec.scale_names()) or '(none declared)'}"
        + (f"    showing: {scale}" if scale else "    showing: base params"),
    ]
    context = resolve_context(spec, scale=scale)
    lines.append("resolved parameters:")
    for key, value in context.items():
        lines.append(f"  {key} = {json.dumps(value, default=str)}")
    lines.extend(_memory_lines(context))
    lines.extend(_tier_lines(context))
    lines.extend(_fabric_lines())
    if spec.axes:
        lines.append("axes (cartesian product, in order):")
        total = 1
        for axis in spec.axes:
            values = list(render_template(axis["values"], context))
            total *= max(1, len(values))
            lines.append(f"  {axis['name']}: {json.dumps(values, default=str)}")
        label = "search points" if spec.driver == "tolerance_search" else "tasks"
        lines.append(f"grid: {total} {label}")
        if spec.driver == "tolerance_search":
            candidates = list(
                render_template(spec.options, context).get("candidates", ())
            )
            lines.append(f"candidates per search point: {json.dumps(candidates, default=str)}")
        if spec.driver == "sweep":
            tasks = build_sweep_tasks(spec, context)
            repetitions = sum(task.repetitions for task in tasks)
            lines.append(f"labels: {', '.join(task.label for task in tasks[:8])}"
                         + (" ..." if len(tasks) > 8 else ""))
            lines.append(f"repetitions: {repetitions} simulation runs in total")
    if spec.options:
        lines.append(f"options: {json.dumps(render_template(spec.options, context), default=str)}")
    return "\n".join(lines)
