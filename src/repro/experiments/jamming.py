"""Experiment JAM — resilience to jamming (Section 6.1, graph omitted in the paper).

800 devices on a 24x24 map (density ~1.5), 10% of which jam each veto round
with probability 1/5, under a varying per-device broadcast budget.  The paper
reports that completion time grows *linearly* with the jamming budget — the
damage is proportional to the energy the adversary spends — which is exactly
the adaptivity property of Theorems 1-2.  The sweep here reproduces that
series; the benchmark additionally fits a line and checks the residual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..adversary.placement import fraction_to_count
from ..sim.config import ProtocolName, ScenarioConfig
from ..sim.runner import SweepExecutor, SweepTask
from .base import run_points
from .factories import BudgetedJammerFactory, UniformDeploymentFactory

__all__ = ["JammingSpec", "run_jamming", "fit_linear_trend"]


@dataclass(slots=True)
class JammingSpec:
    """Parameters of the jamming sweep."""

    map_size: float = 24.0
    num_nodes: int = 800
    radius: float = 4.0
    message_length: int = 4
    protocol: str = "neighborwatch"
    jammer_fraction: float = 0.10
    jam_probability: float = 0.2
    budgets: Sequence[int] = (0, 5, 10, 20)
    repetitions: int = 3
    base_seed: int = 200

    @classmethod
    def paper(cls) -> "JammingSpec":
        return cls(budgets=(0, 5, 10, 20, 40, 80), repetitions=6)

    @classmethod
    def small(cls) -> "JammingSpec":
        return cls(
            map_size=10.0,
            num_nodes=150,
            radius=3.0,
            message_length=2,
            budgets=(0, 4, 8),
            repetitions=2,
        )


def run_jamming(
    spec: JammingSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> list[dict]:
    """Run the jamming sweep and return one row per budget value."""
    num_jammers = fraction_to_count(spec.num_nodes, spec.jammer_fraction)
    deployment_factory = UniformDeploymentFactory(spec.num_nodes, spec.map_size, spec.map_size)
    config = ScenarioConfig(
        protocol=ProtocolName.parse(spec.protocol),
        radius=spec.radius,
        message_length=spec.message_length,
    )

    tasks = [
        SweepTask(
            label=f"budget={budget}",
            deployment_factory=deployment_factory,
            config=config,
            fault_factory=BudgetedJammerFactory(
                num_jammers, int(budget), spec.jam_probability
            ),
            repetitions=spec.repetitions,
            base_seed=spec.base_seed,
            extra={"budget": budget},
        )
        for budget in spec.budgets
    ]
    points = run_points(tasks, executor=executor, store=store)
    return [point.row(**task.extra) for task, point in zip(tasks, points)]


def fit_linear_trend(rows: Sequence[dict], x_key: str = "budget", y_key: str = "rounds") -> tuple[float, float, float]:
    """Least-squares fit ``y = a*x + b``; returns ``(a, b, r_squared)``.

    Used to verify the paper's observation that delay grows linearly with the
    jamming budget.
    """
    xs = np.asarray([float(r[x_key]) for r in rows])
    ys = np.asarray([float(r[y_key]) for r in rows])
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a line")
    a, b = np.polyfit(xs, ys, 1)
    predicted = a * xs + b
    ss_res = float(np.sum((ys - predicted) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(a), float(b), r_squared
