"""Declarative experiment specifications.

An :class:`ExperimentSpec` is *pure data*: parameters, scale overrides, sweep
axes and component templates that a generic driver (see
:mod:`repro.experiments.driver`) compiles into
:class:`~repro.sim.runner.SweepTask`s against the open component registries
of :mod:`repro.registry`.  Adding a scenario no longer means writing a module
— it means writing ~20 lines of JSON or TOML and running them with
``python -m repro.experiments run --spec FILE``.

Templates and expressions
-------------------------
Anywhere inside ``params``/``derived``/``scenario``/``deployment``/``faults``
/``extra``/axis values, a string starting with ``$`` is an *expression*
evaluated over the resolved parameter context (escape a literal leading
dollar as ``$$``).  Expressions are a restricted, side-effect-free subset of
Python: literals, arithmetic, comparisons, conditionals, tuple/list/dict
displays, subscripts and a whitelist of functions (``int``, ``float``,
``round``, ``abs``, ``max``, ``min``, ``len``, ``str``, ``bool``, ``ceil``,
``floor``, ``fmt`` — ``str.format`` — and ``fraction_to_count``).  ``label``
is a plain ``str.format`` template over the same context.

Resolution order (see :func:`repro.experiments.driver.resolve_context`):
``params`` → scale overrides (``scales[scale]``) → caller overrides →
``derived`` (in declaration order) → per-grid-point axis bindings →
``point_derived``.

Serialization
-------------
Specs round-trip losslessly through JSON and TOML: ``to_dict``/``from_dict``,
``to_json``/``from_json``, ``to_toml``/``from_toml``, plus :func:`load_spec`
for files.  On construction every nested sequence is normalized to a tuple
and every mapping to a plain dict, so a spec compares equal to its reparsed
self.  TOML cannot represent ``None``: ``to_toml`` simply omits top-level
``None`` fields (they are defaults) and rejects nested ``None`` values.

Malformed inputs raise :class:`SpecValidationError`, which carries the full
list of problems in ``.errors`` — the CLI prints them all, not just the
first.
"""

from __future__ import annotations

import ast
import json
import math
import re
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence

from ..adversary.placement import fraction_to_count

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "SpecValidationError",
    "ExperimentSpec",
    "evaluate_expression",
    "render_template",
    "load_spec",
]

SPEC_SCHEMA_VERSION = 1

#: Functions callable from spec expressions.  Deliberately tiny: everything a
#: spec computes must stay reproducible from the spec text alone.
SAFE_FUNCTIONS: Mapping[str, Callable] = {
    "int": int,
    "float": float,
    "round": round,
    "abs": abs,
    "max": max,
    "min": min,
    "len": len,
    "str": str,
    "bool": bool,
    "ceil": math.ceil,
    "floor": math.floor,
    "fmt": lambda template, *args, **kwargs: str(template).format(*args, **kwargs),
    "fraction_to_count": fraction_to_count,
}


class SpecValidationError(ValueError):
    """A spec (or spec file) is malformed; ``errors`` lists every problem."""

    def __init__(self, errors: Sequence[str], *, source: Optional[str] = None) -> None:
        self.errors = list(errors)
        self.source = source
        prefix = f"{source}: " if source else ""
        super().__init__(prefix + "; ".join(self.errors))


# -- the expression language --------------------------------------------------------------
_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a**b,
}
_COMPARES = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
}


def evaluate_expression(expression: str, context: Mapping[str, Any]) -> Any:
    """Evaluate one spec expression over ``context`` (see the module docstring)."""
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as exc:
        raise SpecValidationError([f"invalid expression {expression!r}: {exc.msg}"]) from exc
    try:
        return _eval_node(tree.body, context)
    except SpecValidationError:
        raise
    except Exception as exc:
        raise SpecValidationError(
            [f"error evaluating {expression!r}: {type(exc).__name__}: {exc}"]
        ) from exc


def _eval_node(node: ast.AST, ctx: Mapping[str, Any]) -> Any:
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in ctx:
            return ctx[node.id]
        if node.id in SAFE_FUNCTIONS:
            return SAFE_FUNCTIONS[node.id]
        known = sorted(set(ctx) | set(SAFE_FUNCTIONS))
        raise SpecValidationError(
            [f"unknown name {node.id!r} in expression; known names: {', '.join(known)}"]
        )
    if isinstance(node, ast.BinOp) and type(node.op) in _BINOPS:
        return _BINOPS[type(node.op)](_eval_node(node.left, ctx), _eval_node(node.right, ctx))
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.USub):
            return -_eval_node(node.operand, ctx)
        if isinstance(node.op, ast.UAdd):
            return +_eval_node(node.operand, ctx)
        if isinstance(node.op, ast.Not):
            return not _eval_node(node.operand, ctx)
    if isinstance(node, ast.BoolOp):
        if isinstance(node.op, ast.And):
            result = True
            for value in node.values:
                result = _eval_node(value, ctx)
                if not result:
                    return result
            return result
        result = False
        for value in node.values:
            result = _eval_node(value, ctx)
            if result:
                return result
        return result
    if isinstance(node, ast.Compare):
        left = _eval_node(node.left, ctx)
        for op, comparator in zip(node.ops, node.comparators):
            if type(op) not in _COMPARES:
                break
            right = _eval_node(comparator, ctx)
            if not _COMPARES[type(op)](left, right):
                return False
            left = right
        else:
            return True
        raise SpecValidationError([f"unsupported comparison {ast.dump(node)}"])
    if isinstance(node, ast.IfExp):
        return (
            _eval_node(node.body, ctx)
            if _eval_node(node.test, ctx)
            else _eval_node(node.orelse, ctx)
        )
    if isinstance(node, ast.Call):
        if not isinstance(node.func, ast.Name) or node.func.id not in SAFE_FUNCTIONS:
            raise SpecValidationError(
                [
                    "only whitelisted functions are callable in spec expressions: "
                    + ", ".join(sorted(SAFE_FUNCTIONS))
                ]
            )
        func = SAFE_FUNCTIONS[node.func.id]
        args = [_eval_node(arg, ctx) for arg in node.args]
        kwargs = {kw.arg: _eval_node(kw.value, ctx) for kw in node.keywords if kw.arg}
        return func(*args, **kwargs)
    if isinstance(node, ast.Subscript):
        return _eval_node(node.value, ctx)[_eval_node(node.slice, ctx)]
    if isinstance(node, ast.List):
        return [_eval_node(item, ctx) for item in node.elts]
    if isinstance(node, ast.Tuple):
        return tuple(_eval_node(item, ctx) for item in node.elts)
    if isinstance(node, ast.Dict):
        return {
            _eval_node(key, ctx): _eval_node(value, ctx)
            for key, value in zip(node.keys, node.values)
            if key is not None
        }
    raise SpecValidationError(
        [f"unsupported syntax in spec expression: {type(node).__name__}"]
    )


def render_template(value: Any, context: Mapping[str, Any]) -> Any:
    """Recursively resolve ``$``-expressions inside ``value`` against ``context``."""
    if isinstance(value, str):
        if value.startswith("$$"):
            return value[1:]
        if value.startswith("$"):
            return evaluate_expression(value[1:], context)
        return value
    if isinstance(value, Mapping):
        return {key: render_template(item, context) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [render_template(item, context) for item in value]
    return value


# -- normalization ------------------------------------------------------------------------
def _normalize(value: Any) -> Any:
    """Canonical immutable-ish form: sequences → tuples, mappings → plain dicts."""
    if isinstance(value, Mapping):
        return {str(key): _normalize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(item) for item in value)
    return value


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment as data; executed by a registered driver.

    Fields
    ------
    name / title:
        Identifier (``"FIG5"``) and one-line description.
    driver:
        Key into ``repro.registry.DRIVERS`` (``"sweep"``,
        ``"tolerance_search"``, ``"dual_mode"`` built-in).
    params / scales / derived:
        Base parameters, per-scale override maps (``{"small": {...},
        "paper": {...}}``) and derived parameters (expressions evaluated in
        declaration order after the overrides).
    axes / point_derived:
        Ordered sweep axes (``{"name": ..., "values": ...}``; values may be
        an expression) whose cartesian product forms the grid, plus per-point
        derived bindings.
    label:
        ``str.format`` template naming each point (becomes the row label).
    scenario / deployment / faults:
        Templates for the :class:`~repro.sim.config.ScenarioConfig` kwargs
        and the deployment / fault-plan component specs (``{"kind":
        <registry key>, **factory fields}``; the whole value may be an
        expression choosing between kinds).  ``faults`` may be ``None``.
    extra:
        Extra row-column template attached to each task.
    rows:
        Key into ``repro.registry.METRICS`` selecting the row builder that
        turns aggregated points into table rows.
    repetitions / base_seed / max_rounds:
        Sweep-task knobs (templates; the defaults reference same-named
        params).
    options:
        Driver-specific extras (e.g. the tolerance search's candidates and
        threshold).
    """

    name: str
    title: str
    driver: str = "sweep"
    params: Mapping[str, Any] = field(default_factory=dict)
    scales: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    derived: Mapping[str, Any] = field(default_factory=dict)
    axes: Sequence[Mapping[str, Any]] = ()
    point_derived: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""
    scenario: Mapping[str, Any] = field(default_factory=dict)
    deployment: Any = None
    faults: Any = None
    extra: Mapping[str, Any] = field(default_factory=dict)
    rows: str = "default"
    repetitions: Any = "$repetitions"
    base_seed: Any = "$base_seed"
    max_rounds: Any = None
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        errors = []
        if not isinstance(self.name, str) or not self.name:
            errors.append("'name' must be a non-empty string")
        if not isinstance(self.title, str) or not self.title:
            errors.append("'title' must be a non-empty string")
        if not isinstance(self.driver, str) or not self.driver:
            errors.append("'driver' must be a non-empty string")
        if not isinstance(self.rows, str) or not self.rows:
            errors.append("'rows' must be a non-empty string (a metrics-registry key)")
        for slot in ("params", "scales", "derived", "point_derived", "scenario", "extra", "options"):
            if not isinstance(getattr(self, slot), Mapping):
                errors.append(f"{slot!r} must be a mapping")
        if isinstance(self.scales, Mapping):
            for scale, overrides in self.scales.items():
                if not isinstance(overrides, Mapping):
                    errors.append(f"scale {scale!r} must map to a mapping of overrides")
        if isinstance(self.axes, (str, Mapping)) or not isinstance(self.axes, Sequence):
            errors.append("'axes' must be a sequence of {name, values} mappings")
        else:
            for index, axis in enumerate(self.axes):
                if not isinstance(axis, Mapping) or "name" not in axis or "values" not in axis:
                    errors.append(f"axis #{index} must be a mapping with 'name' and 'values'")
        if errors:
            raise SpecValidationError(errors, source=getattr(self, "name", None) or "spec")
        for slot in (
            "params",
            "scales",
            "derived",
            "axes",
            "point_derived",
            "scenario",
            "deployment",
            "faults",
            "extra",
            "options",
        ):
            object.__setattr__(self, slot, _normalize(getattr(self, slot)))

    # -- scale handling -------------------------------------------------------------------
    def scale_names(self) -> tuple[str, ...]:
        return tuple(self.scales)

    def with_updates(self, **changes: Any) -> "ExperimentSpec":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    # -- serialization --------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-compatible dictionary (tuples become lists on encode)."""
        payload: dict = {"schema": SPEC_SCHEMA_VERSION}
        for spec_field in fields(self):
            payload[spec_field.name] = getattr(self, spec_field.name)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, source: Optional[str] = None) -> "ExperimentSpec":
        if not isinstance(data, Mapping):
            raise SpecValidationError(["spec document must be a mapping"], source=source)
        data = dict(data)
        schema = data.pop("schema", SPEC_SCHEMA_VERSION)
        if schema != SPEC_SCHEMA_VERSION:
            raise SpecValidationError(
                [f"unsupported spec schema {schema!r} (this build reads {SPEC_SCHEMA_VERSION})"],
                source=source,
            )
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known)
        errors = []
        if unknown:
            errors.append(
                f"unknown field(s): {', '.join(unknown)}; known fields: {', '.join(sorted(known))}"
            )
        missing = [name for name in ("name", "title") if name not in data]
        if missing:
            errors.append(f"missing required field(s): {', '.join(missing)}")
        if errors:
            raise SpecValidationError(errors, source=source)
        try:
            return cls(**data)
        except SpecValidationError as exc:
            raise SpecValidationError(exc.errors, source=source) from exc

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str, *, source: Optional[str] = None) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecValidationError([f"invalid JSON: {exc}"], source=source) from exc
        return cls.from_dict(data, source=source)

    def to_toml(self) -> str:
        """A TOML document equal (after :meth:`from_toml`) to this spec.

        ``None``-valued top-level fields are omitted (TOML has no null);
        nested ``None`` values are rejected.
        """
        lines = []
        for key, value in self.to_dict().items():
            if value is None:
                continue
            lines.append(f"{_toml_key(key)} = {_toml_value(value, where=key)}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_toml(cls, text: str, *, source: Optional[str] = None) -> "ExperimentSpec":
        import tomllib

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecValidationError([f"invalid TOML: {exc}"], source=source) from exc
        return cls.from_dict(data, source=source)


_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


def _toml_key(key: str) -> str:
    return key if _BARE_KEY.match(key) else json.dumps(key)


def _toml_value(value: Any, *, where: str) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, float):
        rendered = repr(value)
        return rendered if any(ch in rendered for ch in ".einf") else rendered + ".0"
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, Mapping):
        items = ", ".join(
            f"{_toml_key(str(k))} = {_toml_value(v, where=f'{where}.{k}')}"
            for k, v in value.items()
        )
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(item, where=where) for item in value) + "]"
    if value is None:
        raise SpecValidationError(
            [f"TOML cannot represent null (field {where!r}); drop the key instead"]
        )
    raise SpecValidationError(
        [f"cannot serialize {type(value).__name__} (field {where!r}) to TOML"]
    )


def load_spec(path: "str | Path") -> ExperimentSpec:
    """Load a user-authored spec file (``.json`` or ``.toml``)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf8")
    except OSError as exc:
        raise SpecValidationError([f"cannot read spec file: {exc}"], source=str(path)) from exc
    suffix = path.suffix.lower()
    if suffix == ".json":
        return ExperimentSpec.from_json(text, source=str(path))
    if suffix == ".toml":
        return ExperimentSpec.from_toml(text, source=str(path))
    raise SpecValidationError(
        [f"unsupported spec extension {suffix!r}; expected .json or .toml"], source=str(path)
    )
