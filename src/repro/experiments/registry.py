"""Experiment lookup: DESIGN.md identifiers → declarative specs.

Every experiment is an :class:`~repro.experiments.spec.ExperimentSpec`
registered in ``repro.registry.EXPERIMENT_SPECS`` (the built-ins live in
:mod:`repro.experiments.builtin`, in DESIGN.md order).  The command-line
entry point and the benchmark harness both go through :func:`run_experiment`,
so there is exactly one place where an experiment id is bound to data — and
registering a new spec (or loading one from a file) makes it runnable with no
changes here.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..registry import EXPERIMENT_SPECS
from ..sim.runner import SweepExecutor
from .driver import run_spec
from .spec import ExperimentSpec

__all__ = ["EXPERIMENTS", "available_experiments", "get_spec", "run_experiment"]


class _ExperimentsView(Mapping):
    """Live read-only view of the experiment-spec registry, keyed by id."""

    def __getitem__(self, key: str) -> ExperimentSpec:
        return EXPERIMENT_SPECS.get(key)

    def __iter__(self):
        return iter(EXPERIMENT_SPECS.keys())

    def __len__(self) -> int:
        return len(EXPERIMENT_SPECS)


#: Mapping of experiment id → :class:`ExperimentSpec`, in registration order.
EXPERIMENTS: Mapping[str, ExperimentSpec] = _ExperimentsView()


def available_experiments() -> list[str]:
    """Identifiers of all registered experiments, in DESIGN.md order."""
    return EXPERIMENT_SPECS.keys()


def get_spec(experiment_id: str) -> ExperimentSpec:
    """The registered spec for ``experiment_id``.

    Raises a :class:`~repro.registry.RegistryError` (a ``KeyError`` subclass)
    listing the available identifiers when the id is unknown.
    """
    return EXPERIMENT_SPECS.get(experiment_id)


def run_experiment(
    experiment_id: str,
    scale: str = "small",
    *,
    workers: int = 0,
    chunk_size: int = 1,
    executor: Optional[SweepExecutor] = None,
    store=None,
) -> tuple[Sequence[dict], str]:
    """Run one experiment by id; returns ``(rows, description)``.

    ``workers``/``chunk_size`` construct a :class:`SweepExecutor` (0 or 1
    workers run serially); pass ``executor`` to reuse one instead.  ``store``
    (a :class:`~repro.store.ResultStore`) makes the run incremental: cached
    repetitions are read back instead of re-simulated, new ones persisted.
    """
    spec = get_spec(experiment_id)
    if executor is not None:
        return run_spec(spec, scale=scale, executor=executor, store=store), spec.title
    with SweepExecutor(workers, chunk_size=chunk_size) as owned_executor:
        return run_spec(spec, scale=scale, executor=owned_executor, store=store), spec.title
