"""Registry mapping the experiment identifiers of DESIGN.md to runnable entry points.

Each entry returns ``(rows, description)`` when called with the chosen scale
(``"small"`` or ``"paper"``) and a :class:`~repro.sim.runner.SweepExecutor`;
the command-line entry point (``python -m repro.experiments``) and the
benchmark harness both go through this registry so there is exactly one place
where an experiment id is bound to code.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from ..sim.runner import SweepExecutor
from .clustered import ClusteredSpec, run_clustered
from .crash_resilience import CrashResilienceSpec, run_crash_resilience
from .density_tolerance import DensityToleranceSpec, run_density_tolerance
from .epidemic_comparison import (
    DualModeSpec,
    EpidemicComparisonSpec,
    run_dual_mode,
    run_epidemic_comparison,
)
from .jamming import JammingSpec, run_jamming
from .lying import LyingSpec, run_lying
from .map_size import MapSizeSpec, run_map_size

__all__ = ["EXPERIMENTS", "available_experiments", "run_experiment"]


def _spec_for(spec_cls, scale: str):
    if scale == "paper":
        return spec_cls.paper()
    if scale == "small":
        return spec_cls.small()
    raise ValueError(f"unknown scale {scale!r}; expected 'small' or 'paper'")


def _run_fig5(scale: str, executor: Optional[SweepExecutor], store=None) -> Sequence[dict]:
    return run_crash_resilience(_spec_for(CrashResilienceSpec, scale), executor=executor, store=store)


def _run_jam(scale: str, executor: Optional[SweepExecutor], store=None) -> Sequence[dict]:
    return run_jamming(_spec_for(JammingSpec, scale), executor=executor, store=store)


def _run_fig6(scale: str, executor: Optional[SweepExecutor], store=None) -> Sequence[dict]:
    return run_lying(_spec_for(LyingSpec, scale), executor=executor, store=store)


def _run_fig7(scale: str, executor: Optional[SweepExecutor], store=None) -> Sequence[dict]:
    return run_density_tolerance(_spec_for(DensityToleranceSpec, scale), executor=executor, store=store)


def _run_clust(scale: str, executor: Optional[SweepExecutor], store=None) -> Sequence[dict]:
    return run_clustered(_spec_for(ClusteredSpec, scale), executor=executor, store=store)


def _run_mapsz(scale: str, executor: Optional[SweepExecutor], store=None) -> Sequence[dict]:
    return run_map_size(_spec_for(MapSizeSpec, scale), executor=executor, store=store)


def _run_epid(scale: str, executor: Optional[SweepExecutor], store=None) -> Sequence[dict]:
    return run_epidemic_comparison(_spec_for(EpidemicComparisonSpec, scale), executor=executor, store=store)


def _run_dual(scale: str, executor: Optional[SweepExecutor], store=None) -> Sequence[dict]:
    return [run_dual_mode(_spec_for(DualModeSpec, scale), executor=executor, store=store)]


EXPERIMENTS: Mapping[str, tuple[str, Callable[..., Sequence[dict]]]] = {
    "FIG5": ("Crash resilience: completion vs active-device density (Fig. 5)", _run_fig5),
    "JAM": ("Jamming: completion time vs adversarial budget (Sec. 6.1)", _run_jam),
    "FIG6": ("Lying devices: correctness vs Byzantine fraction (Fig. 6)", _run_fig6),
    "FIG7": ("Max tolerated Byzantine fraction vs density (Fig. 7)", _run_fig7),
    "CLUST": ("Clustered vs uniform deployments (Sec. 6.2)", _run_clust),
    "MAPSZ": ("Scaling with map size / diameter (Sec. 6.2, Thm. 5)", _run_mapsz),
    "EPID": ("Comparison with the epidemic baseline (Sec. 6.2)", _run_epid),
    "DUAL": ("Dual-mode protocol: payload flood + secured digest (Sec. 1, 6.2)", _run_dual),
}


def available_experiments() -> list[str]:
    """Identifiers of all registered experiments, in DESIGN.md order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    scale: str = "small",
    *,
    workers: int = 0,
    chunk_size: int = 1,
    executor: Optional[SweepExecutor] = None,
    store=None,
) -> tuple[Sequence[dict], str]:
    """Run one experiment by id; returns ``(rows, description)``.

    ``workers``/``chunk_size`` construct a :class:`SweepExecutor` (0 or 1
    workers run serially); pass ``executor`` to reuse one instead.  ``store``
    (a :class:`~repro.store.ResultStore`) makes the run incremental: cached
    repetitions are read back instead of re-simulated, new ones persisted.
    """
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENTS)}")
    description, runner = EXPERIMENTS[key]
    if executor is not None:
        return runner(scale, executor, store=store), description
    with SweepExecutor(workers, chunk_size=chunk_size) as owned_executor:
        return runner(scale, owned_executor, store=store), description
