"""The paper's eight experiments as declarative :class:`ExperimentSpec` data.

Each spec registers into ``repro.registry.EXPERIMENT_SPECS`` under its
DESIGN.md identifier, in DESIGN.md order.  Parameter values — including their
*types* (``4.0`` vs ``4``) — are copied verbatim from the retired experiment
modules: the drivers compile these specs into the exact same
:class:`~repro.sim.runner.SweepTask`s, so every ``fingerprint()`` a
pre-redesign :class:`~repro.store.ResultStore` cached keeps matching
(``tests/test_spec_roundtrip.py`` pins this against a golden capture).

``scales`` follow the historical ``paper()`` / ``small()`` constructors:
``paper`` approximates the paper's evaluation (hours of CPU), ``small`` is a
scaled-down sweep with the same qualitative shape (tens of seconds) used by
the test suite and the benchmark harness.
"""

from __future__ import annotations

from ..registry import register_experiment_spec
from .spec import ExperimentSpec

__all__ = [
    "FIG5_SPEC",
    "JAM_SPEC",
    "FIG6_SPEC",
    "FIG7_SPEC",
    "CLUST_SPEC",
    "MAPSZ_SPEC",
    "EPID_SPEC",
    "DUAL_SPEC",
]


def _proto(label: str, protocol: str, tolerance: int) -> dict:
    return {"label": label, "protocol": protocol, "tolerance": tolerance}


_NW = _proto("NeighborWatchRB", "neighborwatch", 0)
_NW2 = _proto("NeighborWatchRB-2vote", "neighborwatch2", 0)
_MP3 = _proto("MultiPathRB(t=3)", "multipath", 3)
_MP5 = _proto("MultiPathRB(t=5)", "multipath", 5)

_PROTO_SCENARIO = {
    "protocol": "$proto['protocol']",
    "radius": "$radius",
    "message_length": "$message_length",
    "multipath_tolerance": "$proto['tolerance']",
}

_UNIFORM_FULL_MAP = {
    "kind": "uniform",
    "num_nodes": "$num_nodes",
    "width": "$map_size",
    "height": "$map_size",
}


FIG5_SPEC = register_experiment_spec(
    ExperimentSpec(
        name="FIG5",
        title="Crash resilience: completion vs active-device density (Fig. 5)",
        params={
            "map_size": 24.0,
            "deployed_density": 3.0,
            "densities": (0.75, 1.0, 1.5, 2.0),
            "radius": 4.0,
            "message_length": 4,
            "protocols": (_NW, _NW2, _MP3, _MP5),
            "repetitions": 3,
            "base_seed": 100,
        },
        scales={
            "paper": {
                "map_size": 24.0,
                "deployed_density": 3.0,
                "densities": (0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0),
                "radius": 4.0,
                "message_length": 4,
                "repetitions": 6,
            },
            "small": {
                "map_size": 8.0,
                "deployed_density": 2.2,
                "densities": (0.8, 1.6),
                "radius": 3.0,
                "message_length": 2,
                "protocols": (_NW, _NW2, _proto("MultiPathRB(t=1)", "multipath", 1)),
                "repetitions": 2,
            },
        },
        derived={"num_deployed": "$int(round(deployed_density * map_size * map_size))"},
        axes=(
            {"name": "proto", "values": "$protocols"},
            {"name": "density", "values": "$densities"},
        ),
        label="{proto[label]}@density={density}",
        scenario=_PROTO_SCENARIO,
        deployment={
            "kind": "uniform",
            "num_nodes": "$num_deployed",
            "width": "$map_size",
            "height": "$map_size",
        },
        faults={"kind": "target_density_crash", "density": "$density"},
        extra={"protocol": "$proto['label']", "density": "$density"},
    )
)


JAM_SPEC = register_experiment_spec(
    ExperimentSpec(
        name="JAM",
        title="Jamming: completion time vs adversarial budget (Sec. 6.1)",
        params={
            "map_size": 24.0,
            "num_nodes": 800,
            "radius": 4.0,
            "message_length": 4,
            "protocol": "neighborwatch",
            "jammer_fraction": 0.10,
            "jam_probability": 0.2,
            "budgets": (0, 5, 10, 20),
            "repetitions": 3,
            "base_seed": 200,
        },
        scales={
            "paper": {"budgets": (0, 5, 10, 20, 40, 80), "repetitions": 6},
            "small": {
                "map_size": 10.0,
                "num_nodes": 150,
                "radius": 3.0,
                "message_length": 2,
                "budgets": (0, 4, 8),
                "repetitions": 2,
            },
        },
        derived={"num_jammers": "$fraction_to_count(num_nodes, jammer_fraction)"},
        axes=({"name": "budget", "values": "$budgets"},),
        label="budget={budget}",
        scenario={
            "protocol": "$protocol",
            "radius": "$radius",
            "message_length": "$message_length",
        },
        deployment=_UNIFORM_FULL_MAP,
        faults={
            "kind": "budgeted_jammer",
            "count": "$num_jammers",
            "budget": "$int(budget)",
            "jam_probability": "$jam_probability",
        },
        extra={"budget": "$budget"},
    )
)


FIG6_SPEC = register_experiment_spec(
    ExperimentSpec(
        name="FIG6",
        title="Lying devices: correctness vs Byzantine fraction (Fig. 6)",
        params={
            "map_size": 20.0,
            "num_nodes": 600,
            "radius": 4.0,
            "message_length": 4,
            "fractions": (0.0, 0.025, 0.05, 0.10, 0.15),
            "protocols": (_NW, _NW2, _MP3, _MP5),
            "clustered": False,
            "num_clusters": 8,
            "repetitions": 3,
            "base_seed": 300,
        },
        scales={
            "paper": {
                "fractions": (0.0, 0.01, 0.025, 0.05, 0.075, 0.10, 0.15, 0.20),
                "repetitions": 6,
            },
            "small": {
                "map_size": 10.0,
                "num_nodes": 150,
                "radius": 3.0,
                "message_length": 2,
                "fractions": (0.0, 0.05, 0.20),
                "protocols": (_NW, _NW2),
                "repetitions": 2,
            },
        },
        derived={
            "deployment_spec": "$({'kind': 'clustered', 'num_nodes': num_nodes, "
            "'width': map_size, 'height': map_size, 'num_clusters': num_clusters} "
            "if clustered else {'kind': 'uniform', 'num_nodes': num_nodes, "
            "'width': map_size, 'height': map_size})",
        },
        axes=(
            {"name": "proto", "values": "$protocols"},
            {"name": "fraction", "values": "$fractions"},
        ),
        label="{proto[label]}@{fraction:.1%}",
        scenario=_PROTO_SCENARIO,
        deployment="$deployment_spec",
        faults={"kind": "random_liar", "count": "$fraction_to_count(num_nodes, fraction)"},
        extra={"protocol": "$proto['label']", "byzantine_fraction": "$fraction"},
    )
)


FIG7_SPEC = register_experiment_spec(
    ExperimentSpec(
        name="FIG7",
        title="Max tolerated Byzantine fraction vs density (Fig. 7)",
        driver="tolerance_search",
        params={
            "map_size": 20.0,
            "densities": (0.75, 1.5, 3.0),
            "candidate_fractions": (0.0, 0.025, 0.05, 0.10, 0.15, 0.25),
            "radius": 4.0,
            "message_length": 4,
            "threshold": 0.9,
            "protocols": (_NW, _NW2),
            "repetitions": 2,
            "base_seed": 400,
        },
        scales={
            "paper": {
                "densities": (0.75, 1.5, 3.0, 5.0, 9.0),
                "candidate_fractions": (0.0, 0.025, 0.05, 0.075, 0.10, 0.15, 0.20, 0.25, 0.30),
                "protocols": (_NW, _NW2, _MP3),
                "repetitions": 6,
            },
            "small": {
                "map_size": 9.0,
                "densities": (1.2, 2.5),
                "candidate_fractions": (0.0, 0.05, 0.15),
                "radius": 3.0,
                "message_length": 2,
                "protocols": (_NW,),
                "repetitions": 1,
            },
        },
        axes=(
            {"name": "proto", "values": "$protocols"},
            {"name": "density", "values": "$densities"},
        ),
        point_derived={"num_nodes": "$max(10, int(round(density * map_size * map_size)))"},
        label="{fraction:.1%}",
        scenario=_PROTO_SCENARIO,
        deployment=_UNIFORM_FULL_MAP,
        faults={
            "kind": "random_liar",
            "count": "$fraction_to_count(num_nodes, fraction)",
            "seed_offset": 17,
        },
        extra={"protocol": "$proto['label']", "density": "$density", "num_nodes": "$num_nodes"},
        options={
            "candidate": "fraction",
            "candidates": "$candidate_fractions",
            "threshold": "$threshold",
            "metric": "correct_delivery_fraction",
        },
    )
)


CLUST_SPEC = register_experiment_spec(
    ExperimentSpec(
        name="CLUST",
        title="Clustered vs uniform deployments (Sec. 6.2)",
        params={
            "map_size": 30.0,
            "num_nodes": 1200,
            "num_clusters": 10,
            "radius": 4.0,
            "message_length": 4,
            "protocol": "neighborwatch",
            "lying_fractions": (0.0, 0.05),
            "repetitions": 3,
            "base_seed": 500,
        },
        scales={
            "paper": {"lying_fractions": (0.0, 0.05, 0.10), "repetitions": 6},
            "small": {
                "map_size": 12.0,
                "num_nodes": 200,
                "num_clusters": 5,
                "radius": 3.0,
                "message_length": 2,
                "lying_fractions": (0.0, 0.05),
                "repetitions": 2,
            },
        },
        axes=(
            {"name": "kind", "values": ("uniform", "clustered")},
            {"name": "fraction", "values": "$lying_fractions"},
        ),
        label="{kind}@{fraction:.0%}",
        scenario={
            "protocol": "$protocol",
            "radius": "$radius",
            "message_length": "$message_length",
        },
        deployment="$({'kind': 'clustered', 'num_nodes': num_nodes, 'width': map_size, "
        "'height': map_size, 'num_clusters': num_clusters} if kind == 'clustered' else "
        "{'kind': 'uniform', 'num_nodes': num_nodes, 'width': map_size, 'height': map_size})",
        faults={
            "kind": "random_liar",
            "count": "$fraction_to_count(num_nodes, fraction)",
            "seed_offset": 23,
        },
        extra={"deployment": "$kind", "byzantine_fraction": "$fraction"},
        rows="clustered_connectivity",
    )
)


MAPSZ_SPEC = register_experiment_spec(
    ExperimentSpec(
        name="MAPSZ",
        title="Scaling with map size / diameter (Sec. 6.2, Thm. 5)",
        params={
            "map_sizes": (10.0, 15.0, 20.0),
            "density": 1.25,
            "radius": 3.0,
            "message_length": 5,
            "protocol": "neighborwatch",
            "repetitions": 3,
            "base_seed": 600,
        },
        scales={
            "paper": {"map_sizes": (30.0, 40.0, 50.0), "repetitions": 6},
            "small": {
                "map_sizes": (8.0, 12.0),
                "density": 1.5,
                "message_length": 2,
                "repetitions": 2,
            },
        },
        axes=({"name": "size", "values": "$map_sizes"},),
        point_derived={"num_nodes": "$max(10, int(round(density * size * size)))"},
        label="map={size:.0f}",
        scenario={
            "protocol": "$protocol",
            "radius": "$radius",
            "message_length": "$message_length",
        },
        deployment={
            "kind": "uniform",
            "num_nodes": "$num_nodes",
            "width": "$size",
            "height": "$size",
        },
        extra={"map_size": "$size"},
        rows="map_size_scaling",
    )
)


EPID_SPEC = register_experiment_spec(
    ExperimentSpec(
        name="EPID",
        title="Comparison with the epidemic baseline (Sec. 6.2)",
        params={
            "map_sizes": (15.0,),
            "density": 1.25,
            "radius": 3.0,
            "message_length": 5,
            "include_multipath": False,
            "multipath_tolerance": 1,
            "repetitions": 3,
            "base_seed": 700,
        },
        scales={
            "paper": {
                "map_sizes": (30.0, 40.0, 50.0),
                "repetitions": 6,
                "include_multipath": True,
            },
            "small": {
                "map_sizes": (10.0,),
                "density": 1.5,
                "message_length": 3,
                "repetitions": 2,
            },
        },
        derived={
            "protocols": "$({'label': 'epidemic', 'protocol': 'epidemic', 'tolerance': 0}, "
            "{'label': 'NeighborWatchRB', 'protocol': 'neighborwatch', 'tolerance': 0}) "
            "+ (({'label': fmt('MultiPathRB(t={})', multipath_tolerance), "
            "'protocol': 'multipath', 'tolerance': multipath_tolerance},) "
            "if include_multipath else ())",
        },
        axes=(
            {"name": "size", "values": "$map_sizes"},
            {"name": "proto", "values": "$protocols"},
        ),
        point_derived={"num_nodes": "$max(10, int(round(density * size * size)))"},
        label="{proto[label]}@map={size:.0f}",
        scenario=_PROTO_SCENARIO,
        deployment={
            "kind": "uniform",
            "num_nodes": "$num_nodes",
            "width": "$size",
            "height": "$size",
        },
        extra={
            "map_size": "$size",
            "protocol": "$proto['label']",
            "protocol_id": "$proto['protocol']",
        },
        rows="epidemic_slowdown",
    )
)


DUAL_SPEC = register_experiment_spec(
    ExperimentSpec(
        name="DUAL",
        title="Dual-mode protocol: payload flood + secured digest (Sec. 1, 6.2)",
        driver="dual_mode",
        params={
            "map_size": 12.0,
            "density": 1.5,
            "radius": 3.0,
            "payload_bits": 20,
            "digest_ratio": 0.1,
            "seed": 800,
        },
        scales={
            "paper": {
                "map_size": 30.0,
                "density": 1.25,
                "payload_bits": 50,
                "digest_ratio": 0.1,
            },
            "small": {
                "map_size": 9.0,
                "density": 1.5,
                "payload_bits": 10,
                "digest_ratio": 0.2,
            },
        },
    )
)
