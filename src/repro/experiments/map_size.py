"""Experiment MAPSZ / THM5 — scaling with the map size (Section 6.2, Theorem 5).

The paper verifies that NeighborWatchRB's running time and message complexity
scale linearly with the network diameter by sweeping the map size at constant
density.  This experiment reproduces that sweep and additionally reports the
quantities Theorem 5 predicts: rounds per unit of diameter should be roughly
constant, and so should broadcasts per device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..sim.config import ProtocolName, ScenarioConfig
from ..sim.runner import SweepExecutor, SweepTask
from ..topology.connectivity import connectivity_report
from .base import run_points
from .factories import UniformDeploymentFactory

__all__ = ["MapSizeSpec", "run_map_size", "linear_scaling_error"]


@dataclass(slots=True)
class MapSizeSpec:
    """Parameters of the map-size sweep."""

    map_sizes: Sequence[float] = (10.0, 15.0, 20.0)
    density: float = 1.25
    radius: float = 3.0
    message_length: int = 5
    protocol: str = "neighborwatch"
    repetitions: int = 3
    base_seed: int = 600

    @classmethod
    def paper(cls) -> "MapSizeSpec":
        return cls(map_sizes=(30.0, 40.0, 50.0), repetitions=6)

    @classmethod
    def small(cls) -> "MapSizeSpec":
        return cls(map_sizes=(8.0, 12.0), density=1.5, message_length=2, repetitions=2)


def run_map_size(
    spec: MapSizeSpec, *, executor: Optional[SweepExecutor] = None, store=None
) -> list[dict]:
    """Run the sweep; one row per map size, with diameter-normalised columns."""
    config = ScenarioConfig(
        protocol=ProtocolName.parse(spec.protocol),
        radius=spec.radius,
        message_length=spec.message_length,
    )
    tasks = [
        SweepTask(
            label=f"map={size:.0f}",
            deployment_factory=UniformDeploymentFactory(
                max(10, int(round(spec.density * size * size))), size, size
            ),
            config=config,
            repetitions=spec.repetitions,
            base_seed=spec.base_seed,
            extra={"map_size": size},
        )
        for size in spec.map_sizes
    ]
    points = run_points(tasks, executor=executor, store=store)

    rows: list[dict] = []
    for task, point in zip(tasks, points):
        num_nodes = task.deployment_factory.num_nodes
        sample = task.deployment_factory(spec.base_seed)
        report = connectivity_report(sample.positions, spec.radius, sample.source_index)
        diameter = max(report.diameter_hops_from_source, 1)
        rows.append(
            point.row(
                map_size=task.extra["map_size"],
                num_nodes=num_nodes,
                diameter_hops=diameter,
                rounds_per_hop=point.rounds / diameter,
                broadcasts_per_node=point.honest_broadcasts / num_nodes,
            )
        )
    return rows


def linear_scaling_error(rows: Sequence[dict], x_key: str = "diameter_hops", y_key: str = "rounds") -> float:
    """Relative RMS error of the best linear (through-origin-free) fit.

    Small values mean the measured series is consistent with linear scaling in
    the diameter, which is what Theorem 5 and the paper's map-size experiment
    claim.
    """
    xs = np.asarray([float(r[x_key]) for r in rows])
    ys = np.asarray([float(r[y_key]) for r in rows])
    if len(xs) < 2:
        return 0.0
    coeffs = np.polyfit(xs, ys, 1)
    predicted = np.polyval(coeffs, xs)
    rms = float(np.sqrt(np.mean((ys - predicted) ** 2)))
    scale = float(np.mean(np.abs(ys))) or 1.0
    return rms / scale
