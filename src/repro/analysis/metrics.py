"""Derived per-run metrics beyond the headline summary.

:class:`~repro.sim.results.RunResult` exposes the paper's four headline
metrics; the helpers here derive secondary quantities the evaluation section
discusses in passing — per-node delivery latency profiles, broadcast budgets
actually consumed, message overhead relative to the epidemic baseline, and the
per-density tolerance search used by Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..sim.results import RunResult

__all__ = [
    "delivery_latencies",
    "latency_percentiles",
    "broadcasts_per_delivered_bit",
    "slowdown_factor",
    "max_tolerated_fraction",
]


def delivery_latencies(result: RunResult) -> list[int]:
    """Delivery round of every honest device that completed, sorted ascending."""
    rounds = [
        o.delivery_round
        for o in result.outcomes.values()
        if o.honest and o.active and o.delivered and o.delivery_round is not None
    ]
    return sorted(rounds)


def latency_percentiles(result: RunResult, percentiles: Sequence[float] = (50, 90, 100)) -> dict[float, float]:
    """Selected percentiles of the delivery-latency distribution."""
    latencies = delivery_latencies(result)
    if not latencies:
        return {p: float(result.total_rounds) for p in percentiles}
    arr = np.asarray(latencies, dtype=float)
    return {p: float(np.percentile(arr, p)) for p in percentiles}


def broadcasts_per_delivered_bit(result: RunResult) -> float:
    """Honest broadcasts spent per (device, bit) successfully delivered.

    A compact energy metric: the paper reports total broadcast counts; dividing
    by the amount of useful data delivered makes runs of different sizes
    comparable.
    """
    delivered = sum(1 for o in result.outcomes.values() if o.honest and o.active and o.delivered)
    bits = delivered * max(len(result.message), 1)
    if bits == 0:
        return float("inf")
    return result.honest_broadcasts / bits


def slowdown_factor(protocol_result: RunResult, baseline_result: RunResult) -> float:
    """How many times longer a protocol took than a baseline run.

    This is the quantity behind the paper's "about 7.7 times longer than the
    epidemic protocol" claim.
    """
    baseline = max(baseline_result.completion_rounds, 1)
    return protocol_result.completion_rounds / baseline


def max_tolerated_fraction(
    evaluate: Callable[[float], float],
    fractions: Sequence[float],
    *,
    threshold: float = 0.9,
) -> float:
    """Largest fault fraction for which ``evaluate(fraction) >= threshold``.

    ``evaluate`` maps a fault fraction to the fraction of honest devices that
    delivered the *correct* message (averaged over repetitions); this is the
    search Figure 7 performs per deployment density.  Returns 0.0 when even
    the smallest tested fraction fails.
    """
    if not fractions:
        raise ValueError("fractions must not be empty")
    best = 0.0
    for fraction in sorted(float(f) for f in fractions):
        if evaluate(fraction) >= threshold:
            best = fraction
        else:
            break
    return best


@dataclass(frozen=True, slots=True)
class ComparisonRow:
    """One row of a protocol-vs-baseline comparison table."""

    label: str
    rounds: float
    broadcasts: float
    completion: float
    correctness: float
    slowdown: float
