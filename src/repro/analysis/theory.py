"""Theoretical bounds from the paper, as executable formulas.

These functions encode the tolerance thresholds and the running-time bound the
paper proves (or cites), so that experiments and tests can compare measured
behaviour against theory:

* Koo's impossibility bound: no protocol tolerates ``t >= R(2R+1)/2`` Byzantine
  devices per neighborhood (and MultiPathRB matches it, Theorem 4);
* NeighborWatchRB tolerates ``t < ceil(R/2)^2`` (Theorem 3) and its 2-voting
  variant roughly ``t < R^2/2``;
* both protocols deliver within ``O(beta*D + log|Sigma|)`` rounds (Theorem 5);
* the paper's rule of thumb for the lying experiments: with ``E[|N|]``
  neighbors per device, MultiPathRB tuned for ``t`` faults tolerates about a
  fraction ``t / E[|N|]`` of lying devices.
"""

from __future__ import annotations

import math

__all__ = [
    "koo_tolerance_bound",
    "max_tolerable_multipath",
    "max_tolerable_neighborwatch",
    "max_tolerable_neighborwatch_2vote",
    "expected_neighborhood_size",
    "multipath_lying_fraction",
    "runtime_bound_rounds",
    "minimum_runtime_rounds",
    "pipeline_speedup",
]


def koo_tolerance_bound(radius: float) -> float:
    """The impossibility threshold ``R(2R+1)/2`` of Koo (PODC'04)."""
    if radius <= 0:
        raise ValueError("radius must be positive")
    return 0.5 * radius * (2 * radius + 1)


def max_tolerable_multipath(radius: float) -> int:
    """Largest integer ``t`` with ``t < R(2R+1)/2`` (MultiPathRB is optimal)."""
    bound = koo_tolerance_bound(radius)
    t = int(math.ceil(bound)) - 1
    return max(t, 0)


def max_tolerable_neighborwatch(radius: float) -> int:
    """Largest integer ``t`` with ``t < ceil(R/2)^2`` (Theorem 3)."""
    if radius <= 0:
        raise ValueError("radius must be positive")
    return max(int(math.ceil(radius / 2.0)) ** 2 - 1, 0)


def max_tolerable_neighborwatch_2vote(radius: float) -> int:
    """Largest integer ``t`` with ``t < R^2/2`` (the 2-voting variant)."""
    if radius <= 0:
        raise ValueError("radius must be positive")
    bound = radius * radius / 2.0
    t = int(math.ceil(bound)) - 1
    return max(t, 0)


def expected_neighborhood_size(density: float, radius: float, *, norm: str = "l2") -> float:
    """Expected number of neighbors of a device in a random deployment.

    The paper quotes "approximately 80 neighbors" for 600 devices on a 20x20
    map with R = 4; that corresponds to the L-infinity (square) neighborhood
    ``density * (2R)^2``, which is the default the lying analysis uses.
    """
    if density <= 0 or radius <= 0:
        raise ValueError("density and radius must be positive")
    if norm == "linf":
        return density * (2.0 * radius) ** 2
    if norm == "l2":
        return density * math.pi * radius * radius
    raise ValueError(f"unknown norm {norm!r}")


def multipath_lying_fraction(tolerance: int, density: float, radius: float) -> float:
    """Fraction of lying devices MultiPathRB(t) tolerates, per the paper's rule.

    Section 6.1: "for t = 3, the theoretic analysis implies a tolerance of
    approximately 2.5%, and for t = 5, approximately 5%" with ~80 neighbors —
    i.e. ``t / E[|N|]`` with the L-infinity neighborhood size.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    neighbors = expected_neighborhood_size(density, radius, norm="linf")
    return tolerance / neighbors


def minimum_runtime_rounds(beta: float, diameter: int, message_space_bits: int) -> float:
    """The combined lower bound ``Omega(beta*D + log|Sigma|)`` (Section 1).

    ``message_space_bits`` is ``log2 |Sigma|``, i.e. the message length in bits.
    """
    if diameter < 0 or beta < 0 or message_space_bits < 0:
        raise ValueError("arguments must be non-negative")
    return beta * diameter + message_space_bits


def runtime_bound_rounds(
    beta: float,
    diameter: int,
    message_space_bits: int,
    *,
    slots_per_cycle: int = 1,
    phases_per_slot: int = 6,
    constant: float = 3.0,
) -> float:
    """An explicit upper-bound curve ``c * (beta*D + log|Sigma|)`` in rounds.

    Theorem 5 is asymptotic; for plotting against measurements we scale the
    bound by the schedule geometry (each unit of protocol progress costs one
    broadcast interval of ``phases_per_slot`` rounds, and a device is
    scheduled once per ``slots_per_cycle`` slots) and a constant ``c``.
    """
    if slots_per_cycle < 1 or phases_per_slot < 1:
        raise ValueError("schedule parameters must be >= 1")
    base = minimum_runtime_rounds(beta, diameter, message_space_bits)
    return constant * base * slots_per_cycle * phases_per_slot


def pipeline_speedup(beta: float, diameter: int, message_space_bits: int) -> float:
    """Speed-up of the pipelined bound over the naive composition.

    Composing the layers naively costs ``Theta(beta * D * log|Sigma|)`` while
    the paper's pipelined protocols cost ``Theta(beta*D + log|Sigma|)``
    (Section 5); the ratio quantifies how much the pipelining matters.
    """
    naive = max(beta, 1.0) * max(diameter, 1) * max(message_space_bits, 1)
    pipelined = minimum_runtime_rounds(max(beta, 1.0), diameter, message_space_bits)
    return naive / pipelined if pipelined > 0 else float("inf")
