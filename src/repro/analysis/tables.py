"""Plain-text and CSV rendering of experiment results.

The original figures are plots; since this reproduction runs headless the
experiment harness renders every figure's underlying data as an aligned ASCII
table (and optionally CSV), which is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import csv
import io
from typing import Mapping, Sequence

__all__ = ["format_table", "format_mapping", "to_csv", "write_csv"]


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or value == int(value):
            return f"{value:.0f}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None, *, title: str | None = None) -> str:
    """Render a list of row dictionaries as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_format_value(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_mapping(mapping: Mapping[str, object], *, title: str | None = None) -> str:
    """Render a flat mapping as ``key: value`` lines."""
    lines = [title] if title else []
    width = max((len(str(k)) for k in mapping), default=0)
    for key, value in mapping.items():
        lines.append(f"{str(key).ljust(width)} : {_format_value(value)}")
    return "\n".join(lines)


def to_csv(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Serialise rows to CSV text."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({c: row.get(c, "") for c in columns})
    return buffer.getvalue()


def write_csv(path, rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> None:
    """Write rows to a CSV file."""
    text = to_csv(rows, columns)
    with open(path, "w", encoding="utf8", newline="") as handle:
        handle.write(text)
