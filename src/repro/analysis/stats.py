"""Repetition and aggregation of simulation runs.

The paper repeats every experiment 6-20 times, discards outliers and reports
averages.  These helpers run a scenario factory across seeds, aggregate any
numeric metric with the same outlier-discarding policy, and compute simple
confidence intervals (mean +/- t * s / sqrt(n), via scipy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np
from scipy import stats as scipy_stats

from ..sim.results import RunResult

__all__ = ["Aggregate", "aggregate", "discard_outliers", "repeat_runs", "summarize_runs"]


@dataclass(frozen=True, slots=True)
class Aggregate:
    """Summary statistics of one metric across repetitions."""

    mean: float
    std: float
    count: int
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def as_dict(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "std": self.std,
            "count": float(self.count),
            "min": self.minimum,
            "max": self.maximum,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }


def discard_outliers(values: Sequence[float], *, z_threshold: float = 3.0) -> list[float]:
    """Drop values more than ``z_threshold`` standard deviations from the mean.

    With fewer than four samples nothing is discarded (the paper's runs keep
    at least a handful of repetitions).  The result is never empty: every
    sample within the threshold of the mean survives, and at least the
    samples closest to the mean always are — a degenerate threshold that
    would discard everything returns the input unchanged instead.
    """
    if z_threshold <= 0:
        raise ValueError("z_threshold must be positive")
    vals = [float(v) for v in values]
    if len(vals) < 4:
        return vals
    arr = np.asarray(vals)
    mean, std = arr.mean(), arr.std()
    if std == 0:
        return vals
    keep = np.abs(arr - mean) <= z_threshold * std
    if not keep.any():  # pragma: no cover - unreachable for finite z >= 1, kept as a guard
        return vals
    return [float(v) for v in arr[keep]]


def aggregate(values: Sequence[float], *, confidence: float = 0.95, drop_outliers: bool = True) -> Aggregate:
    """Aggregate a list of metric values into an :class:`Aggregate`.

    Edge cases are explicit rather than silently propagated:

    * an empty sequence raises ``ValueError`` (there is no meaningful mean);
    * non-finite samples (NaN/inf) raise ``ValueError`` — a NaN would
      otherwise poison every downstream statistic without a trace of where
      it entered;
    * a single value aggregates to a zero-width interval
      (``std == 0``, ``ci_low == mean == ci_high``);
    * constant values likewise give ``std == 0`` and a zero-width interval,
      with no samples discarded as outliers.
    """
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("cannot aggregate an empty list of values")
    if not all(math.isfinite(v) for v in vals):
        bad = [v for v in vals if not math.isfinite(v)]
        raise ValueError(f"cannot aggregate non-finite values: {bad[:5]}")
    if drop_outliers:
        vals = discard_outliers(vals)
    arr = np.asarray(vals, dtype=float)
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if len(arr) > 1 else 0.0
    if len(arr) > 1 and std > 0:
        sem = std / np.sqrt(len(arr))
        t_val = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=len(arr) - 1))
        half = t_val * sem
    else:
        half = 0.0
    return Aggregate(
        mean=mean,
        std=std,
        count=len(arr),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        ci_low=mean - half,
        ci_high=mean + half,
    )


def repeat_runs(
    run_factory: Callable[[int], RunResult], repetitions: int, *, base_seed: int = 0
) -> list[RunResult]:
    """Run ``run_factory(seed)`` for ``repetitions`` distinct seeds."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    return [run_factory(base_seed + i) for i in range(repetitions)]


def summarize_runs(
    results: Iterable[RunResult],
    metrics: Sequence[str] = (
        "rounds",
        "completion_fraction",
        "correctness_fraction",
        "correct_delivery_fraction",
        "honest_broadcasts",
        "adversary_broadcasts",
    ),
    *,
    drop_outliers: bool = True,
) -> Mapping[str, Aggregate]:
    """Aggregate the standard summary metrics across repetitions."""
    results = list(results)
    if not results:
        raise ValueError("no results to summarize")
    summaries = [r.summary() for r in results]
    out: dict[str, Aggregate] = {}
    for metric in metrics:
        out[metric] = aggregate([s[metric] for s in summaries], drop_outliers=drop_outliers)
    return out
