"""Metrics, theoretical bounds, aggregation and table rendering."""

from .metrics import (
    ComparisonRow,
    broadcasts_per_delivered_bit,
    delivery_latencies,
    latency_percentiles,
    max_tolerated_fraction,
    slowdown_factor,
)
from .stats import Aggregate, aggregate, discard_outliers, repeat_runs, summarize_runs
from .tables import format_mapping, format_table, to_csv, write_csv
from .theory import (
    expected_neighborhood_size,
    koo_tolerance_bound,
    max_tolerable_multipath,
    max_tolerable_neighborwatch,
    max_tolerable_neighborwatch_2vote,
    minimum_runtime_rounds,
    multipath_lying_fraction,
    pipeline_speedup,
    runtime_bound_rounds,
)

__all__ = [
    "ComparisonRow",
    "broadcasts_per_delivered_bit",
    "delivery_latencies",
    "latency_percentiles",
    "max_tolerated_fraction",
    "slowdown_factor",
    "Aggregate",
    "aggregate",
    "discard_outliers",
    "repeat_runs",
    "summarize_runs",
    "format_mapping",
    "format_table",
    "to_csv",
    "write_csv",
    "expected_neighborhood_size",
    "koo_tolerance_bound",
    "max_tolerable_multipath",
    "max_tolerable_neighborwatch",
    "max_tolerable_neighborwatch_2vote",
    "minimum_runtime_rounds",
    "multipath_lying_fraction",
    "pipeline_speedup",
    "runtime_bound_rounds",
]
