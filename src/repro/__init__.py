"""repro — reproduction of "Securing Every Bit: Authenticated Broadcast in Radio Networks".

The package provides:

* :mod:`repro.core` — the paper's protocols: the 2Bit- and 1Hop-Protocols,
  NeighborWatchRB (with the 2-voting variant), MultiPathRB, the epidemic
  baseline and the dual-mode digest construction;
* :mod:`repro.sim` — a slotted radio-network simulator (the WSNet stand-in)
  with unit-disk and Friis/SINR channel models and a scenario builder;
* :mod:`repro.topology` — grid, uniform and clustered deployments;
* :mod:`repro.adversary` — crash, jamming, lying and spoofing fault models;
* :mod:`repro.analysis` — metrics, theoretical bounds and result aggregation;
* :mod:`repro.store` — content-addressed on-disk cache of sweep results
  (serializable, resumable, incremental experiments);
* :mod:`repro.registry` — open, string-keyed component registries (protocols,
  channels, deployments, fault plans, metrics, drivers, experiment specs);
* :mod:`repro.experiments` — the paper's evaluation as declarative
  :class:`~repro.experiments.spec.ExperimentSpec` data run by generic drivers
  (``python -m repro.experiments list`` for the index, ``run --spec FILE``
  for user-authored scenarios).

Quickstart::

    from repro import ScenarioConfig, run_scenario, uniform_deployment

    deployment = uniform_deployment(200, 20, 20, rng=1)
    config = ScenarioConfig(protocol="neighborwatch", radius=4.0, message_length=4, seed=1)
    result = run_scenario(deployment, config)
    print(result.summary())
"""

from .core import (
    EpidemicNode,
    MultiPathConfig,
    MultiPathNode,
    NeighborWatchConfig,
    NeighborWatchNode,
    OneHopReceiver,
    OneHopSender,
    TwoBitReceiver,
    TwoBitSender,
    combine_dual_mode,
    polynomial_digest,
)
from .sim import (
    FaultPlan,
    RunResult,
    ScenarioConfig,
    Simulation,
    build_simulation,
    canonical_channel,
    canonical_protocol,
    run_scenario,
)
from .store import CachingSweepExecutor, ResultStore
from .topology import (
    Deployment,
    GridSpec,
    GridTopology,
    clustered_deployment,
    grid_jittered_deployment,
    uniform_deployment,
)

__version__ = "1.0.0"

__all__ = [
    "EpidemicNode",
    "MultiPathConfig",
    "MultiPathNode",
    "NeighborWatchConfig",
    "NeighborWatchNode",
    "OneHopReceiver",
    "OneHopSender",
    "TwoBitReceiver",
    "TwoBitSender",
    "combine_dual_mode",
    "polynomial_digest",
    "FaultPlan",
    "RunResult",
    "ScenarioConfig",
    "Simulation",
    "build_simulation",
    "canonical_channel",
    "canonical_protocol",
    "run_scenario",
    "CachingSweepExecutor",
    "ResultStore",
    "Deployment",
    "GridSpec",
    "GridTopology",
    "clustered_deployment",
    "grid_jittered_deployment",
    "uniform_deployment",
    "__version__",
]
