"""Offline integrity scan and repair for :class:`~repro.store.store.ResultStore` dirs.

The store's loader already *tolerates* damage — torn or checksum-failed lines
are skipped, counted in :class:`~repro.store.store.StoreStats` and reported
through :class:`~repro.store.store.StoreIntegrityWarning` — but tolerating is
not the same as cleaning up: a damaged line is re-skipped (and re-warned
about) on every cold load, and its bytes sit in the shard forever.  This
module is the mop:

* :func:`scan_store` walks every shard and classifies each line with the same
  :func:`~repro.store.store.parse_shard_line` the loader uses, so "damaged"
  means exactly the same thing online and offline;
* :func:`repair_store` quarantines damaged raw lines **verbatim** to a
  ``<shard>.jsonl.quarantine`` sidecar (append-mode — repeated repairs
  accumulate, nothing is ever deleted) and rewrites the shard atomically
  (temp file + ``os.replace``) with only the good lines, byte-for-byte
  unchanged.  A crash mid-repair leaves the shard either old or new, never
  torn, and the quarantine sidecar at worst holds a duplicate.

``python -m repro.store verify|repair <cache_dir>`` (:mod:`repro.store.__main__`)
is the command-line face of these functions.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from .store import (
    _META_NAME,
    _SHARD_DIR,
    SUPPORTED_SCHEMA_VERSIONS,
    ShardLineError,
    parse_shard_line,
)

__all__ = ["ShardReport", "scan_store", "repair_store", "quarantine_path"]

_QUARANTINE_SUFFIX = ".quarantine"


def quarantine_path(shard_path: Path) -> Path:
    """The sidecar file that receives damaged lines quarantined from ``shard_path``."""
    return shard_path.with_name(shard_path.name + _QUARANTINE_SUFFIX)


@dataclass(slots=True)
class ShardReport:
    """Line-level verdict for one shard file."""

    path: Path
    good_lines: int = 0
    torn_lines: int = 0
    checksum_failures: int = 0
    #: Raw damaged lines, verbatim (no trailing newline), in file order.
    damaged: list[str] = field(default_factory=list)

    @property
    def damaged_lines(self) -> int:
        return self.torn_lines + self.checksum_failures

    def summary(self) -> str:
        verdict = "clean" if not self.damaged_lines else (
            f"{self.torn_lines} torn, {self.checksum_failures} checksum-failed"
        )
        return f"{self.path.name}: {self.good_lines} good line(s), {verdict}"


def _check_meta(cache_dir: Path) -> None:
    meta_path = cache_dir / _META_NAME
    if not meta_path.exists():
        return
    try:
        meta = json.loads(meta_path.read_text(encoding="utf8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable store metadata at {meta_path}: {exc}") from exc
    version = meta.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise ValueError(
            f"result store at {cache_dir} has schema version {version!r}; "
            f"this build reads versions {SUPPORTED_SCHEMA_VERSIONS}"
        )


def _scan_shard(path: Path) -> tuple[ShardReport, list[str]]:
    """Classify every line of one shard; returns the report and the good raw lines."""
    report = ShardReport(path=path)
    good: list[str] = []
    with open(path, "r", encoding="utf8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue  # blank separators carry no data either way
            try:
                parse_shard_line(line)
            except ShardLineError as exc:
                if exc.reason == "checksum":
                    report.checksum_failures += 1
                else:
                    report.torn_lines += 1
                report.damaged.append(line)
            else:
                report.good_lines += 1
                good.append(line)
    return report, good


def _shard_files(cache_dir: Path) -> Iterator[Path]:
    shard_dir = cache_dir / _SHARD_DIR
    if shard_dir.is_dir():
        # Sorted for stable report order; the ".jsonl" glob naturally skips
        # ".jsonl.quarantine" sidecars and ".jsonl.tmp" leftovers.
        yield from sorted(shard_dir.glob("*.jsonl"))


def scan_store(cache_dir: str | os.PathLike) -> list[ShardReport]:
    """Classify every line of every shard under ``cache_dir`` (read-only)."""
    cache_dir = Path(cache_dir)
    _check_meta(cache_dir)
    return [_scan_shard(path)[0] for path in _shard_files(cache_dir)]


def repair_store(cache_dir: str | os.PathLike) -> list[ShardReport]:
    """Quarantine damaged lines and rewrite damaged shards atomically.

    Good lines are preserved byte-for-byte (no re-encoding, no version
    upgrade), so a repaired store replays exactly the results it replayed
    before, minus the lines that were never loadable anyway.  Clean shards
    are not touched at all.
    """
    cache_dir = Path(cache_dir)
    _check_meta(cache_dir)
    reports = []
    for path in _shard_files(cache_dir):
        report, good = _scan_shard(path)
        reports.append(report)
        if not report.damaged_lines:
            continue
        sidecar = quarantine_path(path)
        with open(sidecar, "a", encoding="utf8") as handle:
            for line in report.damaged:
                handle.write(line + "\n")
        if good:
            tmp_path = path.with_suffix(".jsonl.tmp")
            with open(tmp_path, "w", encoding="utf8") as handle:
                for line in good:
                    handle.write(line + "\n")
            os.replace(tmp_path, path)
        else:
            os.unlink(path)
    return reports
