"""A sweep executor that answers from the result store before simulating.

:class:`CachingSweepExecutor` wraps a plain
:class:`~repro.sim.runner.SweepExecutor` and a :class:`~repro.store.store.ResultStore`.
For every ``(task, repetition)`` pair of a sweep it first checks the store by
the pair's :meth:`~repro.sim.runner.SweepTask.fingerprint`; only the misses
are dispatched (serially or over the wrapped executor's process pool), and
each miss is persisted the moment its result lands.  Interrupting a sweep —
Ctrl-C, crash, OOM-kill — therefore loses only in-flight repetitions, and the
next invocation resumes from everything already on disk.  A Ctrl-C is caught
and re-raised as :class:`~repro.sim.supervision.SweepInterrupted` (itself a
``KeyboardInterrupt``) carrying how much landed and where, so front ends can
print a resume hint instead of a bare traceback.

Because repetitions are bit-identical in their seed, a warm cache returns
results byte-identical to what the wrapped executor would compute, for every
worker count and under every fault-recovery path of the executor's backend
(:mod:`repro.sim.backends`); the cache is purely a latency knob, exactly like
``--workers``.  After each persist the wrapped executor's ``notify_persisted``
hook is told which shard file the record landed in — a no-op for real
backends, the injection point for the chaos backend's truncate-shard fault.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..sim.results import RunResult
from ..sim.runner import SweepExecutor, SweepTask
from ..sim.supervision import SweepInterrupted
from .store import ResultStore

__all__ = ["CachingSweepExecutor"]


class CachingSweepExecutor:
    """Drop-in :class:`SweepExecutor` front end backed by a :class:`ResultStore`.

    Parameters
    ----------
    store:
        The result store consulted before — and fed after — every simulation.
    executor:
        The executor that runs cache misses; a serial ``SweepExecutor(0)`` is
        created when omitted.  The wrapped executor is *borrowed*: closing
        this object closes it only when it was created here.
    """

    def __init__(
        self, store: ResultStore, executor: Optional[SweepExecutor] = None
    ) -> None:
        self.store = store
        self._owns_executor = executor is None
        self.executor = executor if executor is not None else SweepExecutor(0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CachingSweepExecutor(store={self.store!r}, executor={self.executor!r})"

    # -- SweepExecutor-compatible surface ------------------------------------------------
    @property
    def workers(self) -> int:
        return self.executor.workers

    @property
    def chunk_size(self) -> int:
        return self.executor.chunk_size

    @property
    def parallel(self) -> bool:
        return self.executor.parallel

    def close(self) -> None:
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "CachingSweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution -----------------------------------------------------------------------
    def run(self, tasks: Sequence[SweepTask]) -> list[list[RunResult]]:
        """Run every repetition of every task, reusing stored results.

        Returns exactly what ``SweepExecutor.run`` would: one inner list per
        task, repetitions in seed order.  Misses are persisted to the store
        as they complete.
        """
        tasks = list(tasks)
        results: list[list[Optional[RunResult]]] = [
            [None] * task.repetitions for task in tasks
        ]
        miss_jobs: list[tuple[SweepTask, int]] = []
        miss_slots: list[tuple[int, int, str]] = []
        for task_index, task in enumerate(tasks):
            for repetition in range(task.repetitions):
                fingerprint = task.fingerprint(repetition)
                cached = self.store.get(fingerprint)
                if cached is not None:
                    results[task_index][repetition] = cached
                else:
                    miss_jobs.append((task, repetition))
                    miss_slots.append((task_index, repetition, fingerprint))
        notify = getattr(self.executor, "notify_persisted", None)
        persisted = 0
        try:
            for position, result in self.executor.iter_jobs(miss_jobs):
                task_index, repetition, fingerprint = miss_slots[position]
                if not self.store.contains(fingerprint):
                    # Queue-backed sweeps persist on the worker side; writing
                    # the identical bytes again (and firing the persisted
                    # hook) would just double the shard line.
                    self.store.put(fingerprint, result)
                    persisted += 1
                    if notify is not None:
                        notify(fingerprint, self.store.shard_path_for(fingerprint))
                results[task_index][repetition] = result
        except KeyboardInterrupt as exc:
            if isinstance(exc, SweepInterrupted):
                raise
            # Everything persisted so far survives; the next run with the
            # same cache dir resumes from it.
            raise SweepInterrupted(
                completed=persisted,
                pending=len(miss_jobs) - persisted,
                cache_dir=self.store.cache_dir,
            ) from exc
        return results  # type: ignore[return-value]

    def run_task(self, task: SweepTask) -> list[RunResult]:
        """Run a single task's repetitions (convenience wrapper around :meth:`run`)."""
        return self.run([task])[0]
