"""Store backends: the ``local`` default and the multi-process ``shared`` variant.

:data:`repro.registry.STORE_BACKENDS` is the seam the service fabric plugs
into: every component that opens a cache directory (the ``run`` CLI, worker
daemons, the submit front end) resolves the store *class* by key, so a queue
and its workers agree on the append discipline by configuration instead of
convention.

``local``
    The plain :class:`~repro.store.store.ResultStore`.  Appends are already
    single ``O_APPEND`` writes (whole lines, never interleaved bytes), but the
    in-memory shard index is loaded once and trusted forever — correct for one
    process owning the cache, stale the moment another process appends.

``shared``
    :class:`SharedResultStore` — safe for many processes appending to one
    cache directory concurrently:

    * **Freshness**: every shard access re-``stat``\\ s the shard file; when
      ``(st_size, st_mtime_ns)`` moved, the cached index is dropped and the
      shard re-read, so another worker's results become visible without any
      notification channel.
    * **Append locking**: writes take an ``flock`` on a per-shard ``.lock``
      file.  The single-``write`` append is atomic on local filesystems even
      without it; the lock extends the guarantee to filesystems with weaker
      append semantics and serializes the read-back that follows.
    * **Metadata**: the schema marker is published through a pid-unique temp
      file, so racing first-writers cannot clobber each other's ``os.replace``
      source mid-flight.

    The CRC-per-line integrity checks of :mod:`repro.store.integrity` apply
    unchanged — a torn line from a crashed writer is skipped and counted, and
    duplicate fingerprints (two processes racing one repetition) are benign
    because both computed identical bytes and the later line wins on load.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import Iterator, Optional

from ..registry import STORE_BACKENDS, register_store_backend
from ..sim.results import RunResult
from .store import _SHARD_DIR, ResultStore, _Entry

try:  # pragma: no cover - posix-only import guard
    import fcntl
except ImportError:  # pragma: no cover - non-posix fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["SharedResultStore"]

STORE_BACKENDS.register("local", ResultStore, aliases=("default",))


@contextlib.contextmanager
def _locked(path: Path) -> Iterator[None]:
    """Hold an exclusive ``flock`` on ``path`` (no-op where flock is missing)."""
    if fcntl is None:  # pragma: no cover - non-posix fallback
        yield
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        os.close(fd)  # closing releases the lock


@register_store_backend("shared", aliases=("multiprocess",))
class SharedResultStore(ResultStore):
    """A :class:`ResultStore` whose cache directory is shared between processes.

    See the module docstring for the three disciplines added on top of the
    base store.  The trade-off is read amplification: a shard written by
    another process is re-parsed on next access (and its damaged lines, if
    any, re-counted in :attr:`stats`), so the ``local`` backend stays the
    default for single-process sweeps.
    """

    def __init__(self, cache_dir: str | os.PathLike, *, readonly: bool = False) -> None:
        # (st_size, st_mtime_ns) of each shard at the time its index loaded.
        self._stamps: dict[str, Optional[tuple[int, int]]] = {}
        super().__init__(cache_dir, readonly=readonly)

    def _stamp(self, shard: str) -> Optional[tuple[int, int]]:
        try:
            stat = os.stat(self._shard_path(shard))
        except FileNotFoundError:
            return None
        return (stat.st_size, stat.st_mtime_ns)

    def _lock_path(self, shard: str) -> Path:
        return self.cache_dir / _SHARD_DIR / f"{shard}.lock"

    def _load_shard(self, shard: str) -> dict[str, _Entry]:
        stamp = self._stamp(shard)
        if shard in self._shards and self._stamps.get(shard) != stamp:
            # Another process appended since we indexed this shard: re-read.
            del self._shards[shard]
        if shard not in self._shards:
            self._stamps[shard] = stamp
        return super()._load_shard(shard)

    def put(self, fingerprint: str, result: RunResult) -> None:
        shard = self._shard_key(fingerprint)
        with _locked(self._lock_path(shard)):
            super().put(fingerprint, result)
            self._stamps[shard] = self._stamp(shard)

    def _write_meta(self) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        meta_path = self.cache_dir / "store-meta.json"
        if meta_path.exists():
            return
        import json

        from .store import SCHEMA_VERSION

        tmp_path = meta_path.with_name(f"store-meta.json.tmp.{os.getpid()}")
        tmp_path.write_text(
            json.dumps({"schema_version": SCHEMA_VERSION}, indent=2) + "\n", encoding="utf8"
        )
        os.replace(tmp_path, meta_path)
