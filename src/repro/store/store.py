"""Content-addressed, on-disk store of simulation results.

The store maps the :meth:`repro.sim.runner.SweepTask.fingerprint` of a
``(task, repetition)`` pair to the serialized :class:`~repro.sim.results.RunResult`
of that repetition.  Because every repetition is bit-identical in its seed, a
stored result is *the* result — re-running the simulation can only reproduce
the same bytes — so experiments, benchmarks and protocol comparisons can all
share one cache and an interrupted paper-scale sweep resumes from whatever
repetitions already landed on disk.

On-disk layout
--------------
::

    <cache_dir>/
        store-meta.json          # {"schema_version": 1}
        shards/
            <fp[:2]>.jsonl       # one JSON object per line

Records are sharded by the first two hex digits of the fingerprint (256
shards) so that no single file grows unboundedly and prune rewrites stay
small.  Each line is ``{"v": 2, "fp": ..., "ts": ..., "crc": ..., "record":
{...}}``; appends are single ``write`` calls on files opened in append mode,
so concurrent writers interleave whole lines, and the loader skips — and
*counts* — any torn, undecodable or checksum-failed line instead of failing.
The metadata file is written atomically (temp file + ``os.replace``); so are
shard rewrites during :meth:`ResultStore.prune`.

Integrity
---------
``crc`` is a CRC-32 over ``"<fp>:<canonical record JSON>"`` — it binds the
record bytes to the fingerprint they claim to answer, so a flipped bit (torn
write, disk corruption, a record spliced under the wrong key) is detected at
load time instead of silently replaying as a cached result.  Version-1 lines
predate the checksum and load unverified.  Skipped lines are counted in
:attr:`ResultStore.stats` (``torn_lines`` / ``checksum_failures``) and a
:class:`StoreIntegrityWarning` names the shard file; ``python -m repro.store
verify|repair <cache_dir>`` (:mod:`repro.store.integrity`) scans, quarantines
and atomically rewrites damaged shards.

Versioning
----------
``SCHEMA_VERSION`` covers the line format *and* the embedded
``RunResult.to_record`` layout; ``SUPPORTED_SCHEMA_VERSIONS`` lists what this
build still reads (version 1 — the pre-checksum layout — loads as-is, so old
caches keep replaying).  A cache directory created under an *unsupported*
schema version is refused at open time rather than silently misread; records
whose per-line version is unknown are treated as absent.
"""

from __future__ import annotations

import json
import os
import time
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from ..sim.results import RunResult

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "StoreStats",
    "StoreIntegrityWarning",
    "ShardLineError",
    "parse_shard_line",
    "record_checksum",
    "ResultStore",
]

#: Version of the on-disk layout (line shape + embedded record layout).
SCHEMA_VERSION = 2
#: Every schema version this build reads (old shards keep loading).
SUPPORTED_SCHEMA_VERSIONS = (1, 2)

_META_NAME = "store-meta.json"
_SHARD_DIR = "shards"


class StoreIntegrityWarning(UserWarning):
    """A shard contained torn or checksum-failed lines (named in the message)."""


class ShardLineError(ValueError):
    """One unreadable shard line; ``reason`` is ``"torn"`` or ``"checksum"``."""

    def __init__(self, reason: str, detail: str) -> None:
        self.reason = reason
        super().__init__(detail)


def record_checksum(fingerprint: str, record_json: str) -> str:
    """CRC-32 (hex) binding a record's canonical JSON to its fingerprint."""
    data = f"{fingerprint}:{record_json}".encode("utf8")
    return format(zlib.crc32(data) & 0xFFFFFFFF, "08x")


def parse_shard_line(line: str) -> tuple[str, dict, float]:
    """Parse one shard line into ``(fingerprint, record, stored_at)``.

    Raises :class:`ShardLineError` with ``reason="torn"`` for undecodable or
    malformed lines (including unknown line versions — unreadable for this
    build either way) and ``reason="checksum"`` for a version-2 line whose
    CRC does not reproduce.  Shared with :mod:`repro.store.integrity`, so the
    loader and the ``verify``/``repair`` CLI agree on what "damaged" means.
    """
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ShardLineError("torn", f"undecodable JSON: {exc}") from exc
    if not isinstance(obj, dict) or obj.get("v") not in SUPPORTED_SCHEMA_VERSIONS:
        raise ShardLineError("torn", f"not a supported record line (v={obj.get('v') if isinstance(obj, dict) else None!r})")
    fingerprint = obj.get("fp")
    record = obj.get("record")
    if not isinstance(fingerprint, str) or not isinstance(record, dict):
        raise ShardLineError("torn", "missing fp/record fields")
    if obj.get("v") >= 2:
        stored = obj.get("crc")
        expected = record_checksum(
            fingerprint, json.dumps(record, sort_keys=True, separators=(",", ":"))
        )
        if stored != expected:
            raise ShardLineError(
                "checksum", f"CRC mismatch for {fingerprint[:12]}…: stored {stored!r}, computed {expected!r}"
            )
    return fingerprint, record, float(obj.get("ts", 0.0))


@dataclass(slots=True)
class StoreStats:
    """Cumulative counters of one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Lines skipped at load because they were undecodable, malformed, or of
    #: an unknown version (interrupted appends, disk damage).
    torn_lines: int = 0
    #: Version-2 lines whose CRC did not reproduce (bit rot, spliced records).
    checksum_failures: int = 0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "torn_lines": self.torn_lines,
            "checksum_failures": self.checksum_failures,
        }

    def reset(self) -> None:
        """Zero the counters (e.g. between phases of a benchmark capture)."""
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.torn_lines = 0
        self.checksum_failures = 0


@dataclass(slots=True)
class _Entry:
    record: dict
    stored_at: float
    last_used: float = field(default=0.0)


class ResultStore:
    """A content-addressed cache of :class:`RunResult` records.

    Parameters
    ----------
    cache_dir:
        Directory holding the store (created on first write if missing).
    readonly:
        Refuse writes (useful for sharing a reference cache).

    The store keeps an in-memory index per shard, loaded lazily on first
    access, so repeated :meth:`get` calls after warm-up cost a dict lookup.
    ``hits``/``misses``/``writes`` are tracked in :attr:`stats`.
    """

    def __init__(self, cache_dir: str | os.PathLike, *, readonly: bool = False) -> None:
        self.cache_dir = Path(cache_dir)
        self.readonly = bool(readonly)
        self.stats = StoreStats()
        self._shards: dict[str, dict[str, _Entry]] = {}
        self._check_schema()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.cache_dir)!r}, entries={len(self)})"

    # -- schema handling ---------------------------------------------------------------
    def _check_schema(self) -> None:
        meta_path = self.cache_dir / _META_NAME
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text(encoding="utf8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise ValueError(f"unreadable store metadata at {meta_path}: {exc}") from exc
            version = meta.get("schema_version")
            if version not in SUPPORTED_SCHEMA_VERSIONS:
                raise ValueError(
                    f"result store at {self.cache_dir} has schema version {version!r}; "
                    f"this build reads versions {SUPPORTED_SCHEMA_VERSIONS} — use a fresh --cache-dir"
                )

    def _write_meta(self) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        meta_path = self.cache_dir / _META_NAME
        if meta_path.exists():
            return
        tmp_path = meta_path.with_suffix(".json.tmp")
        tmp_path.write_text(
            json.dumps({"schema_version": SCHEMA_VERSION}, indent=2) + "\n", encoding="utf8"
        )
        os.replace(tmp_path, meta_path)

    # -- shard handling ----------------------------------------------------------------
    @staticmethod
    def _shard_key(fingerprint: str) -> str:
        if len(fingerprint) < 2:
            raise ValueError(f"fingerprint too short: {fingerprint!r}")
        return fingerprint[:2].lower()

    def _shard_path(self, shard: str) -> Path:
        return self.cache_dir / _SHARD_DIR / f"{shard}.jsonl"

    def shard_path_for(self, fingerprint: str) -> Path:
        """The shard file that holds (or would hold) ``fingerprint``."""
        return self._shard_path(self._shard_key(fingerprint))

    def _load_shard(self, shard: str) -> dict[str, _Entry]:
        cached = self._shards.get(shard)
        if cached is not None:
            return cached
        entries: dict[str, _Entry] = {}
        path = self._shard_path(shard)
        torn = checksum = 0
        if path.exists():
            with open(path, "r", encoding="utf8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        fingerprint, record, stored_at = parse_shard_line(line)
                    except ShardLineError as exc:
                        # Damaged line (interrupted append, disk corruption):
                        # skip and count — the repetition simply counts as
                        # uncached and will be recomputed.
                        if exc.reason == "checksum":
                            checksum += 1
                        else:
                            torn += 1
                        continue
                    # Later lines win: a duplicated fingerprint (two processes
                    # racing the same repetition) stores identical bits anyway.
                    entries[fingerprint] = _Entry(record=record, stored_at=stored_at)
        if torn or checksum:
            self.stats.torn_lines += torn
            self.stats.checksum_failures += checksum
            warnings.warn(
                f"result store shard {path} has {torn} torn and {checksum} "
                f"checksum-failed line(s); damaged repetitions will be recomputed "
                f"(run `python -m repro.store repair {self.cache_dir}` to quarantine them)",
                StoreIntegrityWarning,
                stacklevel=2,
            )
        self._shards[shard] = entries
        return entries

    # -- the mapping API ---------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[RunResult]:
        """The stored result for ``fingerprint``, or ``None`` (counted in stats)."""
        entry = self._load_shard(self._shard_key(fingerprint)).get(fingerprint)
        if entry is None:
            self.stats.misses += 1
            return None
        entry.last_used = time.time()
        self.stats.hits += 1
        return RunResult.from_record(entry.record)

    def put(self, fingerprint: str, result: RunResult) -> None:
        """Persist ``result`` under ``fingerprint`` (append, durable per call)."""
        if self.readonly:
            raise PermissionError(f"result store at {self.cache_dir} is read-only")
        record = result.to_record()
        now = time.time()
        self._write_meta()
        shard = self._shard_key(fingerprint)
        path = self._shard_path(shard)
        path.parent.mkdir(parents=True, exist_ok=True)
        record_json = json.dumps(record, sort_keys=True, separators=(",", ":"))
        line = json.dumps(
            {
                "v": SCHEMA_VERSION,
                "fp": fingerprint,
                "ts": now,
                "crc": record_checksum(fingerprint, record_json),
                "record": record,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        # One os.write of the whole encoded line on an O_APPEND descriptor —
        # not a buffered text handle, whose ~8 KB buffer would split large
        # records into several writes that concurrent appenders could
        # interleave.  On local filesystems an O_APPEND write lands whole,
        # so parallel processes sharing a cache dir interleave lines, not
        # bytes; the torn-line skip on load covers a crash mid-write.
        data = (line + "\n").encode("utf8")
        fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        entries = self._load_shard(shard)
        entries[fingerprint] = _Entry(record=record, stored_at=now, last_used=now)
        self.stats.writes += 1

    def contains(self, fingerprint: str) -> bool:
        """Whether a result is stored for ``fingerprint`` (does not touch stats)."""
        return fingerprint in self._load_shard(self._shard_key(fingerprint))

    def fingerprints(self) -> Iterator[str]:
        """Iterate over every stored fingerprint (loads all shards)."""
        self._load_all_shards()
        for entries in self._shards.values():
            yield from entries

    def __len__(self) -> int:
        self._load_all_shards()
        return sum(len(entries) for entries in self._shards.values())

    def _load_all_shards(self) -> None:
        shard_dir = self.cache_dir / _SHARD_DIR
        if shard_dir.is_dir():
            for path in shard_dir.glob("*.jsonl"):
                self._load_shard(path.stem)

    # -- maintenance -------------------------------------------------------------------
    def prune(self, max_entries: int) -> int:
        """Shrink the store to at most ``max_entries`` results; returns the count removed.

        Eviction is LRU-style: entries are ranked by the later of their write
        time and their last in-process read, oldest evicted first.  (Reads
        from other processes are not tracked — the ranking degrades to
        insertion order for entries this process never touched.)  Survivors
        are rewritten shard-by-shard through a temp file and ``os.replace``,
        so a crash mid-prune leaves every shard either old or new, never torn.
        """
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self._load_all_shards()
        ranked = [
            (max(entry.stored_at, entry.last_used), shard, fingerprint)
            for shard, entries in self._shards.items()
            for fingerprint, entry in entries.items()
        ]
        excess = len(ranked) - max_entries
        if excess <= 0:
            return 0
        if self.readonly:
            raise PermissionError(f"result store at {self.cache_dir} is read-only")
        ranked.sort()
        doomed: dict[str, set[str]] = {}
        for _, shard, fingerprint in ranked[:excess]:
            doomed.setdefault(shard, set()).add(fingerprint)
        for shard, fingerprints in doomed.items():
            entries = self._shards[shard]
            for fingerprint in fingerprints:
                del entries[fingerprint]
            self._rewrite_shard(shard)
        return excess

    def _rewrite_shard(self, shard: str) -> None:
        path = self._shard_path(shard)
        entries = self._shards.get(shard, {})
        if not entries:
            if path.exists():
                os.unlink(path)
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = path.with_suffix(".jsonl.tmp")
        with open(tmp_path, "w", encoding="utf8") as handle:
            for fingerprint, entry in entries.items():
                record_json = json.dumps(entry.record, sort_keys=True, separators=(",", ":"))
                handle.write(
                    json.dumps(
                        {
                            "v": SCHEMA_VERSION,
                            "fp": fingerprint,
                            "ts": entry.stored_at,
                            "crc": record_checksum(fingerprint, record_json),
                            "record": entry.record,
                        },
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                    + "\n"
                )
        os.replace(tmp_path, path)

    def clear(self) -> None:
        """Drop every stored result (the directory and meta file survive)."""
        if self.readonly:
            raise PermissionError(f"result store at {self.cache_dir} is read-only")
        shard_dir = self.cache_dir / _SHARD_DIR
        if shard_dir.is_dir():
            for path in shard_dir.glob("*.jsonl"):
                os.unlink(path)
        self._shards = {}
