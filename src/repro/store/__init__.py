"""Content-addressed result store and the caching sweep executor.

Every experiment of the reproduction is a sweep of seeded, bit-reproducible
``(task, repetition)`` pairs (:mod:`repro.sim.runner`).  This package turns
that determinism into incrementality:

* :class:`ResultStore` — an on-disk, schema-versioned cache of serialized
  :class:`~repro.sim.results.RunResult` records, keyed by
  :meth:`~repro.sim.runner.SweepTask.fingerprint` and sharded into JSON-lines
  files under a cache directory;
* :class:`CachingSweepExecutor` — a drop-in executor that answers repetitions
  from the store and persists misses as they complete, making every sweep
  resumable and every rerun incremental.

See ROADMAP.md ("Infrastructure notes") for the fingerprint scheme and the
cache layout, and ``python -m repro.experiments <ID> --cache-dir PATH`` for
the command-line entry point.
"""

from .executor import CachingSweepExecutor
from .store import SCHEMA_VERSION, ResultStore, StoreStats

__all__ = ["CachingSweepExecutor", "ResultStore", "StoreStats", "SCHEMA_VERSION"]
