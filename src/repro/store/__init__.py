"""Content-addressed result store and the caching sweep executor.

Every experiment of the reproduction is a sweep of seeded, bit-reproducible
``(task, repetition)`` pairs (:mod:`repro.sim.runner`).  This package turns
that determinism into incrementality:

* :class:`ResultStore` — an on-disk, schema-versioned cache of serialized
  :class:`~repro.sim.results.RunResult` records, keyed by
  :meth:`~repro.sim.runner.SweepTask.fingerprint` and sharded into JSON-lines
  files under a cache directory;
* :class:`CachingSweepExecutor` — a drop-in executor that answers repetitions
  from the store and persists misses as they complete, making every sweep
  resumable and every rerun incremental;
* :mod:`repro.store.integrity` — offline ``verify``/``repair`` tooling for
  cache directories (``python -m repro.store verify|repair <cache_dir>``),
  sharing the loader's line parser so online and offline agree on "damaged";
* :mod:`repro.store.shared` — the :data:`~repro.registry.STORE_BACKENDS`
  seam: the plain store as ``local`` plus :class:`SharedResultStore`
  (``shared``), whose freshness re-stats and per-shard append locks make one
  cache directory safe for many concurrent worker processes (service mode).

See ROADMAP.md ("Infrastructure notes") for the fingerprint scheme and the
cache layout, and ``python -m repro.experiments <ID> --cache-dir PATH`` for
the command-line entry point.
"""

from .executor import CachingSweepExecutor
from .integrity import ShardReport, repair_store, scan_store
from .shared import SharedResultStore
from .store import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    ResultStore,
    StoreIntegrityWarning,
    StoreStats,
)

__all__ = [
    "CachingSweepExecutor",
    "ResultStore",
    "SharedResultStore",
    "StoreStats",
    "StoreIntegrityWarning",
    "ShardReport",
    "scan_store",
    "repair_store",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
]
