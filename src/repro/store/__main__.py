"""Command-line integrity tooling for result-store cache directories.

Usage::

    python -m repro.store verify <cache_dir>   # scan, report, exit 1 on damage
    python -m repro.store repair <cache_dir>   # quarantine damaged lines, rewrite shards

``verify`` is read-only: it classifies every shard line with the same parser
the store's loader uses and exits nonzero when any line is torn or fails its
checksum, so CI (and nervous humans) can gate on cache health.  ``repair``
moves damaged raw lines verbatim into ``<shard>.jsonl.quarantine`` sidecars
and rewrites each damaged shard atomically with only its good lines — after
which ``verify`` on the same directory exits 0.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .integrity import quarantine_path, repair_store, scan_store

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Verify or repair a result-store cache directory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
        ("verify", "scan every shard and report damaged lines (read-only)"),
        ("repair", "quarantine damaged lines and rewrite damaged shards"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("cache_dir", help="result store directory (as passed to --cache-dir)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "verify":
            reports = scan_store(args.cache_dir)
        else:
            reports = repair_store(args.cache_dir)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    torn = sum(r.torn_lines for r in reports)
    checksum = sum(r.checksum_failures for r in reports)
    good = sum(r.good_lines for r in reports)
    for report in reports:
        if report.damaged_lines:
            print(report.summary())
            if args.command == "repair":
                print(f"  quarantined {report.damaged_lines} line(s) -> {quarantine_path(report.path)}")
    print(
        f"{args.command}: {len(reports)} shard(s), {good} good line(s), "
        f"{torn} torn, {checksum} checksum-failed"
    )
    if args.command == "verify" and (torn or checksum):
        print("store is damaged; run `python -m repro.store repair` to quarantine bad lines")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
