"""Seeded random-number management for reproducible simulations.

Every stochastic component of the simulator (deployment generation, channel
losses, adversary decisions) draws from a generator derived from a single
experiment seed, so that a run is fully determined by its configuration.  The
derivation uses NumPy's ``SeedSequence`` spawning, which guarantees
statistically independent streams per component and per device.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngFactory"]


class RngFactory:
    """Derive independent, reproducible random generators from a root seed."""

    def __init__(self, seed: int | None = 0) -> None:
        self._root = np.random.SeedSequence(seed)
        self._seed = seed
        self._children: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int | None:
        return self._seed

    def generator(self, name: str) -> np.random.Generator:
        """A named stream; repeated calls with the same name return the same generator."""
        if name not in self._children:
            # Derive deterministically from the name so that the set of streams
            # requested (and their order) does not influence each other.
            digest = np.frombuffer(name.encode("utf8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=(int(digest.sum()), len(name))
            )
            self._children[name] = np.random.default_rng(child)
        return self._children[name]

    def node_generator(self, node_id: int) -> np.random.Generator:
        """A per-device stream (used by randomised adversaries)."""
        return self.generator(f"node-{node_id}")

    def spawn(self, name: str) -> "RngFactory":
        """A child factory with an independent root, for nested experiments."""
        child_seed = int(self.generator(f"spawn-{name}").integers(0, 2**31 - 1))
        return RngFactory(child_seed)
