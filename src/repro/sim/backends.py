"""Pluggable executor backends for the sweep fabric.

An :class:`ExecutorBackend` turns a wave of supervised
:class:`~repro.sim.supervision.JobAttempt`s into
:class:`~repro.sim.supervision.AttemptOutcome`s.  Backends are registry
plugins (:data:`repro.registry.EXECUTOR_BACKENDS`) exactly like protocols and
channels — the multi-host work-queue backend of ROADMAP item 2 is exactly
that: :class:`~repro.service.backend.QueueBackend` registers as ``queue``
from its home module and dispatches attempts to worker daemons through a
durable :class:`~repro.service.queue.WorkQueue` instead of running them here.
The local backends:

``serial``
    Runs attempts inline.  Timeouts are detected *post-hoc* (inline execution
    cannot be preempted): an attempt whose wall-clock exceeds the budget is
    failed and its result discarded, keeping timeout semantics uniform with
    the pool.  Chaos worker-kill markers are simulated as crash outcomes —
    dying for real would take the caller with it.
``process-pool``
    Fans chunks of attempts over a :class:`~concurrent.futures.ProcessPoolExecutor`.
    Detects :class:`~concurrent.futures.process.BrokenProcessPool` (a worker
    died mid-job), fails the in-flight attempts as ``worker-crash`` so the
    supervisor re-dispatches them, and rebuilds the pool; overdue attempts
    are abandoned as ``timeout`` and — once every worker is presumed stuck —
    the pool is rebuilt with best-effort process termination.  If the pool
    cannot be rebuilt, the backend *degrades to serial* execution instead of
    failing the sweep.
``chaos``
    The test instrument: wraps another backend and injects scheduled faults
    from a deterministic :class:`ChaosPlan` — raise inside
    ``run_repetition``, kill the worker process, delay past the timeout,
    truncate a result-store shard mid-append — so every recovery path above
    is exercised by ordinary pytest, and bit-identity of the surviving
    results can be asserted against a fault-free run.

Every backend yields exactly one outcome per attempt, in completion order;
ordering, retry budgets and quarantine live in the
:class:`~repro.sim.supervision.Supervisor`, not here.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, CancelledError, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Iterator, Optional, Sequence

from ..registry import EXECUTOR_BACKENDS, register_executor_backend
from .supervision import (
    AttemptOutcome,
    FabricTelemetry,
    JobAttempt,
    TransientJobError,
)

__all__ = [
    "ExecutorBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ChaosBackend",
    "ChaosInjectedError",
    "ChaosPlan",
    "FaultSpec",
    "resolve_backend",
]

#: Exit status a chaos-killed worker dies with (visible in BrokenProcessPool).
_CHAOS_EXIT_CODE = 13


class ChaosInjectedError(TransientJobError):
    """The chaos backend's injected exception: transient by construction."""


class ExecutorBackend:
    """Contract every executor backend satisfies (see the module docstring)."""

    #: Canonical registry key; filled in at registration.
    key: Optional[str] = None

    def __init__(self, *, telemetry: Optional[FabricTelemetry] = None) -> None:
        self.telemetry = telemetry if telemetry is not None else FabricTelemetry()

    @classmethod
    def from_knobs(
        cls,
        *,
        workers: int = 0,
        chunk_size: int = 1,
        telemetry: Optional[FabricTelemetry] = None,
    ) -> "ExecutorBackend":
        """Build an instance from the executor's generic knobs."""
        return cls(telemetry=telemetry)

    def run_attempts(
        self, attempts: Sequence[JobAttempt], *, timeout: Optional[float] = None
    ) -> Iterator[AttemptOutcome]:
        """Execute ``attempts``, yielding one outcome each in completion order."""
        raise NotImplementedError

    def notify_persisted(self, fingerprint: str, path) -> None:
        """Hook: a result just landed in the store shard at ``path`` (no-op)."""

    def close(self, *, cancel_futures: bool = True) -> None:
        """Release backend resources; queued-but-unstarted work is cancelled."""


def _execute_attempt(attempt: JobAttempt):
    """Run one attempt's simulation (worker side); honours chaos markers."""
    from .runner import run_repetition

    chaos = attempt.chaos
    if chaos is not None:
        kind = chaos[0]
        if kind == "raise":
            raise ChaosInjectedError(
                f"chaos: injected failure (position {attempt.position}, "
                f"attempt {attempt.attempt})"
            )
        if kind == "kill-worker":
            os._exit(_CHAOS_EXIT_CODE)
        if kind == "delay":
            time.sleep(float(chaos[1]))
    return run_repetition(attempt.task, attempt.repetition)


def _run_attempt_chunk(chunk: Sequence[JobAttempt]) -> list[tuple]:
    """Worker entry point: one payload per attempt, exceptions caught per job.

    Catching per attempt keeps one bad simulation from failing its chunk
    siblings; only a process death (chaos kill, OOM) loses the whole chunk.
    """
    payloads: list[tuple] = []
    for attempt in chunk:
        try:
            payloads.append(("ok", _execute_attempt(attempt)))
        except Exception as exc:  # noqa: BLE001 - classified for the supervisor
            payloads.append(
                (
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    isinstance(exc, TransientJobError),
                )
            )
    return payloads


@register_executor_backend("serial", aliases=("inline",))
class SerialBackend(ExecutorBackend):
    """Run attempts inline in the calling process."""

    def run_attempts(
        self, attempts: Sequence[JobAttempt], *, timeout: Optional[float] = None
    ) -> Iterator[AttemptOutcome]:
        for attempt in attempts:
            if attempt.chaos is not None and attempt.chaos[0] == "kill-worker":
                # Dying for real would kill the caller; simulate the crash
                # outcome the pool backend would observe.
                yield AttemptOutcome(
                    attempt,
                    kind="worker-crash",
                    error="chaos: worker killed (simulated inline)",
                    retryable=True,
                )
                continue
            started = time.perf_counter()
            try:
                result = _execute_attempt(attempt)
            except Exception as exc:  # noqa: BLE001 - classified for the supervisor
                yield AttemptOutcome(
                    attempt,
                    kind="exception",
                    error=f"{type(exc).__name__}: {exc}",
                    retryable=isinstance(exc, TransientJobError),
                )
                continue
            elapsed = time.perf_counter() - started
            if timeout is not None and elapsed > timeout:
                # Post-hoc enforcement: the work is done, but a result that
                # blew its budget is still failed so serial and pool sweeps
                # agree on what a timeout means.
                yield AttemptOutcome(
                    attempt,
                    kind="timeout",
                    error=f"repetition took {elapsed:.3f}s > timeout {timeout:.3f}s",
                    retryable=True,
                )
                continue
            yield AttemptOutcome(attempt, result=result)


@register_executor_backend("process-pool", aliases=("pool", "processpool"))
class ProcessPoolBackend(ExecutorBackend):
    """Fan attempts over a process pool with crash/timeout recovery.

    ``timeout`` budgets are per repetition; a chunk of ``n`` attempts gets
    ``n * timeout``.  Deadlines are measured from the moment a chunk enters
    the running window (at most ``workers`` chunks at a time are submitted,
    so submission ≈ start).  An overdue chunk is abandoned — its attempts
    fail as ``timeout`` and any late result is discarded; once as many
    chunks were abandoned as there are workers, every worker is presumed
    stuck and the pool is rebuilt (terminating the stuck processes
    best-effort).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        chunk_size: int = 1,
        telemetry: Optional[FabricTelemetry] = None,
    ) -> None:
        super().__init__(telemetry=telemetry)
        from .runner import resolve_workers

        self.workers = max(1, resolve_workers(workers))
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._abandoned = 0
        self._serial: Optional[SerialBackend] = None

    @classmethod
    def from_knobs(cls, *, workers=0, chunk_size=1, telemetry=None):
        return cls(workers, chunk_size=chunk_size, telemetry=telemetry)

    @property
    def degraded(self) -> bool:
        return self._serial is not None

    def close(self, *, cancel_futures: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=cancel_futures)
            self._pool = None

    # -- pool lifecycle ----------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _discard_pool(self, *, terminate: bool) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = []
        try:
            processes = list(getattr(pool, "_processes", {}).values())
        except Exception:  # pragma: no cover - interpreter-internal shape change
            pass
        pool.shutdown(wait=False, cancel_futures=True)
        if terminate:
            for process in processes:
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - already-dead process
                    pass

    def _rebuild_pool(self, *, terminate: bool) -> bool:
        """Replace the pool; on failure flip into serial degradation."""
        self._discard_pool(terminate=terminate)
        self._abandoned = 0
        self.telemetry.pool_rebuilds += 1
        try:
            self._ensure_pool()
            return True
        except Exception:
            self._degrade()
            return False

    def _degrade(self) -> None:
        if self._serial is None:
            self.telemetry.degraded_to_serial += 1
            self._serial = SerialBackend(telemetry=self.telemetry)

    # -- execution ---------------------------------------------------------------------
    def run_attempts(
        self, attempts: Sequence[JobAttempt], *, timeout: Optional[float] = None
    ) -> Iterator[AttemptOutcome]:
        queue = deque(
            list(attempts[i : i + self.chunk_size])
            for i in range(0, len(attempts), self.chunk_size)
        )
        pending: dict[Future, tuple[list[JobAttempt], float]] = {}
        while queue or pending:
            if self.degraded:
                while queue:
                    yield from self._serial.run_attempts(queue.popleft(), timeout=timeout)
                # In-flight futures of the dead pool are handled below.
            while queue and len(pending) < self.workers and not self.degraded:
                chunk = queue.popleft()
                future = self._submit(chunk)
                if future is None:  # degradation kicked in mid-submit
                    yield from self._serial.run_attempts(chunk, timeout=timeout)
                    continue
                pending[future] = (chunk, time.monotonic())
            if not pending:
                continue
            done, _ = wait(set(pending), timeout=self._poll(pending, timeout), return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                chunk, _started = pending.pop(future)
                try:
                    payloads = future.result()
                except BrokenProcessPool:
                    broken = True
                    yield from self._crash_outcomes(chunk)
                    continue
                except CancelledError:
                    # The future was cancelled by a pool teardown racing this
                    # drain; the job never ran — re-dispatchable, not a bug.
                    yield from self._crash_outcomes(chunk)
                    continue
                except Exception as exc:  # noqa: BLE001 - e.g. unpicklable result
                    for attempt in chunk:
                        yield AttemptOutcome(
                            attempt,
                            kind="exception",
                            error=f"{type(exc).__name__}: {exc}",
                            retryable=False,
                        )
                    continue
                for attempt, payload in zip(chunk, payloads):
                    if payload[0] == "ok":
                        yield AttemptOutcome(attempt, result=payload[1])
                    else:
                        yield AttemptOutcome(
                            attempt,
                            kind="exception",
                            error=payload[1],
                            retryable=bool(payload[2]),
                        )
            if broken:
                # A dead worker poisons every sibling future of the pool:
                # fail them all as crashes (the supervisor re-dispatches) and
                # rebuild so the next wave has workers again.
                for future, (chunk, _started) in list(pending.items()):
                    del pending[future]
                    yield from self._crash_outcomes(chunk)
                self._rebuild_pool(terminate=False)
                continue
            if timeout is not None:
                now = time.monotonic()
                for future, (chunk, started) in list(pending.items()):
                    if now - started <= timeout * len(chunk):
                        continue
                    future.cancel()
                    del pending[future]
                    self._abandoned += 1
                    for attempt in chunk:
                        yield AttemptOutcome(
                            attempt,
                            kind="timeout",
                            error=(
                                f"no result within {timeout * len(chunk):.3f}s; "
                                "worker abandoned"
                            ),
                            retryable=True,
                        )
                if self._abandoned >= self.workers:
                    # Every worker is presumed stuck on an abandoned chunk:
                    # requeue what never ran and rebuild with termination.
                    for future, (chunk, _started) in list(pending.items()):
                        del pending[future]
                        queue.appendleft(chunk)
                    self._rebuild_pool(terminate=True)

    def _submit(self, chunk: list[JobAttempt]) -> Optional[Future]:
        for _ in range(2):
            if self.degraded:
                return None
            try:
                return self._ensure_pool().submit(_run_attempt_chunk, chunk)
            except Exception:
                # Pool unusable (broken, shut down, or unbuildable): one
                # rebuild attempt, then graceful degradation to serial.
                if not self._rebuild_pool(terminate=False):
                    return None
        return None  # pragma: no cover - second loop iteration always returns

    def _crash_outcomes(self, chunk: Sequence[JobAttempt]) -> Iterator[AttemptOutcome]:
        for attempt in chunk:
            yield AttemptOutcome(
                attempt,
                kind="worker-crash",
                error="worker process died (BrokenProcessPool)",
                retryable=True,
            )

    def _poll(
        self, pending: dict, timeout: Optional[float]
    ) -> Optional[float]:
        """How long ``wait`` may block: until the earliest pending deadline."""
        if timeout is None:
            return None
        now = time.monotonic()
        earliest = min(
            started + timeout * len(chunk) for chunk, started in pending.values()
        )
        return max(0.01, earliest - now)


# -- chaos ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One scheduled fault: fires when job ``position`` runs attempt ``attempt``.

    Kinds: ``raise`` (exception inside ``run_repetition``), ``kill-worker``
    (the worker process dies), ``delay`` (sleep ``seconds`` before running —
    past the timeout, this exercises the timeout path), ``truncate-shard``
    (tear the store shard line the job's result was just appended to).
    """

    kind: str
    position: int
    attempt: int = 0
    seconds: float = 0.25

    _KINDS = ("raise", "kill-worker", "delay", "truncate-shard")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {self._KINDS}")


@dataclass(frozen=True, slots=True)
class ChaosPlan:
    """A deterministic fault schedule: explicit specs plus an optional seeded rate.

    The seeded part is a pure function of ``(seed, position)`` — an SHA-256
    draw, never ``random()`` — so the same plan injects the same faults into
    the same jobs on every run.  Seeded faults fire only on attempt 0, so
    retries recover; persistent failures are modelled with explicit
    :class:`FaultSpec`s covering several attempts.
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: Optional[int] = None
    rate: float = 0.0
    kinds: tuple[str, ...] = ("raise", "kill-worker", "delay")
    delay_seconds: float = 0.25

    def fault_for(self, position: int, attempt: int) -> Optional[FaultSpec]:
        for fault in self.faults:
            if fault.position == position and fault.attempt == attempt:
                return fault
        if self.seed is None or self.rate <= 0.0 or attempt != 0 or not self.kinds:
            return None
        digest = hashlib.sha256(f"chaos:{self.seed}:{position}".encode("utf8")).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0**64
        if draw >= self.rate:
            return None
        kind = self.kinds[int.from_bytes(digest[8:10], "big") % len(self.kinds)]
        return FaultSpec(kind=kind, position=position, seconds=self.delay_seconds)

    @classmethod
    def from_env(cls, environ=os.environ) -> "ChaosPlan":
        """The plan the CLI's ``--backend chaos`` uses.

        ``REPRO_CHAOS_PLAN`` names a JSON file of explicit fault specs
        (``[{"kind": ..., "position": ..., ...}, ...]``); otherwise
        ``REPRO_CHAOS_SEED`` / ``REPRO_CHAOS_RATE`` configure the seeded plan.
        """
        plan_path = environ.get("REPRO_CHAOS_PLAN")
        if plan_path:
            specs = json.loads(open(plan_path, "r", encoding="utf8").read())
            return cls(faults=tuple(FaultSpec(**spec) for spec in specs))
        seed = int(environ.get("REPRO_CHAOS_SEED", "0"))
        rate = float(environ.get("REPRO_CHAOS_RATE", "0.1"))
        return cls(seed=seed, rate=rate)


@register_executor_backend("chaos")
class ChaosBackend(ExecutorBackend):
    """Deterministic fault injection around another backend.

    ``raise``/``kill-worker``/``delay`` faults are attached to the forwarded
    attempts as markers the worker entry point honours, so they fire inside
    the real execution path of the inner backend; ``truncate-shard`` faults
    wait for the caching executor's :meth:`notify_persisted` hook and tear
    the just-appended shard line.  Injected counts land in
    ``telemetry.injected``.
    """

    def __init__(
        self,
        inner: ExecutorBackend,
        plan: ChaosPlan,
        *,
        telemetry: Optional[FabricTelemetry] = None,
    ) -> None:
        super().__init__(telemetry=telemetry)
        self.inner = inner
        self.inner.telemetry = self.telemetry
        self.plan = plan
        self._pending_truncations: dict[str, FaultSpec] = {}

    @classmethod
    def from_knobs(cls, *, workers=0, chunk_size=1, telemetry=None):
        inner_key = "process-pool" if workers > 1 else "serial"
        inner = EXECUTOR_BACKENDS.get(inner_key).from_knobs(
            workers=workers, chunk_size=chunk_size, telemetry=telemetry
        )
        return cls(inner, ChaosPlan.from_env(), telemetry=telemetry)

    def close(self, *, cancel_futures: bool = True) -> None:
        self.inner.close(cancel_futures=cancel_futures)

    def run_attempts(
        self, attempts: Sequence[JobAttempt], *, timeout: Optional[float] = None
    ) -> Iterator[AttemptOutcome]:
        forwarded: list[JobAttempt] = []
        for attempt in attempts:
            fault = self.plan.fault_for(attempt.position, attempt.attempt)
            if fault is None:
                forwarded.append(attempt)
                continue
            if fault.kind == "truncate-shard":
                from .supervision import job_key

                self._pending_truncations[job_key(attempt.task, attempt.repetition)] = fault
                forwarded.append(attempt)
                continue
            self.telemetry.record_injected(fault.kind)
            seconds = fault.seconds
            if fault.kind == "delay" and timeout is not None:
                # "Delay past the timeout" tracks whatever budget is in force.
                seconds = max(seconds, 1.5 * timeout)
            forwarded.append(replace(attempt, chaos=(fault.kind, seconds)))
        yield from self.inner.run_attempts(forwarded, timeout=timeout)

    def notify_persisted(self, fingerprint: str, path) -> None:
        fault = self._pending_truncations.pop(fingerprint, None)
        if fault is None or path is None:
            return
        try:
            size = os.path.getsize(path)
        except OSError:
            return
        if size <= 16:
            return
        # Tear the just-appended line: drop its trailing bytes (including the
        # newline), exactly what a crash mid-append leaves behind.
        os.truncate(path, size - 16)
        self.telemetry.record_injected("truncate-shard")


def resolve_backend(
    spec,
    *,
    workers: int = 0,
    chunk_size: int = 1,
    telemetry: Optional[FabricTelemetry] = None,
) -> ExecutorBackend:
    """The backend an executor should drive.

    ``spec`` may be an :class:`ExecutorBackend` instance (adopted as-is, with
    the telemetry bound), a registry key, or ``None`` — which auto-selects
    ``process-pool`` when ``workers > 1`` and ``serial`` otherwise, preserving
    the historical ``SweepExecutor`` behaviour.
    """
    if isinstance(spec, ExecutorBackend):
        if telemetry is not None:
            spec.telemetry = telemetry
            inner = getattr(spec, "inner", None)
            if inner is not None:
                inner.telemetry = telemetry
        return spec
    if spec is None:
        spec = "process-pool" if workers > 1 else "serial"
    cls = EXECUTOR_BACKENDS.get(spec)
    return cls.from_knobs(workers=workers, chunk_size=chunk_size, telemetry=telemetry)
