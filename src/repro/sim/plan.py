"""Compiled per-slot execution plans for the simulation engine.

The engine's hot loop used to re-derive the same facts every slot of every
cycle: which devices participate, which of them may transmit opportunistically,
where each participant is located, and which submatrix of the channel's link
state the round's listeners need.  All of that is static for a given
simulation, so :class:`SlotPlan` compiles it once at construction:

* **slot records** — per slot, a frozen tuple of per-participant records
  ``(node_id, node, act, observe, end_slot, honest, position)`` with the
  protocol's bound methods resolved ahead of time, so the per-phase loop does
  no attribute lookups;
* **frozen id arrays** — per slot, the participant ids as an immutable NumPy
  array (``writeable=False``), for introspection and vectorised consumers;
* **flex candidates** — per slot, the flexible transmitters (adversaries with
  ``may_transmit_anywhere``) *not already* in the slot's interest set, in
  global declaration order.  The engine queries ``wants_slot`` only for these,
  preserving the exact historical call sequence (and therefore the adversary
  RNG stream) while skipping the per-slot membership scans;
* **transmission interning** — ``Transmission`` objects keyed by
  ``(sender, frame)``; protocols put a tiny alphabet of frames on the air, so
  the same transmission need not be re-allocated every phase;
* **submatrix cache** — the ``np.ix_``-style slice of the link state for one
  ``(slot occurrence, sender set)``, LRU-bounded and introspectable exactly
  like the engine's link cache.  In steady state the same slot resolves with
  the same senders every cycle, so the fancy indexing happens once.  With a
  sparse link state the same LRU holds the per-round CSR
  :class:`~repro.sim.linkstate.RoundView` aggregations instead (one entry per
  ``(occurrence, senders)`` either way — the engine uses exactly one of the
  two representations per simulation);
* **region records** — when spatial tiling is enabled, the per-slot
  participant id arrays regrouped per :class:`~repro.sim.tiling.RegionTiling`
  tile (computed lazily, in participant order within each tile), the
  per-region compilation the tiled round kernels and introspection key off;
* **round memo** — for channels whose resolution consumes no RNG
  (:meth:`~repro.sim.radio.Channel.consumes_rng` is ``False``), whole resolved
  rounds keyed by ``(slot occurrence, senders, frames)``.  Observations are a
  pure function of that key, so the engine replays the interned observation
  list instead of resolving at all.  Stochastic configurations never enter
  this cache — their RNG stream must advance exactly as before.

The compiled records bind protocol methods once: the plan assumes (like the
engine always has) that a node's protocol is not swapped mid-run.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from ..core.schedule import Schedule
from .node import SimNode
from .radio import Transmission

__all__ = ["SlotPlan"]

#: Record layout inside :attr:`SlotPlan.slot_records` (documented indices).
REC_ID, REC_NODE, REC_ACT, REC_OBSERVE, REC_END_SLOT, REC_HONEST, REC_POSITION = range(7)

_TX_CACHE_MAX = 8192


class SlotPlan:
    """Static execution structure of one :class:`~repro.sim.engine.Simulation`."""

    __slots__ = (
        "interest_map",
        "interest_sets",
        "flex_transmitters",
        "slot_records",
        "flex_candidates",
        "participant_arrays",
        "submatrix_cache",
        "submatrix_max_entries",
        "submatrix_hits",
        "submatrix_misses",
        "round_memo",
        "round_memo_max_entries",
        "round_memo_hits",
        "round_memo_misses",
        "_tx_cache",
        "_node_records",
        "_region_records",
    )

    def __init__(
        self,
        nodes: Sequence[SimNode],
        schedule: Schedule,
        *,
        submatrix_max_entries: int = 256,
        round_memo_max_entries: int = 512,
    ) -> None:
        # One pass over the nodes builds everything: the per-node record with
        # the protocol's bound methods resolved once, and the per-slot record
        # lists (records appended directly, so no second id-to-record pass).
        record_lists: dict[int, list[tuple]] = {}
        flex_transmitters: list[int] = []
        self._node_records: dict[int, tuple] = {}
        wants_slot_by_id: dict[int, object] = {}
        num_slots = schedule.num_slots
        for node in nodes:
            proto = node.protocol
            if proto is None:
                continue
            record = (
                node.node_id,
                node,
                proto.act,
                proto.observe,
                proto.end_slot,
                node.honest,
                node.position,
            )
            self._node_records[node.node_id] = record
            wants_slot_by_id[node.node_id] = proto.wants_slot
            declared: set[int] = set()
            for slot in proto.interests():
                if not (0 <= slot < num_slots):
                    raise ValueError(
                        f"node {node.node_id} declared interest in slot {slot}, "
                        f"but the schedule only has {num_slots} slots"
                    )
                # Deduplicate (order-preserving): a protocol that declares the
                # same slot twice must still act and observe once per phase.
                slot = int(slot)
                if slot in declared:
                    continue
                declared.add(slot)
                slot_list = record_lists.get(slot)
                if slot_list is None:
                    record_lists[slot] = [record]
                else:
                    slot_list.append(record)
            if getattr(proto, "may_transmit_anywhere", False):
                flex_transmitters.append(node.node_id)

        self.slot_records: dict[int, tuple] = {
            slot: tuple(records) for slot, records in record_lists.items()
        }
        self.interest_map: dict[int, tuple[int, ...]] = {
            slot: tuple(record[REC_ID] for record in records)
            for slot, records in self.slot_records.items()
        }
        self.interest_sets: dict[int, frozenset[int]] = {
            slot: frozenset(ids) for slot, ids in self.interest_map.items()
        }
        self.flex_transmitters: tuple[int, ...] = tuple(flex_transmitters)

        # Frozen per-slot participant ids, in record order.  Shared with the
        # spatial-tiling regrouping and the SoA compiler, which adopts each
        # array as its group's member_ids (ascending ids are what make the
        # packed-mask member indexing line up with scalar record order).
        self.participant_arrays: dict[int, np.ndarray] = {}
        for slot, ids in self.interest_map.items():
            array = np.asarray(ids, dtype=np.intp)
            array.setflags(write=False)
            self.participant_arrays[slot] = array

        # Flex candidates per slot: flexible transmitters outside the slot's
        # interest set, in declaration order — the same subsequence the engine
        # used to recompute per slot, so adversary wants_slot() calls (which
        # may consume their private RNG) happen in exactly the same order.
        self.flex_candidates: dict[int, tuple] = {}
        if self.flex_transmitters:
            for slot in range(schedule.num_slots):
                base = self.interest_sets.get(slot, frozenset())
                candidates = tuple(
                    (wants_slot_by_id[nid], self._node_records[nid])
                    for nid in self.flex_transmitters
                    if nid not in base
                )
                if candidates:
                    self.flex_candidates[slot] = candidates

        self.submatrix_cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.submatrix_max_entries = int(submatrix_max_entries)
        self.submatrix_hits = 0
        self.submatrix_misses = 0

        self.round_memo: "OrderedDict[tuple, list]" = OrderedDict()
        self.round_memo_max_entries = int(round_memo_max_entries)
        self.round_memo_hits = 0
        self.round_memo_misses = 0

        self._tx_cache: dict[tuple, Transmission] = {}
        self._region_records: dict[int, dict[int, np.ndarray]] | None = None

    # -- hot-path helpers ------------------------------------------------------------
    def node_record(self, node_id: int) -> tuple:
        """The compiled record of one device (participants and flex joiners)."""
        return self._node_records[node_id]

    def compile_cohort_entries(self, cohort_of: dict) -> dict:
        """Per-slot execution entries for the cohort runtime.

        For every slot, a list of mutable ``[record, cohort, spec, tx]``
        entries in the exact participant order of :attr:`slot_records`
        (``cohort`` is ``None`` for singleton devices; the trailing two
        elements memoise the member's last fan-out transmission per shared
        decision).  The entry *objects* are what the runtime tracks
        incrementally: a record participating in several slots gets one entry
        per slot, and when a cohort splits or re-merges the runtime rewrites
        the ``cohort`` element of the affected entries in place — the
        per-slot membership therefore never needs to be re-derived during a
        run.
        """
        return {
            slot: [[record, cohort_of.get(record[REC_ID]), None, None] for record in records]
            for slot, records in self.slot_records.items()
        }

    def transmission(self, node_id: int, position, frame) -> Transmission:
        """Interned ``Transmission`` for a sender/frame pair."""
        key = (node_id, frame)
        cache = self._tx_cache
        tx = cache.get(key)
        if tx is None:
            if len(cache) >= _TX_CACHE_MAX:
                cache.clear()
            tx = Transmission(node_id, position, frame)
            cache[key] = tx
        return tx

    def submatrix(self, key: tuple, link_state, listeners, senders) -> np.ndarray:
        """The listeners-by-senders slice of the link state, via the LRU cache.

        ``link_state`` is either a raw dense matrix (historical form, still
        used by tests and ad-hoc callers) or any
        :class:`~repro.sim.linkstate.ChannelLinkState`; sparse states
        recompute the exact block from positions instead of slicing.
        """
        cache = self.submatrix_cache
        sub = cache.get(key)
        if sub is None:
            self.submatrix_misses += 1
            if hasattr(link_state, "submatrix"):
                sub = link_state.submatrix(listeners, senders)
            else:
                sub = link_state[np.ix_(listeners, senders)]
            cache[key] = sub
            while len(cache) > self.submatrix_max_entries:
                cache.popitem(last=False)
        else:
            self.submatrix_hits += 1
            cache.move_to_end(key)
        return sub

    def round_view(self, key: tuple, link_state, listeners, senders):
        """The CSR round aggregation for one ``(occurrence, senders)`` key.

        Shares the submatrix LRU (an engine uses either dense slices or round
        views, never both) and accumulates the link state's tile-exchange
        counters on every resolution, cache hit or miss — a replayed view
        still stands for executed tile traffic.
        """
        cache = self.submatrix_cache
        view = cache.get(key)
        if view is None:
            self.submatrix_misses += 1
            view = link_state.round_view(listeners, senders)
            cache[key] = view
            while len(cache) > self.submatrix_max_entries:
                cache.popitem(last=False)
        else:
            self.submatrix_hits += 1
            cache.move_to_end(key)
        link_state.note_round(view)
        return view

    def region_records(self, tiling) -> dict[int, dict[int, np.ndarray]]:
        """Per-slot participant ids regrouped per region tile (lazy, cached).

        For every slot, a dict mapping each occupied tile of ``tiling`` to the
        ids of the slot's participants located in it, in participant order —
        the per-region compilation of the slot plan.  The grouping is pure
        bookkeeping (participant *execution* order never changes; the RNG
        contract forbids that), consumed by the tiled introspection counters
        and by tests pinning the tiling against the global plan.
        """
        if self._region_records is None:
            grouped: dict[int, dict[int, np.ndarray]] = {}
            tile_of = tiling.tile_of
            for slot, ids in self.participant_arrays.items():
                tiles = tile_of[ids]
                by_tile: dict[int, np.ndarray] = {}
                for tile in np.unique(tiles):
                    members = ids[tiles == tile]
                    members.setflags(write=False)
                    by_tile[int(tile)] = members
                grouped[slot] = by_tile
            self._region_records = grouped
        return self._region_records

    # -- introspection ----------------------------------------------------------------
    def cache_info(self) -> dict:
        """Snapshot of the plan's per-simulation caches (counters since construction)."""
        return {
            "submatrix": {
                "entries": len(self.submatrix_cache),
                "max_entries": self.submatrix_max_entries,
                "hits": self.submatrix_hits,
                "misses": self.submatrix_misses,
            },
            "round_memo": {
                "entries": len(self.round_memo),
                "max_entries": self.round_memo_max_entries,
                "hits": self.round_memo_hits,
                "misses": self.round_memo_misses,
            },
            "transmissions_interned": len(self._tx_cache),
        }
