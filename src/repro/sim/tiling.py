"""Spatial region tiling of a deployment for the sparse engine core.

The sparse link-state tier (:mod:`repro.sim.linkstate`) decomposes a
deployment into axis-aligned square tiles — a :class:`~repro.core.regions.SquareGrid`
whose side is the channel's interaction radius, mirroring the paper's own
square decomposition for NeighborWatchRB.  Because the tile side is at least
the interaction radius, a transmission can only ever be audible inside the
sender's own tile and the eight adjacent tiles; every audible link therefore
either stays *interior* to one tile or crosses exactly one tile boundary, and
the per-round CSR kernels only need to "exchange" the boundary-crossing
transmissions between tiles.

:class:`RegionTiling` owns the per-node tile assignment and the static
interior/boundary classification of the CSR link structure; the live
per-round exchange counters accumulate on the link state itself as rounds
resolve.
"""

from __future__ import annotations

import numpy as np

from ..core.regions import SquareGrid

__all__ = ["RegionTiling"]


class RegionTiling:
    """Square-tile partition of a deployment keyed off :class:`SquareGrid`.

    Parameters
    ----------
    positions:
        ``(N, 2)`` device coordinates.
    side:
        Tile side; must be at least the channel's interaction radius for the
        adjacency guarantee above to hold (the caller — the channel building
        its sparse link state — picks it that way).
    """

    __slots__ = ("grid", "side", "tile_of", "num_tiles", "occupied_tiles")

    def __init__(self, positions: np.ndarray, side: float) -> None:
        pos = np.asarray(positions, dtype=float)
        if side <= 0:
            raise ValueError("tile side must be positive")
        # The SquareGrid spans the occupied bounding box from the map origin;
        # positions at the upper edge fold into the last tile, exactly like
        # the NeighborWatchRB square partition.
        width = max(float(pos[:, 0].max()) if pos.size else side, side)
        height = max(float(pos[:, 1].max()) if pos.size else side, side)
        self.side = float(side)
        self.grid = SquareGrid(width=width, height=height, side=self.side)
        self.tile_of = self.grid.flat_squares_of(pos)
        self.tile_of.setflags(write=False)
        self.num_tiles = self.grid.num_squares
        self.occupied_tiles = int(np.unique(self.tile_of).size)

    def classify_links(self, indptr: np.ndarray, indices: np.ndarray) -> tuple[int, int]:
        """Static ``(interior, boundary)`` link counts of a CSR neighbor structure.

        A link is *interior* when both endpoints share a tile and *boundary*
        when they do not; self-links (the CSR diagonal, kept for parity with
        the dense audibility mask) are excluded from both counts.
        """
        n = indptr.size - 1
        src = np.repeat(np.arange(n, dtype=np.intp), np.diff(indptr))
        if not src.size:
            return 0, 0
        same_tile = self.tile_of[src] == self.tile_of[indices]
        self_link = src == indices
        interior = int(np.count_nonzero(same_tile & ~self_link))
        boundary = int(np.count_nonzero(~same_tile))
        return interior, boundary

    def info(self) -> dict:
        """Snapshot of the static tiling shape."""
        return {
            "tiles": self.num_tiles,
            "occupied_tiles": self.occupied_tiles,
            "tile_side": self.side,
            "grid_cols": self.grid.num_cols,
            "grid_rows": self.grid.num_rows,
        }
