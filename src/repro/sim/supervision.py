"""The supervision envelope around sweep job execution.

Every ``(task, repetition)`` pair an :class:`~repro.sim.backends.ExecutorBackend`
dispatches is wrapped in a supervision envelope by :class:`Supervisor`:

* a per-repetition **wall-clock timeout** (enforced by the backend — the
  process pool abandons overdue workers, the serial backend detects overruns
  post-hoc, since inline execution cannot be preempted);
* **bounded retry** of transient failures (timeouts, worker crashes, and
  exceptions deriving from :class:`TransientJobError`) with deterministic
  exponential backoff: the delay of retry ``n`` is a pure function of the
  job's fingerprint and ``n`` (:func:`backoff_delay`) — no ``random()`` and no
  ``time()`` enter the decision logic, so the retry *schedule* of a sweep is
  reproducible even though the wall clock obviously is not;
* **quarantine** of jobs that exhaust ``max_retries`` (or fail
  deterministically — a pure simulation that raised once will raise again, so
  plain exceptions are not retried): the rest of the sweep still completes and
  persists, and the failures surface together as :class:`JobFailure` records
  inside one :class:`SweepFailure` raised at the end, instead of the first
  bad job aborting the whole figure.

Because every repetition is a pure function of its seed, a retried or
re-dispatched job can only reproduce the same bytes — supervision is
invisible in the results, which is what lets the chaos backend
(:class:`~repro.sim.backends.ChaosBackend`) assert bit-identity under
injected worker kills, delays and shard truncations.

:class:`FabricTelemetry` counts every recovery event (retries, timeouts,
worker crashes, pool rebuilds, quarantines, injected chaos faults) so a sweep
can report what it survived.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from .results import RunResult
    from .runner import SweepTask

__all__ = [
    "SupervisionPolicy",
    "backoff_delay",
    "job_key",
    "JobAttempt",
    "AttemptOutcome",
    "JobFailure",
    "FabricTelemetry",
    "TransientJobError",
    "SweepFailure",
    "SweepInterrupted",
    "Supervisor",
]


class TransientJobError(RuntimeError):
    """An error worth retrying: raised by infrastructure, not by the simulation.

    Exceptions raised inside ``run_repetition`` are deterministic in the seed
    — re-running can only raise them again — so the supervisor does *not*
    retry plain exceptions.  Raise (or subclass) this type for conditions that
    a retry can actually fix; the chaos backend's injected faults derive from
    it, which is how they exercise the retry path.
    """


@dataclass(frozen=True, slots=True)
class SupervisionPolicy:
    """Knobs of the supervision envelope (see the module docstring).

    ``timeout`` is the per-repetition wall-clock budget in seconds (``None``
    disables enforcement); with ``chunk_size > 1`` a chunk's budget is
    ``timeout * len(chunk)``.  ``max_retries`` bounds how many times one job
    is re-dispatched after its first attempt.  Backoff delays grow as
    ``backoff_base * 2**(retry-1)`` capped at ``backoff_cap``, scaled by a
    fingerprint-derived jitter factor in ``[0.5, 1.0)``.
    """

    timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None to disable)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff parameters must be >= 0")


def backoff_delay(fingerprint: str, attempt: int, policy: SupervisionPolicy) -> float:
    """Seconds to wait before dispatching retry ``attempt`` (1-based) of a job.

    A *pure function* of ``(fingerprint, attempt, policy)``: the exponential
    span is jittered by a factor in ``[0.5, 1.0)`` derived from a SHA-256 over
    the fingerprint and the attempt number — never from ``random()`` or the
    clock — so two runs of the same sweep produce the same retry schedule,
    while distinct jobs still de-synchronize instead of thundering back in
    lock-step.
    """
    if attempt < 1:
        raise ValueError("attempt numbers 1-based: the first retry is attempt 1")
    span = min(policy.backoff_cap, policy.backoff_base * (2.0 ** (attempt - 1)))
    digest = hashlib.sha256(f"backoff:{fingerprint}:{attempt}".encode("utf8")).digest()
    jitter = 0.5 + 0.5 * (int.from_bytes(digest[:8], "big") / 2.0**64)
    return span * jitter


def job_key(task: "SweepTask", repetition: int) -> str:
    """The stable identity of a job: its fingerprint when computable.

    Tasks built from ad-hoc (non-dataclass) factories cannot be fingerprinted;
    they fall back to a label-derived key so supervision still works — only
    store integration requires true fingerprints.
    """
    try:
        return task.fingerprint(repetition)
    except TypeError:
        return f"unfingerprintable:{task.label}:{task.base_seed}:{repetition}"


@dataclass(slots=True)
class JobAttempt:
    """One dispatch of one ``(task, repetition)`` pair (picklable).

    ``position`` indexes the sweep's job list, ``attempt`` is 0 for the first
    dispatch.  ``chaos`` is an optional injection marker the chaos backend
    attaches — a primitive tuple like ``("delay", 0.5)`` — honoured by the
    worker entry point so faults fire inside the execution path they target.
    """

    position: int
    task: "SweepTask"
    repetition: int
    attempt: int = 0
    chaos: Optional[tuple] = None


@dataclass(slots=True)
class AttemptOutcome:
    """What one dispatched attempt came back as.

    ``kind`` is ``"ok"``, ``"exception"``, ``"timeout"`` or ``"worker-crash"``;
    ``retryable`` marks whether the supervisor may re-dispatch (timeouts and
    crashes always are; exceptions only when they derive from
    :class:`TransientJobError`).
    """

    attempt: JobAttempt
    result: Optional["RunResult"] = None
    kind: str = "ok"
    error: str = ""
    retryable: bool = False

    @property
    def ok(self) -> bool:
        return self.kind == "ok"


@dataclass(frozen=True, slots=True)
class JobFailure:
    """One quarantined job: every attempt failed (or the failure was final)."""

    label: str
    repetition: int
    fingerprint: str
    attempts: int
    kind: str
    error: str

    def describe(self) -> str:
        return (
            f"{self.label} repetition {self.repetition}: {self.kind} after "
            f"{self.attempts} attempt{'s' if self.attempts != 1 else ''} — {self.error}"
        )


@dataclass(slots=True)
class FabricTelemetry:
    """Cumulative recovery counters of one executor (shared with its backend)."""

    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    exceptions: int = 0
    pool_rebuilds: int = 0
    degraded_to_serial: int = 0
    quarantined: int = 0
    #: Queue-backend leases that expired (worker death) and were requeued.
    lease_requeues: int = 0
    backoff_seconds: float = 0.0
    #: Chaos-injected fault counts by kind (only the chaos backend writes it).
    injected: dict[str, int] = field(default_factory=dict)

    def record_injected(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    @property
    def recovered(self) -> bool:
        """Whether any recovery machinery actually fired during the sweep."""
        return bool(
            self.retries
            or self.timeouts
            or self.worker_crashes
            or self.pool_rebuilds
            or self.degraded_to_serial
            or self.quarantined
            or self.lease_requeues
            or self.injected
        )

    def snapshot(self) -> dict:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "exceptions": self.exceptions,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded_to_serial": self.degraded_to_serial,
            "quarantined": self.quarantined,
            "lease_requeues": self.lease_requeues,
            "backoff_seconds": self.backoff_seconds,
            "injected": dict(self.injected),
        }

    def summary(self) -> str:
        """Compact ``key=value`` report: ``attempts`` always, then fired counters."""
        parts = [f"attempts={self.attempts}"]
        parts += [
            f"{name}={value}"
            for name, value in (
                ("retries", self.retries),
                ("timeouts", self.timeouts),
                ("worker-crashes", self.worker_crashes),
                ("pool-rebuilds", self.pool_rebuilds),
                ("degraded-to-serial", self.degraded_to_serial),
                ("quarantined", self.quarantined),
                ("lease-requeues", self.lease_requeues),
            )
            if value
        ]
        if self.injected:
            injected = ",".join(f"{kind}:{count}" for kind, count in sorted(self.injected.items()))
            parts.append(f"injected={injected}")
        return " ".join(parts)


class SweepFailure(RuntimeError):
    """Raised *after* a sweep completed everything it could: the quarantine report.

    Carries the :class:`JobFailure` records of every job that exhausted its
    retries.  By the time this surfaces, every other job's result has been
    yielded (and, under a caching executor, persisted), so a re-run resumes
    from the survivors instead of starting over.
    """

    def __init__(self, failures: Sequence[JobFailure]) -> None:
        self.failures = list(failures)
        count = len(self.failures)
        head = self.failures[0].describe() if self.failures else "no failures"
        suffix = f" (+{count - 1} more)" if count > 1 else ""
        super().__init__(f"{count} sweep job{'s' if count != 1 else ''} quarantined: {head}{suffix}")


class SweepInterrupted(KeyboardInterrupt):
    """Ctrl-C during a cached sweep: completed repetitions are already on disk.

    Subclasses :class:`KeyboardInterrupt` so non-CLI callers that catch the
    plain interrupt keep working; the CLI catches this first to print a resume
    hint and exit with the conventional SIGINT code (130).
    """

    def __init__(self, *, completed: int, pending: int, cache_dir) -> None:
        self.completed = completed
        self.pending = pending
        self.cache_dir = cache_dir
        super().__init__(
            f"sweep interrupted: {completed} repetition(s) persisted, {pending} pending"
        )


class Supervisor:
    """Drives jobs through a backend under a :class:`SupervisionPolicy`.

    :meth:`run` yields ``(position, result)`` pairs as attempts succeed —
    completion order, exactly like the historical executor — and collects
    quarantined jobs in :attr:`failures` for the caller to report.  Retries
    are dispatched in waves: each wave waits out the longest backoff delay
    among its members (delays are per-job deterministic, see
    :func:`backoff_delay`).
    """

    def __init__(self, backend, policy: SupervisionPolicy, telemetry: FabricTelemetry) -> None:
        self.backend = backend
        self.policy = policy
        self.telemetry = telemetry
        self.failures: list[JobFailure] = []

    def run(self, jobs: Sequence[tuple["SweepTask", int]]) -> Iterator[tuple[int, "RunResult"]]:
        wave = [
            JobAttempt(position=position, task=task, repetition=repetition)
            for position, (task, repetition) in enumerate(jobs)
        ]
        while wave:
            retries: list[JobAttempt] = []
            for outcome in self.backend.run_attempts(wave, timeout=self.policy.timeout):
                self.telemetry.attempts += 1
                attempt = outcome.attempt
                if outcome.ok:
                    yield attempt.position, outcome.result
                    continue
                self._count_failure(outcome)
                next_attempt = attempt.attempt + 1
                if outcome.retryable and next_attempt <= self.policy.max_retries:
                    retries.append(
                        JobAttempt(
                            position=attempt.position,
                            task=attempt.task,
                            repetition=attempt.repetition,
                            attempt=next_attempt,
                        )
                    )
                else:
                    self._quarantine(outcome)
            if retries:
                self.telemetry.retries += len(retries)
                delay = max(
                    backoff_delay(job_key(r.task, r.repetition), r.attempt, self.policy)
                    for r in retries
                )
                self.telemetry.backoff_seconds += delay
                if delay > 0:
                    time.sleep(delay)
            wave = retries

    def _count_failure(self, outcome: AttemptOutcome) -> None:
        if outcome.kind == "timeout":
            self.telemetry.timeouts += 1
        elif outcome.kind == "worker-crash":
            self.telemetry.worker_crashes += 1
        else:
            self.telemetry.exceptions += 1

    def _quarantine(self, outcome: AttemptOutcome) -> None:
        attempt = outcome.attempt
        self.telemetry.quarantined += 1
        self.failures.append(
            JobFailure(
                label=attempt.task.label,
                repetition=attempt.repetition,
                fingerprint=job_key(attempt.task, attempt.repetition),
                attempts=attempt.attempt + 1,
                kind=outcome.kind,
                error=outcome.error,
            )
        )
