"""Structured event tracing for simulations.

Tracing is optional (the engine takes ``trace=None`` by default because large
experiments would otherwise allocate millions of records) but invaluable for
debugging protocol behaviour and for the worked examples: every broadcast,
delivery and slot outcome can be recorded and filtered after the fact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

__all__ = ["EventKind", "Event", "EventLog"]


class EventKind(enum.Enum):
    """Categories of traced events."""

    BROADCAST = "broadcast"
    DELIVERY = "delivery"
    SLOT = "slot"
    NOTE = "note"


@dataclass(frozen=True, slots=True)
class Event:
    """One traced event."""

    kind: EventKind
    round_index: int
    node_id: Optional[int] = None
    detail: tuple = ()

    def __str__(self) -> str:
        who = f" node={self.node_id}" if self.node_id is not None else ""
        return f"[r{self.round_index}] {self.kind.value}{who} {self.detail}"


class EventLog:
    """Append-only event log with simple filtering utilities."""

    def __init__(self, max_events: Optional[int] = None) -> None:
        self._events: list[Event] = []
        self._dropped = 0
        self._max_events = max_events

    def record(self, kind: EventKind, round_index: int, node_id: Optional[int] = None, *detail) -> None:
        """Append an event (silently dropping once ``max_events`` is reached)."""
        if self._max_events is not None and len(self._events) >= self._max_events:
            self._dropped += 1
            return
        self._events.append(Event(kind, round_index, node_id, tuple(detail)))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def dropped(self) -> int:
        """Number of events discarded because the log was full."""
        return self._dropped

    def filter(
        self,
        kind: EventKind | None = None,
        node_id: int | None = None,
        predicate: Callable[[Event], bool] | None = None,
    ) -> list[Event]:
        """Events matching all the given criteria."""
        out: Iterable[Event] = self._events
        if kind is not None:
            out = (e for e in out if e.kind is kind)
        if node_id is not None:
            out = (e for e in out if e.node_id == node_id)
        if predicate is not None:
            out = (e for e in out if predicate(e))
        return list(out)

    def deliveries(self) -> list[Event]:
        """All delivery events, in round order."""
        return self.filter(kind=EventKind.DELIVERY)

    def broadcasts_by(self, node_id: int) -> list[Event]:
        return self.filter(kind=EventKind.BROADCAST, node_id=node_id)

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0
