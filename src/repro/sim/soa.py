"""Struct-of-arrays (SoA) slot kernels — the third execution tier.

The cohort runtime (:mod:`repro.sim.batch`) removes redundant *protocol*
evaluations by sharing one state machine across observation-identical
devices, but it still walks every cohort and every singleton through the
six-phase machinery each slot.  For the simple phase machines — the
epidemic counters and the 1Hop/2Bit streams behind NeighborWatchRB and
MultiPathRB — the whole slot is a closed-form function of a few packed
bitmasks, because their transitions consume no RNG and read the channel
only through the shared ``busy`` flag.  This module compiles such slots
once (:class:`SoaRuntime`) and then executes each slot occurrence as a
handful of integer mask operations over *all* of the slot's devices at
once, fanning out to per-device Python only at the state-commit boundary
(a sender advancing its stream, a receiver accepting a bit, a device
adopting the flood payload).

The contract is bit-identity with the per-device oracle
(:meth:`repro.sim.engine.Simulation._run_slot_scalar`): identical protocol
state trajectories, identical ``delivery_round`` stamps, identical
broadcast counts, identical RNG stream positions (trivially — compiled
slots are only formed under :meth:`~repro.sim.radio.Channel.supports_soa_rounds`,
which implies the channel never draws).  Kernels mutate the *same*
protocol objects the scalar loop would, so any slot occurrence can fall
back to the scalar path (opportunistic adversary transmitters joining a
slot) and the next occurrence resumes on the SoA tier with no
reconciliation step: per-slot role masks are recomputed from the live
objects at slot entry.

Mask conventions
----------------
Within one compiled slot group the members are indexed ``0..n-1`` in
participant (node id) order; a *mask* is a Python integer whose bit ``i``
refers to member ``i``.  Channel activity is computed through a
group-local CSR adjacency (``indices[indptr[j]:indptr[j+1]]`` lists the
local members that hear local member ``j``), and each distinct
transmitter mask is resolved once and memoized — in steady state a slot's
busy pattern repeats every cycle, so the six phases cost six dictionary
hits.

The six-phase stream recurrence mirrors :mod:`repro.core.twobit` exactly:
data rounds R1/R3 carry the parity and data bits, ack rounds R2/R4 echo
them, R5 carries sender vetoes (:func:`~repro.core.twobit.soa_veto_mask`)
plus blocker activity, R6 relays the veto.  Per-slot statistics kept by
the per-device helpers (attempt/failure tallies) are *not* maintained —
they are excluded from ``state_signature`` precisely because they never
influence behaviour.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence

import numpy as np

from ..core.epidemic import EpidemicNode
from ..core.multipath import MultiPathNode
from ..core.neighborwatch import NeighborWatchNode
from ..core.twobit import NUM_PHASES, soa_veto_mask
from .node import SimNode
from .plan import REC_HONEST, REC_ID, REC_NODE, SlotPlan

__all__ = ["SoaRuntime"]

#: Busy-pattern memo bound per slot group (cleared wholesale on overflow;
#: steady-state slots cycle through a handful of transmitter masks).
_BUSY_CACHE_MAX = 4096


def _pack_mask(flags: np.ndarray) -> int:
    """Boolean member array -> packed little-endian mask (bit i == flags[i])."""
    return int.from_bytes(np.packbits(flags, bitorder="little").tobytes(), "little")


def _mask_indices(mask: int, n: int) -> np.ndarray:
    """Packed mask -> ascending array of the set member indices below ``n``."""
    raw = np.frombuffer(mask.to_bytes((n + 7) // 8, "little"), dtype=np.uint8)
    return np.nonzero(np.unpackbits(raw, count=n, bitorder="little"))[0]


class _SlotGroup:
    """Compiled state of one slot: members, adjacency and role bindings."""

    __slots__ = (
        "slot",
        "run",
        "n",
        "nodes",
        "honest",
        "member_ids",
        "indptr",
        "indices",
        "busy_cache",
        "bcast",
        "owners",
        "receivers",
        "adopts",
        "runtime",
    )

    def phase_busy(self, tx_mask: int) -> int:
        """Channel-busy mask for one phase, counting member broadcasts.

        Resolves the disjunction of the transmitters' audibility rows via
        the per-group memo; the memo entry also retains the unpacked
        transmitter indices so the broadcast tally needs no re-unpacking on
        a hit.
        """
        if not tx_mask:
            return 0
        entry = self.busy_cache.get(tx_mask)
        if entry is None:
            runtime = self.runtime
            runtime.busy_cache_misses += 1
            idx = _mask_indices(tx_mask, self.n)
            heard = np.zeros(self.n, dtype=bool)
            indptr, indices = self.indptr, self.indices
            for j in idx:
                heard[indices[indptr[j] : indptr[j + 1]]] = True
            entry = (_pack_mask(heard), idx)
            cache = self.busy_cache
            if len(cache) >= _BUSY_CACHE_MAX:
                cache.clear()
            cache[tx_mask] = entry
        else:
            self.runtime.busy_cache_hits += 1
        busy, idx = entry
        self.bcast[idx] += 1
        return busy


def _run_stream_slot(sim, group: _SlotGroup) -> None:
    """One six-phase 1Hop/2Bit slot over all members at once.

    Role masks are rebuilt from the live sender/receiver objects at entry
    (cheap — a slot group holds one TDMA neighborhood), which is what makes
    scalar fallback occurrences free of bookkeeping: whatever an
    interleaved scalar slot did to the objects is simply re-read here.
    """
    senders = b1 = b2 = always = cond = 0
    slot_senders = None
    for i, bit, sender, idle_veto in group.owners:
        if sender.has_pending:
            parity, data = sender.soa_current_pair()
            senders |= bit
            if parity:
                b1 |= bit
            if data:
                b2 |= bit
            if slot_senders is None:
                slot_senders = [(bit, sender)]
            else:
                slot_senders.append((bit, sender))
        elif idle_veto:
            always |= bit
        else:
            cond |= bit
    active = parity1 = 0
    for i, bit, receiver, post in group.receivers:
        if receiver.complete:
            continue
        active |= bit
        if receiver.expected_parity:
            parity1 |= bit

    phase_busy = group.phase_busy
    busy0 = phase_busy(b1)
    heard1 = busy0 & active
    busy1 = phase_busy(heard1)
    busy2 = phase_busy(b2)
    heard2 = busy2 & active
    busy3 = phase_busy(heard2)
    # Conditional blockers arm on any activity they heard in the four
    # data/ack rounds (TwoBitBlocker listens R1-R4 and jams R5/R6).
    blockers = always | (cond & (busy0 | busy1 | busy2 | busy3))
    busy4 = phase_busy(soa_veto_mask(senders, b1, b2, busy1, busy3) | blockers)
    heard_veto = busy4 & active
    busy5 = phase_busy(heard_veto | blockers)

    if slot_senders is not None:
        final = busy5 & senders
        for bit, sender in slot_senders:
            if not (final & bit):
                sender.soa_advance()

    # A receiver accepts exactly when its slot was veto-free and the parity
    # it heard matches the next expected one (XNOR against the parity mask);
    # the data bit is its R3 observation.
    accepted = active & ~heard_veto & ~(heard1 ^ parity1)
    if accepted:
        end_round = sim.round_index + NUM_PHASES
        nodes = group.nodes
        honest = group.honest
        for i, bit, receiver, post in group.receivers:
            if accepted & bit:
                receiver.soa_append(1 if heard2 & bit else 0)
                post()
                node = nodes[i]
                if honest[i] and node.delivery_round is None and node.delivered:
                    node.mark_delivered(end_round)


def _run_epidemic_slot(sim, group: _SlotGroup) -> None:
    """One single-phase epidemic slot: flood decisions + sole-decode adoption.

    A listener decodes a payload exactly when *one* transmission is audible
    to it (two or more collide into undecodable noise), which is the
    deterministic unit-disk rule the scalar channel kernels apply; the
    adoption callback revalidates payload shape and the member's
    not-yet-adopted status, so stale role assumptions are impossible.
    """
    transmitters = None
    for i, pop in group.owners:
        payload = pop()
        if payload is not None:
            if transmitters is None:
                transmitters = [(i, tuple(payload))]
            else:
                transmitters.append((i, tuple(payload)))
    if transmitters is None:
        return
    indptr, indices = group.indptr, group.indices
    bcast = group.bcast
    adopts = group.adopts
    nodes = group.nodes
    honest = group.honest
    end_round = sim.round_index + 1
    if len(transmitters) == 1:
        j, payload = transmitters[0]
        bcast[j] += 1
        sole = indices[indptr[j] : indptr[j + 1]]
        payload_of_sole = None
    else:
        counts = np.zeros(group.n, dtype=np.int64)
        sender_of = np.zeros(group.n, dtype=np.int64)
        payload_of = {}
        for j, payload in transmitters:
            bcast[j] += 1
            payload_of[j] = payload
            rows = indices[indptr[j] : indptr[j + 1]]
            counts[rows] += 1
            sender_of[rows] = j
        sole = np.nonzero(counts == 1)[0]
        payload_of_sole = (payload_of, sender_of)
    for i in sole:
        i = int(i)
        if payload_of_sole is not None:
            payload = payload_of_sole[0][int(payload_of_sole[1][i])]
        if adopts[i](payload):
            node = nodes[i]
            if honest[i] and node.delivery_round is None and node.delivered:
                node.mark_delivered(end_round)


#: Protocol family -> (kernel, required rounds per slot).  NeighborWatchRB
#: and MultiPathRB share the stream kernel: both drive 1Hop/2Bit exchanges
#: and differ only in the post-accept callback their ``soa_state_spec``
#: binds (the commit-pipeline rerun vs. the control-stream drain).
_FAMILIES = (
    (NeighborWatchNode, _run_stream_slot, NUM_PHASES),
    (MultiPathNode, _run_stream_slot, NUM_PHASES),
    (EpidemicNode, _run_epidemic_slot, 1),
)


class SoaRuntime:
    """Per-simulation compilation and execution of SoA slot groups.

    Construction walks the plan's slot records and compiles every slot
    whose participants all belong to one :data:`soa-compilable <_FAMILIES>`
    family (adversaries of a different class in the static records reject
    the slot; opportunistic joiners are handled per occurrence by the
    engine's scalar fallback).  ``groups`` maps each compiled slot to its
    :class:`_SlotGroup`; an empty map means the simulation gains nothing
    from this tier and the engine discards the runtime.
    """

    def __init__(
        self,
        nodes: Sequence[SimNode],
        plan: SlotPlan,
        link_state,
        phases_per_slot: int,
    ) -> None:
        self.groups: dict[int, _SlotGroup] = {}
        self.member_slots = 0
        self.slots_run = 0
        self.scalar_fallbacks = 0
        self.busy_cache_hits = 0
        self.busy_cache_misses = 0
        for slot, records in plan.slot_records.items():
            group = self._compile_slot(slot, records, link_state, phases_per_slot)
            if group is not None:
                self.groups[slot] = group
                self.member_slots += group.n

    # -- compilation -----------------------------------------------------------------
    def _compile_slot(
        self, slot: int, records: tuple, link_state, phases_per_slot: int
    ) -> Optional[_SlotGroup]:
        first = records[0][REC_NODE].protocol
        kernel = required_phases = None
        family = None
        for cls, run, phases in _FAMILIES:
            if isinstance(first, cls):
                family, kernel, required_phases = cls, run, phases
                break
        if family is None or phases_per_slot != required_phases:
            return None
        specs = []
        for record in records:
            proto = record[REC_NODE].protocol
            if (
                not isinstance(proto, family)
                or not getattr(proto, "soa_compilable", False)
                or getattr(proto, "may_transmit_anywhere", False)
            ):
                return None
            spec = proto.soa_state_spec(slot)
            if spec is None:
                return None
            specs.append(spec)

        n = len(records)
        member_ids = np.asarray([record[REC_ID] for record in records], dtype=np.int64)
        if n > 1 and np.any(np.diff(member_ids) <= 0):
            return None
        adjacency = self._group_adjacency(member_ids, link_state)
        if adjacency is None:
            return None

        group = _SlotGroup()
        group.slot = slot
        group.run = kernel
        group.n = n
        group.nodes = tuple(record[REC_NODE] for record in records)
        group.honest = tuple(record[REC_HONEST] for record in records)
        group.member_ids = member_ids
        group.indptr, group.indices = adjacency
        group.busy_cache = {}
        group.bcast = np.zeros(n, dtype=np.int64)
        group.runtime = self
        group.adopts = None
        owners = []
        receivers = []
        if kernel is _run_epidemic_slot:
            for i, spec in enumerate(specs):
                if spec["owner"]:
                    owners.append((i, spec["pop"]))
            group.adopts = tuple(spec["adopt"] for spec in specs)
        else:
            for i, spec in enumerate(specs):
                bit = 1 << i
                if spec["role"] == "owner":
                    owners.append((i, bit, spec["sender"], spec["idle_veto"]))
                else:
                    post = spec.get("update_commits")
                    if post is None:
                        post = partial(spec["drain_slot"], slot)
                    receivers.append((i, bit, spec["receiver"], post))
        group.owners = tuple(owners)
        group.receivers = tuple(receivers)
        return group

    @staticmethod
    def _group_adjacency(member_ids: np.ndarray, link_state):
        """Group-local hearers-of-sender CSR from the channel's link state.

        ``indices[indptr[j]:indptr[j+1]]`` lists the local indices that hear
        local member ``j`` — column ``j`` of the members' audibility
        submatrix on the dense tier, the intersection of ``j``'s global CSR
        neighborhood with the member set on the sparse tier (unit-disk
        audibility is symmetric, so rows and columns agree).
        """
        n = member_ids.size
        matrix = None
        if isinstance(link_state, np.ndarray):
            matrix = link_state
        elif hasattr(link_state, "matrix"):
            matrix = link_state.matrix
        if matrix is not None:
            sub = np.asarray(matrix[np.ix_(member_ids, member_ids)], dtype=bool)
            hearers, senders = np.nonzero(sub)
            order = np.argsort(senders, kind="stable")
            indices = np.ascontiguousarray(hearers[order])
            counts = np.bincount(senders, minlength=n)
        elif hasattr(link_state, "indptr"):
            global_indptr = link_state.indptr
            global_indices = link_state.indices
            per_member = []
            counts = np.zeros(n, dtype=np.int64)
            for j, gid in enumerate(member_ids):
                nbrs = np.asarray(global_indices[global_indptr[gid] : global_indptr[gid + 1]])
                pos = np.minimum(np.searchsorted(member_ids, nbrs), n - 1)
                local = pos[member_ids[pos] == nbrs]
                per_member.append(local)
                counts[j] = local.size
            indices = (
                np.concatenate(per_member) if per_member else np.zeros(0, dtype=np.int64)
            )
        else:
            return None
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, np.asarray(indices, dtype=np.int64)

    # -- execution -------------------------------------------------------------------
    def run_slot(self, sim, group: _SlotGroup) -> None:
        """Execute one compiled slot occurrence (no opportunistic joiners)."""
        self.slots_run += 1
        group.run(sim, group)

    def flush_broadcasts(self) -> None:
        """Fold the batched per-member broadcast tallies into the nodes.

        Called by the engine at the end of ``run()``/``run_slots()`` — the
        only points where ``SimNode.broadcasts`` is consumed.  Idempotent:
        each flush zeroes the accumulators, and scalar-fallback occurrences
        increment the nodes directly, so the two paths compose.
        """
        for group in self.groups.values():
            counts = group.bcast
            hot = np.nonzero(counts)[0]
            if hot.size == 0:
                continue
            nodes = group.nodes
            for i in hot:
                nodes[i].broadcasts += int(counts[i])
            counts[:] = 0

    # -- introspection ---------------------------------------------------------------
    def info(self) -> dict:
        """Counters for :meth:`Simulation.plan_cache_info` (see its docstring)."""
        return {
            "enabled": True,
            "slots_compiled": len(self.groups),
            "member_slots": self.member_slots,
            "slots_run": self.slots_run,
            "scalar_fallbacks": self.scalar_fallbacks,
            "busy_cache_hits": self.busy_cache_hits,
            "busy_cache_misses": self.busy_cache_misses,
            "busy_cache_entries": sum(len(g.busy_cache) for g in self.groups.values()),
        }
