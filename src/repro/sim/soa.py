"""Struct-of-arrays (SoA) slot kernels — the third execution tier.

The cohort runtime (:mod:`repro.sim.batch`) removes redundant *protocol*
evaluations by sharing one state machine across observation-identical
devices, but it still walks every cohort and every singleton through the
six-phase machinery each slot.  For the simple phase machines — the
epidemic counters and the 1Hop/2Bit streams behind NeighborWatchRB and
MultiPathRB — the whole slot is a closed-form function of a few packed
bitmasks, because their transitions consume no RNG and read the channel
only through the shared ``busy`` flag.  This module compiles such slots
once (:class:`SoaRuntime`) and then executes each slot occurrence as a
handful of integer mask operations over *all* of the slot's devices at
once, fanning out to per-device Python only at the state-commit boundary
(a sender advancing its stream, a receiver accepting a bit, a device
adopting the flood payload).

The contract is bit-identity with the per-device oracle
(:meth:`repro.sim.engine.Simulation._run_slot_scalar`): identical protocol
state trajectories, identical ``delivery_round`` stamps, identical
broadcast counts, identical RNG stream positions, and — on traced runs —
an identical event stream.  Which channel configurations lower to this
tier is decided per capability by
:meth:`~repro.sim.radio.Channel.soa_round_support`:

* **busy models** — unit-disk busy is an audibility *disjunction* (resolved
  through a group-local CSR adjacency); Friis busy is a carrier-sense
  *power sum* (resolved through lazily cached member×member power columns
  whose row sums reproduce :meth:`FriisChannel._resolve_powers` float
  for float, so thresholds and the SINR argmax are bit-identical).
* **loss draws** — the scalar loop draws exactly once per
  single-transmission (unit disk) or decodable (Friis) listener, in
  listener order (the PR 3 batching contract).  That count depends only on
  the transmitter mask and the geometry — never on protocol state — so it
  is memoized alongside the busy mask and replayed as one
  ``rng.random(k)`` per phase, consuming the generator exactly like the
  scalar loop.  The drawn *values* are never needed: losses convert
  MESSAGE into COLLISION, both of which are busy, and the stream machines
  read only ``busy`` (the epidemic kernel, which does decode payloads,
  keeps its draws and filters adopters with them).
* **capture** — Friis SINR capture is deterministic (an argmax) and
  compiles; unit-disk ``capture_probability`` draws are data-dependent
  (a uniform plus an integer choice per collision) and keep those
  configurations on the scalar/cohort tiers.
* **tracing** — BROADCAST/DELIVERY events are synthesized from the packed
  masks after each slot's mask algebra, in the exact order the scalar
  loop's record iteration emits them, so traced runs stay on this tier.

Kernels mutate the *same* protocol objects the scalar loop would, so any
slot occurrence can fall back to the scalar path (opportunistic adversary
transmitters joining a slot) and the next occurrence resumes on the SoA
tier with no reconciliation step: per-slot role masks are recomputed from
the live objects at slot entry.

Mask conventions
----------------
Within one compiled slot group the members are indexed ``0..n-1`` in
participant (node id) order; a *mask* is a Python integer whose bit ``i``
refers to member ``i``.  Each distinct transmitter mask is resolved once
and memoized as ``(busy mask, transmitter indices, loss-draw count)`` — in
steady state a slot's busy pattern repeats every cycle, so the six phases
cost six dictionary hits.  Broadcast counts are tallied per transmitter
mask (one dictionary bump per phase) and decoded into per-node counters at
:meth:`SoaRuntime.flush_broadcasts`.

The six-phase stream recurrence mirrors :mod:`repro.core.twobit` exactly:
data rounds R1/R3 carry the parity and data bits, ack rounds R2/R4 echo
them, R5 carries sender vetoes (:func:`~repro.core.twobit.soa_veto_mask`)
plus blocker activity, R6 relays the veto.  Per-slot statistics kept by
the per-device helpers (attempt/failure tallies) are *not* maintained —
they are excluded from ``state_signature`` precisely because they never
influence behaviour.
"""

from __future__ import annotations

import warnings
from functools import partial
from typing import Optional, Sequence

import numpy as np

from ..core.epidemic import EpidemicNode
from ..core.multipath import MultiPathNode
from ..core.neighborwatch import NeighborWatchNode
from ..core.twobit import NUM_PHASES, soa_veto_mask
from .events import EventKind
from .node import SimNode
from .plan import REC_HONEST, REC_ID, REC_NODE, SlotPlan

__all__ = ["SoaRuntime"]

#: Busy-pattern memo bound per slot group (cleared wholesale on overflow;
#: steady-state slots cycle through a handful of transmitter masks).
_BUSY_CACHE_MAX = 4096

#: Frame kind broadcast in each stream phase, for trace synthesis.  Senders
#: carry DATA_BIT in R1/R3, receivers echo ACK in R2/R4, and every R5/R6
#: transmission — sender veto, receiver relay, or blocker jam — is a VETO
#: frame (``TwoBitBlocker.act`` and the sender/receiver machines agree).
_STREAM_PHASE_KINDS = ("DATA_BIT", "ACK", "DATA_BIT", "ACK", "VETO", "VETO")


def _pack_mask(flags: np.ndarray) -> int:
    """Boolean member array -> packed little-endian mask (bit i == flags[i])."""
    return int.from_bytes(np.packbits(flags, bitorder="little").tobytes(), "little")


def _mask_indices(mask: int, n: int) -> np.ndarray:
    """Packed mask -> ascending array of the set member indices below ``n``."""
    raw = np.frombuffer(mask.to_bytes((n + 7) // 8, "little"), dtype=np.uint8)
    return np.nonzero(np.unpackbits(raw, count=n, bitorder="little"))[0]


def _power_block(link_state, row_ids: np.ndarray, col_ids: np.ndarray):
    """Exact rows×cols received-power block of the channel's link state.

    Sliced from the dense power matrix or recomputed on demand by the
    sparse tier's ``submatrix`` (defined to be bit-identical to the dense
    slice), so the block equals the ``plan.submatrix`` slice the scalar
    loop would hand ``_resolve_powers`` — same values, same row layout,
    hence the same pairwise column sums.  ``None`` when the link state
    exposes no power representation.
    """
    if isinstance(link_state, np.ndarray):
        sub = link_state[np.ix_(row_ids, col_ids)]
    elif hasattr(link_state, "submatrix"):
        sub = link_state.submatrix(row_ids, col_ids)
    elif hasattr(link_state, "matrix"):
        sub = link_state.matrix[np.ix_(row_ids, col_ids)]
    else:
        return None
    return np.ascontiguousarray(np.asarray(sub, dtype=np.float64))


class _PowerColumns:
    """Lazily materialized member×member power block of a power-sum group.

    Eagerly slicing every group's full n×n block at compile time is
    quadratic in group size across the whole plan — and on the sparse tier
    each block is *recomputed* from positions, which made the
    epidemic-friis-1200 macro spend seconds compiling blocks for a
    sub-second run.  The kernels only ever read transmitter *columns*, and
    steady-state slots cycle through a handful of transmitter sets, so
    columns are fetched on first use (batched per miss) and cached per
    member.  Column ``j`` equals column ``j`` of the eager block float for
    float, and :meth:`gather` lays the requested columns out ``(n, k)`` in
    request order exactly like ``block[:, idx]`` — same values in the same
    reduction order, hence bit-identical row sums.
    """

    __slots__ = ("member_ids", "link_state", "cols")

    def __init__(self, member_ids: np.ndarray, link_state) -> None:
        self.member_ids = member_ids
        self.link_state = link_state
        self.cols: dict[int, np.ndarray] = {}

    def gather(self, idx) -> np.ndarray:
        """``(n, k)`` power block of the given transmitter columns."""
        cols = self.cols
        missing = [int(j) for j in idx if int(j) not in cols]
        if missing:
            block = _power_block(
                self.link_state,
                self.member_ids,
                self.member_ids[np.asarray(missing, dtype=np.intp)],
            )
            for pos, j in enumerate(missing):
                cols[j] = np.ascontiguousarray(block[:, pos])
        n = self.member_ids.size
        out = np.empty((n, len(idx)), dtype=np.float64)
        for pos, j in enumerate(idx):
            out[:, pos] = cols[int(j)]
        return out


class _SlotGroup:
    """Compiled state of one slot: members, channel structure, role bindings."""

    __slots__ = (
        "slot",
        "run",
        "n",
        "records",
        "member_ids",
        "indptr",
        "indices",
        "power",
        "busy_cache",
        "tally",
        "cache_hits",
        "cache_misses",
        "owners",
        "receivers",
        "adopts",
        "runtime",
    )

    def phase_busy(self, tx_mask: int) -> int:
        """Channel-busy mask for one phase, tallying member broadcasts.

        Resolves the transmitter mask via the per-group memo, bumps the
        per-mask broadcast tally, and — when the configuration draws — burns
        the memoized number of loss draws off the simulation generator so
        the stream position tracks the scalar loop exactly.
        """
        if not tx_mask:
            return 0
        entry = self.busy_cache.get(tx_mask)
        if entry is None:
            entry = self._resolve_mask(tx_mask)
        else:
            self.cache_hits += 1
        tally = self.tally
        tally[tx_mask] = tally.get(tx_mask, 0) + 1
        draws = entry[2]
        if draws:
            self.runtime.rng_random(draws)
        return entry[0]

    def _resolve_mask(self, tx_mask: int) -> tuple:
        """Miss path of :meth:`phase_busy`: resolve + memoize one mask.

        The memo entry is ``(busy mask, transmitter indices, draw count)``.
        The draw count — single-audible (disjunction) or decodable
        (power-sum) members that are *not* transmitting — is cacheable
        because the scalar channel kernels draw for every such listener
        regardless of protocol state, and a phase's listeners are exactly
        the members outside its transmitter set.  Transmitter bits of the
        busy mask are garbage by the same token; no phase of the stream
        recurrence reads a member's busy bit in a phase it transmits in.
        """
        self.cache_misses += 1
        runtime = self.runtime
        n = self.n
        idx = _mask_indices(tx_mask, n)
        loss = runtime.loss
        draws = 0
        power = self.power
        if power is not None:
            # Power-sum (Friis) busy: the exact expressions of the
            # vectorized _resolve_powers kernel over the compiled columns.
            cols = power.gather(idx)
            total = cols.sum(axis=1)
            busy_flags = total >= runtime.sense_threshold
            if loss > 0.0:
                strongest = cols.argmax(axis=1)
                signal = cols[np.arange(n), strongest]
                interference = total - signal + runtime.noise_floor
                decodable = (
                    busy_flags
                    & (signal >= runtime.reception_threshold)
                    & (signal >= runtime.capture_threshold * interference)
                )
                decodable[idx] = False
                draws = int(np.count_nonzero(decodable))
        else:
            indptr, indices = self.indptr, self.indices
            if loss > 0.0:
                counts = np.zeros(n, dtype=np.int64)
                for j in idx:
                    counts[indices[indptr[j] : indptr[j + 1]]] += 1
                busy_flags = counts > 0
                sole = counts == 1
                sole[idx] = False
                draws = int(np.count_nonzero(sole))
            else:
                busy_flags = np.zeros(n, dtype=bool)
                for j in idx:
                    busy_flags[indices[indptr[j] : indptr[j + 1]]] = True
        return self._memoize(tx_mask, (_pack_mask(busy_flags), idx, draws))

    def _memoize(self, key: int, entry: tuple) -> tuple:
        """Store one resolved entry in the bounded per-group memo.

        Shared by the stream busy resolver and the epidemic decode-geometry
        resolver (one group only ever holds one entry shape).  Overflow
        clears the memo wholesale, counts the evictions, and warns once per
        runtime when the lookups were mostly misses — a thrashing memo
        means this slot's transmitter masks do not repeat and the group is
        re-resolving every cycle.
        """
        cache = self.busy_cache
        if len(cache) >= _BUSY_CACHE_MAX:
            runtime = self.runtime
            runtime.busy_cache_evictions += len(cache)
            calls = self.cache_hits + self.cache_misses
            if not runtime.thrash_warned and self.cache_misses * 2 > calls:
                runtime.thrash_warned = True
                warnings.warn(
                    f"SoA busy cache thrashing on slot {self.slot}: "
                    f"{self.cache_misses}/{calls} lookups missed before the "
                    f"{_BUSY_CACHE_MAX}-entry memo overflowed; this slot's "
                    "transmitter masks do not repeat, so the compiled group "
                    "is re-resolving masks every cycle",
                    RuntimeWarning,
                    stacklevel=4,
                )
            cache.clear()
        cache[key] = entry
        return entry

    def trace_stream(self, trace, round_index: int, phase_tx: tuple) -> None:
        """Synthesize one stream slot's BROADCAST events from its tx masks.

        The scalar loop records one BROADCAST per acting record, phase by
        phase, in record (ascending member) order — exactly the order the
        unpacked mask indices walk.
        """
        member_ids = self.member_ids
        slot = self.slot
        n = self.n
        for phase, tx_mask in enumerate(phase_tx):
            if not tx_mask:
                continue
            kind = _STREAM_PHASE_KINDS[phase]
            rnd = round_index + phase
            for i in _mask_indices(tx_mask, n):
                trace.record(
                    EventKind.BROADCAST, rnd, int(member_ids[i]), slot, phase, kind
                )


def _run_stream_slot(sim, group: _SlotGroup) -> None:
    """One six-phase 1Hop/2Bit slot over all members at once.

    Role masks are rebuilt from the live sender/receiver objects at entry
    (cheap — a slot group holds one TDMA neighborhood), which is what makes
    scalar fallback occurrences free of bookkeeping: whatever an
    interleaved scalar slot did to the objects is simply re-read here.
    """
    senders = b1 = b2 = always = cond = 0
    slot_senders = None
    for i, bit, sender, idle_veto in group.owners:
        if sender.has_pending:
            parity, data = sender.soa_current_pair()
            senders |= bit
            if parity:
                b1 |= bit
            if data:
                b2 |= bit
            if slot_senders is None:
                slot_senders = [(bit, sender)]
            else:
                slot_senders.append((bit, sender))
        elif idle_veto:
            always |= bit
        else:
            cond |= bit
    active = parity1 = 0
    for i, bit, receiver, post in group.receivers:
        if receiver.complete:
            continue
        active |= bit
        if receiver.expected_parity:
            parity1 |= bit

    phase_busy = group.phase_busy
    busy0 = phase_busy(b1)
    heard1 = busy0 & active
    busy1 = phase_busy(heard1)
    busy2 = phase_busy(b2)
    heard2 = busy2 & active
    busy3 = phase_busy(heard2)
    # Conditional blockers arm on any activity they heard in the four
    # data/ack rounds (TwoBitBlocker listens R1-R4 and jams R5/R6).
    blockers = always | (cond & (busy0 | busy1 | busy2 | busy3))
    tx4 = soa_veto_mask(senders, b1, b2, busy1, busy3) | blockers
    busy4 = phase_busy(tx4)
    heard_veto = busy4 & active
    tx5 = heard_veto | blockers
    busy5 = phase_busy(tx5)

    trace = sim.trace
    if trace is not None:
        group.trace_stream(
            trace, sim.round_index, (b1, heard1, b2, heard2, tx4, tx5)
        )

    if slot_senders is not None:
        final = busy5 & senders
        for bit, sender in slot_senders:
            if not (final & bit):
                sender.soa_advance()

    # A receiver accepts exactly when its slot was veto-free and the parity
    # it heard matches the next expected one (XNOR against the parity mask);
    # the data bit is its R3 observation.
    accepted = active & ~heard_veto & ~(heard1 ^ parity1)
    if accepted:
        end_round = sim.round_index + NUM_PHASES
        records = group.records
        for i, bit, receiver, post in group.receivers:
            if accepted & bit:
                receiver.soa_append(1 if heard2 & bit else 0)
                post()
                record = records[i]
                node = record[REC_NODE]
                if record[REC_HONEST] and node.delivery_round is None and node.delivered:
                    node.mark_delivered(end_round)
                    if trace is not None:
                        trace.record(EventKind.DELIVERY, end_round, node.node_id)


def _epidemic_decodes_disjunction(group: _SlotGroup, transmitters: list) -> tuple:
    """Unit-disk decode geometry: members hearing exactly one transmission.

    Returns aligned ``(rows, senders)`` arrays — the decoding member
    indices ascending (compile sorts the CSR rows), matching the scalar
    loop's listener iteration order for loss draws and DELIVERY events, and
    the member index of the sole audible transmitter each row decodes.
    Transmitters are excluded from the rows only when drawing — the scalar
    channel never resolves them (they are not listeners), and on the
    deterministic path their inclusion is a no-op because the adoption
    callback rejects already-adopted members.
    """
    indptr, indices = group.indptr, group.indices
    if len(transmitters) == 1:
        j, _payload = transmitters[0]
        rows = indices[indptr[j] : indptr[j + 1]]
        if group.runtime.loss > 0.0:
            rows = rows[rows != j]
        return rows, np.full(rows.size, j, dtype=np.int64)
    counts = np.zeros(group.n, dtype=np.int64)
    sender_of = np.zeros(group.n, dtype=np.int64)
    for j, _payload in transmitters:
        heard_by = indices[indptr[j] : indptr[j + 1]]
        counts[heard_by] += 1
        sender_of[heard_by] = j
    if group.runtime.loss > 0.0:
        for j, _payload in transmitters:
            counts[j] = 0
    rows = np.nonzero(counts == 1)[0]
    return rows, sender_of[rows]


def _epidemic_decodes_power(group: _SlotGroup, transmitters: list) -> tuple:
    """Friis decode geometry: members whose strongest signal passes SINR.

    Same ``(rows, senders)`` shape; the expressions mirror the vectorized
    ``_resolve_powers`` kernel over the compiled power columns, so the
    sense/reception/capture thresholds and the strongest-transmitter argmax
    are bit-identical to the scalar channel.  A decoding member adopts the
    *strongest* transmitter's payload (capture effect), not a sole
    transmission's.
    """
    runtime = group.runtime
    n = group.n
    tx_idx = np.asarray([j for j, _payload in transmitters], dtype=np.int64)
    cols = group.power.gather(tx_idx)
    total = cols.sum(axis=1)
    strongest = cols.argmax(axis=1)
    signal = cols[np.arange(n), strongest]
    interference = total - signal + runtime.noise_floor
    decodable = (
        (total >= runtime.sense_threshold)
        & (signal >= runtime.reception_threshold)
        & (signal >= runtime.capture_threshold * interference)
    )
    decodable[tx_idx] = False
    rows = np.nonzero(decodable)[0]
    return rows, tx_idx[strongest[rows]]


def _epidemic_geometry(group: _SlotGroup, transmitters: list, tx_mask: int) -> tuple:
    """Decode geometry for one transmitter set, memoized per packed mask.

    ``(rows, senders)`` is a pure function of the transmitter set and the
    compiled channel structure — never of payloads or protocol state — so
    the epidemic steady state (every member flooding every cycle) replays
    one memo entry per slot instead of re-reducing the power columns or the
    adjacency counts.  Shares the group memo (and its eviction accounting)
    with the stream kernels' busy entries; an epidemic group never calls
    :meth:`_SlotGroup.phase_busy`, so the entry shapes cannot collide.
    """
    entry = group.busy_cache.get(tx_mask)
    if entry is not None:
        group.cache_hits += 1
        return entry
    group.cache_misses += 1
    if group.power is not None:
        entry = _epidemic_decodes_power(group, transmitters)
    else:
        entry = _epidemic_decodes_disjunction(group, transmitters)
    return group._memoize(tx_mask, entry)


def _run_epidemic_slot(sim, group: _SlotGroup) -> None:
    """One single-phase epidemic slot: flood decisions + decode adoption.

    A listener decodes a payload when exactly *one* transmission is audible
    to it (unit disk) or when the strongest received power passes the SINR
    test (Friis) — the same rules the scalar channel kernels apply — and a
    configured loss then drops each decode independently with one draw per
    decoding listener, in ascending member order.  The adoption callback
    revalidates payload shape and the member's not-yet-adopted status, so
    stale role assumptions are impossible.
    """
    transmitters = None
    for i, pop in group.owners:
        payload = pop()
        if payload is not None:
            if transmitters is None:
                transmitters = [(i, tuple(payload))]
            else:
                transmitters.append((i, tuple(payload)))
    if transmitters is None:
        return
    runtime = group.runtime
    trace = sim.trace
    round_index = sim.round_index
    tally = group.tally
    member_ids = group.member_ids
    tx_mask = 0
    for j, _payload in transmitters:
        bit = 1 << j
        tx_mask |= bit
        tally[bit] = tally.get(bit, 0) + 1
        if trace is not None:
            trace.record(
                EventKind.BROADCAST,
                round_index,
                int(member_ids[j]),
                group.slot,
                0,
                "PAYLOAD",
            )
    rows, senders = _epidemic_geometry(group, transmitters, tx_mask)
    if rows.size and runtime.loss > 0.0:
        keep = runtime.rng_random(rows.size) >= runtime.loss
        rows = rows[keep]
        senders = senders[keep]
    # Adoption is monotone, so members this runtime has already seen adopt
    # can be dropped wholesale: their callback would validate and return
    # False without any side effect.  The flags are conservative (a member
    # adopting on a scalar-fallback occurrence just keeps taking the slow
    # path), applied only *after* the loss draw so the stream position is
    # untouched.  In the flooded steady state this empties the loop.
    adopted = runtime.adopted_flags
    if rows.size:
        fresh = ~adopted[member_ids[rows]]
        rows = rows[fresh]
        senders = senders[fresh]
    payload_of = dict(transmitters)
    adopts = group.adopts
    records = group.records
    end_round = round_index + 1
    for i, s in zip(rows.tolist(), senders.tolist()):
        if adopts[i](payload_of[s]):
            record = records[i]
            adopted[record[REC_ID]] = True
            node = record[REC_NODE]
            if record[REC_HONEST] and node.delivery_round is None and node.delivered:
                node.mark_delivered(end_round)
                if trace is not None:
                    trace.record(EventKind.DELIVERY, end_round, node.node_id)


#: Protocol family -> (kernel, required rounds per slot).  NeighborWatchRB
#: and MultiPathRB share the stream kernel: both drive 1Hop/2Bit exchanges
#: and differ only in the post-accept callback their ``soa_state_spec``
#: binds (the commit-pipeline rerun vs. the control-stream drain).
_FAMILIES = (
    (NeighborWatchNode, _run_stream_slot, NUM_PHASES),
    (MultiPathNode, _run_stream_slot, NUM_PHASES),
    (EpidemicNode, _run_epidemic_slot, 1),
)


class SoaRuntime:
    """Per-simulation compilation and execution of SoA slot groups.

    Construction walks the plan's slot records and compiles every slot
    whose participants all belong to one :data:`soa-compilable <_FAMILIES>`
    family (adversaries of a different class in the static records reject
    the slot; opportunistic joiners are handled per occurrence by the
    engine's scalar fallback).  ``groups`` maps each compiled slot to its
    :class:`_SlotGroup`; an empty map means the simulation gains nothing
    from this tier and the engine discards the runtime.

    The channel's :meth:`~repro.sim.radio.Channel.soa_round_support`
    verdict picks the busy model — ``"disjunction"`` compiles a group-local
    CSR adjacency, ``"power-sum"`` a lazy member×member power-column
    cache (:class:`_PowerColumns`) — and
    carries the loss probability; ``rng`` is the simulation generator the
    loss draws are burned from (required whenever loss is configured).
    """

    def __init__(
        self,
        nodes: Sequence[SimNode],
        plan: SlotPlan,
        link_state,
        phases_per_slot: int,
        *,
        channel=None,
        rng=None,
    ) -> None:
        support = channel.soa_round_support() if channel is not None else None
        self.busy_mode = support.busy if support is not None else "disjunction"
        self.loss = float(support.loss_probability) if support is not None else 0.0
        self.rng_random = rng.random if rng is not None else None
        if self.loss > 0.0 and self.rng_random is None:
            raise ValueError("loss-drawing SoA kernels need the simulation rng")
        self.sense_threshold = 0.0
        self.reception_threshold = 0.0
        self.capture_threshold = 0.0
        self.noise_floor = 0.0
        if self.busy_mode == "power-sum":
            self.sense_threshold = channel.sense_threshold
            self.reception_threshold = channel.reception_threshold
            self.capture_threshold = channel.capture_threshold
            self.noise_floor = channel.noise_floor
        self.groups: dict[int, _SlotGroup] = {}
        #: id(protocol) -> (owner_slot, pop, adopt), for families with a
        #: slot-independent spec (resolved and validated once per device
        #: across all of its slots).
        self._node_specs: dict[int, tuple] = {}
        #: Node-id-indexed "known to have adopted" flags for the epidemic
        #: kernel (conservative: set only by compiled adoptions).
        max_id = max((node.node_id for node in nodes), default=0)
        self.adopted_flags = np.zeros(max_id + 1, dtype=bool)
        self.member_slots = 0
        self.slots_run = 0
        self.scalar_fallbacks = 0
        self.busy_cache_evictions = 0
        self.thrash_warned = False
        for slot, records in plan.slot_records.items():
            group = self._compile_slot(
                slot,
                records,
                plan.participant_arrays[slot],
                link_state,
                phases_per_slot,
            )
            if group is not None:
                self.groups[slot] = group
                self.member_slots += group.n

    # -- compilation -----------------------------------------------------------------
    def _compile_slot(
        self,
        slot: int,
        records: tuple,
        member_ids: np.ndarray,
        link_state,
        phases_per_slot: int,
    ) -> Optional[_SlotGroup]:
        first = records[0][REC_NODE].protocol
        kernel = required_phases = None
        family = None
        for cls, run, phases in _FAMILIES:
            if isinstance(first, cls):
                family, kernel, required_phases = cls, run, phases
                break
        if family is None or phases_per_slot != required_phases:
            return None
        epidemic = kernel is _run_epidemic_slot
        # The epidemic spec is slot-independent apart from the owner flag,
        # so it is resolved once per device (soa_node_spec) instead of once
        # per (member, slot) pair — each device listens in ~density-many
        # slots, and the per-pair spec dicts dominated compile time at
        # paper scale.  The stream protocols bind per-slot machines, so
        # they keep the per-slot soa_state_spec call.
        owners = []
        receivers = []
        adopts = [] if epidemic else None
        node_specs = self._node_specs
        for i, record in enumerate(records):
            proto = record[REC_NODE].protocol
            if epidemic:
                # A cached entry means this device already passed validation
                # in another slot; the common case (one entry per device,
                # ~density-many membership hits) skips the attribute checks.
                key = id(proto)
                cached = node_specs.get(key)
                if cached is None:
                    if (
                        not isinstance(proto, family)
                        or not getattr(proto, "soa_compilable", False)
                        or getattr(proto, "may_transmit_anywhere", False)
                    ):
                        return None
                    spec = proto.soa_node_spec()
                    cached = (spec["owner_slot"], spec["pop"], spec["adopt"])
                    node_specs[key] = cached
                if cached[0] == slot:
                    owners.append((i, cached[1]))
                adopts.append(cached[2])
                continue
            if (
                not isinstance(proto, family)
                or not getattr(proto, "soa_compilable", False)
                or getattr(proto, "may_transmit_anywhere", False)
            ):
                return None
            spec = proto.soa_state_spec(slot)
            if spec is None:
                return None
            bit = 1 << i
            if spec["role"] == "owner":
                owners.append((i, bit, spec["sender"], spec["idle_veto"]))
            else:
                post = spec.get("update_commits")
                if post is None:
                    post = partial(spec["drain_slot"], slot)
                receivers.append((i, bit, spec["receiver"], post))

        n = len(records)
        if n > 1 and np.any(np.diff(member_ids) <= 0):
            return None
        if self.busy_mode == "power-sum":
            if not (
                isinstance(link_state, np.ndarray)
                or hasattr(link_state, "submatrix")
                or hasattr(link_state, "matrix")
            ):
                return None
            power = _PowerColumns(member_ids, link_state)
            adjacency = (None, None)
        else:
            power = None
            adjacency = self._group_adjacency(member_ids, link_state)
            if adjacency is None:
                return None

        group = _SlotGroup()
        group.slot = slot
        group.run = kernel
        group.n = n
        group.records = records
        group.member_ids = member_ids
        group.indptr, group.indices = adjacency
        group.power = power
        group.busy_cache = {}
        group.tally = {}
        group.cache_hits = 0
        group.cache_misses = 0
        group.runtime = self
        group.adopts = tuple(adopts) if adopts is not None else None
        group.owners = tuple(owners)
        group.receivers = tuple(receivers)
        return group

    @staticmethod
    def _group_adjacency(member_ids: np.ndarray, link_state):
        """Group-local hearers-of-sender CSR from the channel's link state.

        ``indices[indptr[j]:indptr[j+1]]`` lists, ascending, the local
        indices that hear local member ``j`` — column ``j`` of the members'
        audibility submatrix on the dense tier, the intersection of ``j``'s
        global CSR neighborhood with the member set on the sparse tier
        (unit-disk audibility is symmetric, so rows and columns agree).
        Rows are kept sorted so the kernels' decode/draw iteration matches
        the scalar loop's ascending listener order.
        """
        n = member_ids.size
        matrix = None
        if isinstance(link_state, np.ndarray):
            matrix = link_state
        elif hasattr(link_state, "matrix"):
            matrix = link_state.matrix
        if matrix is not None:
            sub = np.asarray(matrix[np.ix_(member_ids, member_ids)], dtype=bool)
            # Row-major nonzero over the transpose comes out sender-sorted
            # with hearers ascending within each sender — the CSR layout,
            # with no argsort/reindex pass.
            senders, hearers = np.nonzero(sub.T)
            indices = hearers
            counts = np.bincount(senders, minlength=n)
        elif hasattr(link_state, "indptr"):
            global_indptr = link_state.indptr
            global_indices = link_state.indices
            per_member = []
            counts = np.zeros(n, dtype=np.int64)
            for j, gid in enumerate(member_ids):
                nbrs = np.asarray(global_indices[global_indptr[gid] : global_indptr[gid + 1]])
                pos = np.minimum(np.searchsorted(member_ids, nbrs), n - 1)
                local = np.sort(pos[member_ids[pos] == nbrs])
                per_member.append(local)
                counts[j] = local.size
            indices = (
                np.concatenate(per_member) if per_member else np.zeros(0, dtype=np.int64)
            )
        else:
            return None
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, np.asarray(indices, dtype=np.int64)

    # -- execution -------------------------------------------------------------------
    def run_slot(self, sim, group: _SlotGroup) -> None:
        """Execute one compiled slot occurrence (no opportunistic joiners)."""
        self.slots_run += 1
        group.run(sim, group)

    def flush_broadcasts(self) -> None:
        """Fold the batched per-mask broadcast tallies into the nodes.

        Called by the engine at the end of ``run()``/``run_slots()`` — the
        only points where ``SimNode.broadcasts`` is consumed.  Idempotent:
        each flush clears the tallies, and scalar-fallback occurrences
        increment the nodes directly, so the two paths compose.
        """
        for group in self.groups.values():
            tally = group.tally
            if not tally:
                continue
            n = group.n
            folded = np.zeros(n, dtype=np.int64)
            for mask, times in tally.items():
                folded[_mask_indices(mask, n)] += times
            records = group.records
            for i in np.nonzero(folded)[0]:
                records[i][REC_NODE].broadcasts += int(folded[i])
            tally.clear()

    # -- introspection ---------------------------------------------------------------
    def info(self) -> dict:
        """Counters for :meth:`Simulation.plan_cache_info` (see its docstring)."""
        groups = self.groups.values()
        return {
            "enabled": True,
            "slots_compiled": len(self.groups),
            "member_slots": self.member_slots,
            "slots_run": self.slots_run,
            "scalar_fallbacks": self.scalar_fallbacks,
            "busy_cache_hits": sum(g.cache_hits for g in groups),
            "busy_cache_misses": sum(g.cache_misses for g in groups),
            "busy_cache_entries": sum(len(g.busy_cache) for g in groups),
            "busy_cache_evictions": self.busy_cache_evictions,
        }
