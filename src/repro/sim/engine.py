"""Synchronous slotted simulation engine.

The engine reproduces the execution model of the paper: time is divided into
rounds, rounds are grouped into six-round broadcast intervals (slots), and the
globally known TDMA schedule determines which device — or which
NeighborWatchRB square — owns each slot.  In every round each device either
broadcasts a frame or listens; the channel model then determines, per
listener, whether it perceives silence, a decoded message or a collision.

Sparse slot processing
----------------------
Simulating every device in every round would make large experiments (hundreds
of devices over hundreds of thousands of rounds) prohibitively slow in Python.
The engine therefore only processes, per slot, the devices that *declared an
interest* in the slot (the slot owner plus every device that listens to it)
together with any adversary that decided to transmit during the slot.  This is
sound because a device that neither transmits nor interprets a slot cannot
have its protocol state affected by it, and it follows the guide-recommended
pattern of spending Python time only where the algorithm needs it.

Compiled slot plans
-------------------
Everything static about a run is compiled once at construction into a
:class:`~repro.sim.plan.SlotPlan`: per-slot participant records with bound
protocol methods, frozen participant id arrays, flex-candidate lists for
opportunistic transmitters, interned transmissions, an LRU of link-state
submatrices keyed by ``(slot occurrence, sender set)``, and — for channels
whose resolution consumes no RNG — a memo of whole resolved rounds keyed by
``(slot occurrence, senders, frames)``.  Together with the channel's pairwise
link state (cached per ``(channel, positions)`` pair in a small module-level
LRU so repeated simulations over the same deployment reuse it), the steady
state of a run resolves each round with a handful of dict lookups instead of
distance computations and per-listener Python loops.  ``Schedule.iter_slot_starts``
replaces the per-slot divmod arithmetic of ``locate_round``.

Cohort protocol runtime
-----------------------
On top of the compiled plan, the engine can execute the *protocol* layer in
shared cohorts (:mod:`repro.sim.batch`): honest devices whose state machines
are provably interchangeable — the paper's "meta-node" squares — are driven
by one phase-machine evaluation per cohort per round, splitting
copy-on-divergence the moment two members observe different (projected)
things and re-merging when their states reconverge.  The per-device loop in
:meth:`Simulation._run_slot_scalar` remains the tested oracle behind
``use_cohort_runtime=False`` (or ``REPRO_COHORT_RUNTIME=0``).

Struct-of-arrays slot kernels
-----------------------------
Above both sits the struct-of-arrays tier (:mod:`repro.sim.soa`): slots whose
participants all run one of the simple soa-compilable phase machines
(epidemic flooding, NeighborWatchRB, MultiPathRB) over a unit-disk channel
(capture-free; loss compiles) or a Friis/SINR channel are compiled into
packed-bitmask kernels that execute the whole six-round broadcast interval
as a handful of integer operations, touching per-device Python only where
state commits — batching loss draws in listener order and synthesizing the
event stream on traced runs.  The knob is
``use_soa_kernels`` (env ``REPRO_SOA_KERNELS``, default on); slot
occurrences joined by an opportunistic adversary transmitter, and every
non-compilable configuration, fall back to the cohort/scalar tiers, which
remain the tested oracles.

Spatially-tiled link state
--------------------------
Below the plan, the *channel* layer can run on the sparse spatially-tiled
tier (:mod:`repro.sim.linkstate`): instead of the dense ``N x N`` audibility
or power matrix, the engine keeps node positions plus a CSR neighborhood
built per region tile, and unit-disk rounds resolve through per-sender CSR
rows with only boundary-crossing transmissions exchanged between tiles.  The
knob is ``use_spatial_tiling`` (env ``REPRO_SPATIAL_TILING``, auto-on above
:data:`SPATIAL_TILING_AUTO_NODES` nodes); dense kernels remain the oracle.

The RNG contract is strict: stochastic channel configurations bypass the
round memo entirely and consume the generator exactly as the scalar reference
kernels would, and the cohort runtime and tiled round kernels preserve
listener order per round, so every result — including the content-addressed
store fingerprints of :mod:`repro.store` — is bit-identical to the pre-plan
engine.

Deliveries are stamped with the exact round at the end of the slot in which
they happened (not at the next periodic check), so ``delivery_round`` and the
latency metrics derived from it are accurate to one slot.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Optional, Sequence

import numpy as np

from ..core.protocol import Observation, SILENCE
from ..core.schedule import Schedule
from .batch import CohortRuntime
from .events import EventKind, EventLog
from .linkstate import SparseLinkState
from .node import SimNode
from .plan import REC_ID, REC_NODE, REC_ACT, REC_OBSERVE, REC_END_SLOT, REC_HONEST, REC_POSITION, SlotPlan
from .radio import Channel, Transmission
from .results import NodeOutcome, RunResult
from .soa import SoaRuntime

__all__ = [
    "Simulation",
    "link_cache_info",
    "clear_link_cache",
    "default_cohort_runtime",
    "default_soa_kernels",
    "default_spatial_tiling",
    "SPATIAL_TILING_AUTO_NODES",
]

#: Node count above which spatial tiling turns on automatically (the dense
#: link state is still comfortable below it; above it the N^2 matrices start
#: to dominate memory).  Override per process with
#: ``REPRO_SPATIAL_TILING_AUTO_NODES``.
SPATIAL_TILING_AUTO_NODES = 4096


def default_spatial_tiling(num_nodes: int) -> bool:
    """Process-wide default for :class:`Simulation`'s ``use_spatial_tiling``.

    Controlled by ``REPRO_SPATIAL_TILING``: ``1``/``true`` forces the sparse
    spatially-tiled link-state tier on at every size, ``0``/``false`` forces
    the dense tier, and the default (``auto``) enables tiling above
    :data:`SPATIAL_TILING_AUTO_NODES` nodes.  Like the cohort runtime knob,
    this is a pure memory/throughput setting: tiled and untiled runs are
    bit-identical (store fingerprints, exported rows and RNG stream positions
    included), so it lives outside :class:`~repro.sim.config.ScenarioConfig`
    and never enters fingerprints.
    """
    value = os.environ.get("REPRO_SPATIAL_TILING", "auto").strip().lower()
    if value in ("1", "true", "yes", "on"):
        return True
    if value in ("0", "false", "no", "off"):
        return False
    threshold_raw = os.environ.get("REPRO_SPATIAL_TILING_AUTO_NODES", "").strip()
    try:
        threshold = int(threshold_raw) if threshold_raw else SPATIAL_TILING_AUTO_NODES
    except ValueError:
        threshold = SPATIAL_TILING_AUTO_NODES
    return num_nodes > threshold


def default_cohort_runtime() -> bool:
    """Process-wide default for :class:`Simulation`'s ``use_cohort_runtime``.

    Controlled by the ``REPRO_COHORT_RUNTIME`` environment variable (default
    on; ``0``/``false``/``no``/``off`` disable it).  The benchmark harness
    uses the knob to capture cohort-off baselines without threading a
    parameter through every experiment — and because cohort execution is
    bit-identical to the scalar oracle, the setting can never change a result,
    only the wall clock.
    """
    value = os.environ.get("REPRO_COHORT_RUNTIME", "1").strip().lower()
    return value not in ("0", "false", "no", "off")


def default_soa_kernels() -> bool:
    """Process-wide default for :class:`Simulation`'s ``use_soa_kernels``.

    Controlled by the ``REPRO_SOA_KERNELS`` environment variable (default
    on; ``0``/``false``/``no``/``off`` disable it).  Like the cohort and
    tiling knobs this is a pure throughput setting: the struct-of-arrays
    slot kernels (:mod:`repro.sim.soa`) are bit-identical to the per-device
    oracle — exported rows, store fingerprints, ``delivery_round`` stamps,
    broadcast counts and RNG stream positions included — so it lives outside
    :class:`~repro.sim.config.ScenarioConfig` and never enters fingerprints.
    """
    value = os.environ.get("REPRO_SOA_KERNELS", "1").strip().lower()
    return value not in ("0", "false", "no", "off")

#: Bounded cache of channel link states (audibility sets / power matrices),
#: keyed by the channel's link signature and the (immutable) bytes of the
#: position array.  A handful of entries is enough: within one process the
#: same deployment is typically re-simulated back-to-back (protocol
#: comparisons, repeated seeds).  Introspect with :func:`link_cache_info`,
#: reset with :func:`clear_link_cache` — tests that assert on cache behaviour
#: must clear it first or they observe each other's entries.
_LINK_CACHE: "OrderedDict[tuple, object]" = OrderedDict()
_LINK_CACHE_MAX_ENTRIES = 8
_LINK_CACHE_HITS = 0
_LINK_CACHE_MISSES = 0


def link_cache_info() -> dict:
    """A snapshot of the module-level link-state cache.

    Returns ``{"entries", "max_entries", "hits", "misses"}``; the counters
    are cumulative since the last :func:`clear_link_cache`.
    """
    return {
        "entries": len(_LINK_CACHE),
        "max_entries": _LINK_CACHE_MAX_ENTRIES,
        "hits": _LINK_CACHE_HITS,
        "misses": _LINK_CACHE_MISSES,
    }


def clear_link_cache() -> None:
    """Drop every cached link state and zero the hit/miss counters.

    Cached entries are keyed by channel parameters and positions, so stale
    entries are never *wrong* — but tests that measure caching (and
    long-lived processes that sweep many deployments) want a known-empty
    starting state.
    """
    global _LINK_CACHE_HITS, _LINK_CACHE_MISSES
    _LINK_CACHE.clear()
    _LINK_CACHE_HITS = 0
    _LINK_CACHE_MISSES = 0


def _cached_link_state(
    channel: Channel, positions: np.ndarray, *, sparse: bool = False
) -> Optional[object]:
    """The channel's link state for ``positions``, via the module-level cache.

    ``sparse`` selects the spatially-tiled CSR tier
    (:meth:`~repro.sim.radio.Channel.link_state_sparse`); dense and sparse
    entries are cached under distinct keys because they are different objects
    over the same deployment.  A channel without a sparse implementation
    falls back to its dense state (still subject to the byte budget guard).
    """
    global _LINK_CACHE_HITS, _LINK_CACHE_MISSES
    signature = channel.link_signature()
    if signature is None:
        return None
    key = (signature, sparse, positions.shape, positions.tobytes())
    cached = _LINK_CACHE.get(key)
    if cached is None:
        _LINK_CACHE_MISSES += 1
        if sparse:
            try:
                cached = channel.link_state_sparse(positions)
            except NotImplementedError:
                cached = channel.link_state(positions)
        else:
            cached = channel.link_state(positions)
        _LINK_CACHE[key] = cached
        while len(_LINK_CACHE) > _LINK_CACHE_MAX_ENTRIES:
            _LINK_CACHE.popitem(last=False)
    else:
        _LINK_CACHE_HITS += 1
        _LINK_CACHE.move_to_end(key)
    return cached


class Simulation:
    """Drive a set of devices through a slotted broadcast execution.

    Parameters
    ----------
    nodes:
        All devices (honest, Byzantine and crashed).  Node ids must equal the
        index of the device in this sequence.
    schedule:
        The TDMA schedule shared by every device.
    channel:
        Channel model used to resolve per-round observations.
    message:
        The bits the (honest) source is broadcasting; used to judge
        correctness of deliveries.
    rng:
        Generator used by stochastic channel models.
    trace:
        Optional :class:`~repro.sim.events.EventLog` receiving broadcast and
        delivery events.
    use_cohort_runtime:
        Whether to execute shareable, observation-identical devices as shared
        cohorts (:class:`~repro.sim.batch.CohortRuntime`).  ``None`` (default)
        reads the process default (:func:`default_cohort_runtime`);
        ``False`` forces the per-device scalar path, which is the tested
        oracle the cohort runtime is pinned against.  Results are bit-identical
        either way.
    use_spatial_tiling:
        Whether to keep the channel link state in the sparse spatially-tiled
        tier (CSR per-tile structures + region tiling) instead of the dense
        ``N x N`` matrix.  ``None`` (default) reads the process default
        (:func:`default_spatial_tiling` — auto-on above
        :data:`SPATIAL_TILING_AUTO_NODES` nodes).  Results are bit-identical
        either way; only memory and the round-resolution kernels change.
    use_soa_kernels:
        Whether to compile eligible slots into struct-of-arrays bitmask
        kernels (:mod:`repro.sim.soa`) — the fastest execution tier,
        available when every participant of a slot runs one of the simple
        soa-compilable phase machines and the channel satisfies
        :meth:`~repro.sim.radio.Channel.supports_soa_rounds`.  ``None``
        (default) reads the process default (:func:`default_soa_kernels` —
        on unless ``REPRO_SOA_KERNELS=0``).  When any slot compiles, the
        cohort runtime is not constructed (the tiers cannot share protocol
        instances) and uncompiled slots run on the scalar oracle loop.
        Results are bit-identical on every tier.
    """

    def __init__(
        self,
        nodes: Sequence[SimNode],
        schedule: Schedule,
        channel: Channel,
        message: Sequence[int],
        *,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[EventLog] = None,
        use_cohort_runtime: Optional[bool] = None,
        use_spatial_tiling: Optional[bool] = None,
        use_soa_kernels: Optional[bool] = None,
    ) -> None:
        self.nodes = list(nodes)
        for idx, node in enumerate(self.nodes):
            if node.node_id != idx:
                raise ValueError("node ids must match their index in the node list")
        self.schedule = schedule
        self.channel = channel
        self.message = tuple(int(b) for b in message)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.trace = trace
        self.round_index = 0

        self._positions = np.asarray([n.position for n in self.nodes], dtype=float)
        self.plan = SlotPlan(self.nodes, schedule)
        # Kept as aliases of the plan's compiled structures (they used to be
        # built here directly and are handy for debugging/tests).
        self._interest_map = self.plan.interest_map
        self._interest_sets = self.plan.interest_sets
        self._flex_transmitters = list(self.plan.flex_transmitters)
        if use_spatial_tiling is None:
            use_spatial_tiling = default_spatial_tiling(len(self.nodes))
        self.use_spatial_tiling = bool(use_spatial_tiling)
        self._link_state = _cached_link_state(
            channel, self._positions, sparse=self.use_spatial_tiling
        )
        # Per-round CSR aggregation is used only when the sparse state covers
        # the channel's full physics (unit-disk) *and* the channel's vectorized
        # kernels are on; otherwise sparse states answer through exact
        # on-demand submatrices, which resolve on the unchanged dense kernels.
        self._sparse_rounds = (
            isinstance(self._link_state, SparseLinkState)
            and self._link_state.supports_round_views
            and channel.supports_sparse_rounds()
        )
        self.tiling = (
            self._link_state.tiling
            if isinstance(self._link_state, SparseLinkState)
            else None
        )
        # Whole-round memoization is only sound when resolving a round cannot
        # consume RNG (otherwise replaying a cached round would desynchronise
        # the generator relative to the scalar reference execution).
        self._memo_rounds = self._link_state is not None and not channel.consumes_rng()
        # The SoA tier compiles whole slots into bitmask kernels.  It needs
        # a link state to read channel structure from and a channel whose
        # per-capability verdict (soa_round_support) is fully eligible:
        # disjunction or power-sum busy, with loss draws batchable in
        # listener order (unit-disk capture draws are data-dependent and
        # stay scalar).  Traced runs compile too — the kernels synthesize
        # the event stream from the packed masks.
        if use_soa_kernels is None:
            use_soa_kernels = default_soa_kernels()
        self.use_soa_kernels = bool(use_soa_kernels)
        self.soa_runtime: Optional[SoaRuntime] = None
        if (
            self.use_soa_kernels
            and self._link_state is not None
            and channel.supports_soa_rounds()
        ):
            runtime = SoaRuntime(
                self.nodes,
                self.plan,
                self._link_state,
                schedule.phases_per_slot,
                channel=channel,
                rng=self.rng,
            )
            if runtime.groups:
                self.soa_runtime = runtime
        self._soa_groups = self.soa_runtime.groups if self.soa_runtime is not None else {}
        if use_cohort_runtime is None:
            use_cohort_runtime = default_cohort_runtime()
        # Compiled SoA slots never reach the cohort runtime, and the two
        # tiers cannot coexist (cohorts rebind node protocols to shared
        # machines, which would invalidate the compiled per-device specs) —
        # with any SoA group present, uncompiled slots and fallback
        # occurrences execute on the scalar oracle loop instead.
        self.cohort_runtime: Optional[CohortRuntime] = (
            CohortRuntime(self.nodes, self.plan, tiling=self.tiling)
            if use_cohort_runtime and self.soa_runtime is None
            else None
        )
        # Hot-path dispatch: when construction compiled no multi-member cohort
        # (every device a singleton — adversaries, RNG consumers, MultiPathRB,
        # sparse deployments) the scalar loop does the identical calls with
        # less indirection, so the runtime is kept for introspection only.
        self._slot_runtime: Optional[CohortRuntime] = (
            self.cohort_runtime if self.cohort_runtime is not None and self.cohort_runtime.cohorts else None
        )

    def plan_cache_info(self) -> dict:
        """Snapshot of the plan's and runtime tiers' per-simulation caches.

        Returns a dict with these keys:

        * ``"submatrix"`` — the link-state submatrix LRU:
          ``{"entries", "max_entries", "hits", "misses"}``;
        * ``"round_memo"`` — the whole-round observation memo (RNG-free
          channel configurations only), same counter shape;
        * ``"transmissions_interned"`` — size of the transmission intern
          table;
        * ``"cohort_runtime"`` — ``{"enabled": False}`` when the per-device
          oracle path was requested, otherwise ``{"enabled": True, "active",
          "initial_cohorts", "cohorts", "shared_members", "singletons",
          "share_hits", "divergence_splits", "cohort_merges"}``: whether any
          multi-member cohort exists (an all-singleton run executes on the
          scalar loop), the number of cohorts compiled at construction, the
          current (post-split/merge) cohort count, how many devices execute
          shared vs per-device, the number of per-device evaluations avoided
          by sharing, the number of copy-on-divergence splits performed, and
          the number of reconverged sibling cohorts re-merged (plus
          ``"cross_region_cohorts"`` when spatial tiling is on);
        * ``"soa_kernels"`` — ``{"enabled": False}`` when the
          struct-of-arrays tier is off or no slot compiled, otherwise
          ``{"enabled": True, "slots_compiled", "member_slots", "slots_run",
          "scalar_fallbacks", "busy_cache_hits", "busy_cache_misses",
          "busy_cache_entries", "busy_cache_evictions"}``: how many slots
          (and slot-memberships) compiled into bitmask kernels, how many
          slot occurrences executed on the tier vs. fell back to the oracle
          loop because an opportunistic transmitter joined, and the
          busy-pattern memo counters (evictions count entries dropped by
          wholesale overflow clears of a group's memo);
        * ``"spatial_tiling"`` — ``{"enabled": False}`` on the dense path,
          otherwise ``{"enabled": True, "tiles", "occupied_tiles",
          "tile_side", "grid_cols", "grid_rows", "sparse_nnz",
          "interior_links", "boundary_links", "dense_bytes_avoided",
          "rounds_resolved", "round_interior_hits", "round_boundary_hits",
          "sparse_round_kernel"}``: the static tiling shape, the CSR size and
          its static interior/boundary link split, the dense bytes the sparse
          tier avoided materializing, and the live per-round tile-exchange
          counters (how many audible listener/sender pairs stayed inside a
          tile vs crossed a boundary across all resolved rounds).
        """
        info = self.plan.cache_info()
        runtime = self.cohort_runtime
        info["cohort_runtime"] = runtime.info() if runtime is not None else {"enabled": False}
        soa = self.soa_runtime
        info["soa_kernels"] = soa.info() if soa is not None else {"enabled": False}
        state = self._link_state
        if isinstance(state, SparseLinkState):
            info["spatial_tiling"] = {
                "enabled": True,
                "sparse_round_kernel": self._sparse_rounds,
                **state.info(),
            }
        else:
            info["spatial_tiling"] = {"enabled": False}
        return info

    # -- execution ------------------------------------------------------------------------
    def run(
        self,
        max_rounds: int,
        *,
        stop_when_delivered: bool = True,
        check_interval_slots: Optional[int] = None,
    ) -> RunResult:
        """Run the simulation for at most ``max_rounds`` rounds.

        The run stops early once every active honest device has delivered the
        message (checked every ``check_interval_slots`` slots; by default once
        per schedule cycle).  Deliveries themselves are stamped with the exact
        round at which they happened regardless of the check interval, so the
        interval only affects how promptly the run *stops*, never the recorded
        ``delivery_round`` of any device.
        """
        if max_rounds <= 0:
            raise ValueError("max_rounds must be positive")
        if check_interval_slots is not None and check_interval_slots <= 0:
            raise ValueError("check_interval_slots must be positive")
        phases = self.schedule.phases_per_slot
        check_every = check_interval_slots if check_interval_slots is not None else self.schedule.num_slots
        slots_since_check = 0
        # Stamp devices that delivered before the run started (e.g. the source).
        self._record_deliveries()
        terminated = self._all_honest_delivered()

        slot_starts = self.schedule.iter_slot_starts(self.round_index)
        while not terminated and self.round_index + phases <= max_rounds:
            cycle, slot = next(slot_starts)
            self._run_slot(cycle, slot)
            self.round_index += phases
            slots_since_check += 1
            if slots_since_check >= check_every:
                slots_since_check = 0
                if stop_when_delivered and self._all_honest_delivered():
                    terminated = True
        if self.soa_runtime is not None:
            self.soa_runtime.flush_broadcasts()
        self._record_deliveries()
        terminated = self._all_honest_delivered()
        return self._build_result(terminated)

    def run_slots(self, num_slots: int) -> None:
        """Advance the simulation by exactly ``num_slots`` slots (testing helper)."""
        phases = self.schedule.phases_per_slot
        slot_starts = self.schedule.iter_slot_starts(self.round_index)
        for _ in range(num_slots):
            cycle, slot = next(slot_starts)
            self._run_slot(cycle, slot)
            self.round_index += phases
        if self.soa_runtime is not None:
            self.soa_runtime.flush_broadcasts()
        self._record_deliveries()

    # -- internals -------------------------------------------------------------------------
    def _run_slot(self, cycle: int, slot: int) -> None:
        plan = self.plan
        records: tuple = plan.slot_records.get(slot, ())
        occurrence_key: object = slot
        extras: Optional[list] = None
        flex = plan.flex_candidates.get(slot)
        if flex is not None:
            # wants_slot may consume the adversary's private RNG, so the query
            # order (declaration order, skipping interest-set members — they
            # are never in the candidate list) must match the historical scan.
            extras = [record for wants_slot, record in flex if wants_slot(cycle, slot)]
            if extras:
                records = records + tuple(extras)
                occurrence_key = (slot, tuple(r[REC_ID] for r in extras))
        if not records:
            return
        soa_groups = self._soa_groups
        if soa_groups:
            group = soa_groups.get(slot)
            if group is not None:
                if extras:
                    # Opportunistic joiners put unmodeled frames on the air;
                    # this occurrence runs on the oracle loop (against the
                    # same protocol objects — the next occurrence resumes on
                    # the SoA tier by re-reading their state).
                    self.soa_runtime.scalar_fallbacks += 1
                    self._run_slot_scalar(cycle, slot, records, occurrence_key)
                else:
                    self.soa_runtime.run_slot(self, group)
                return
        runtime = self._slot_runtime
        if runtime is not None:
            runtime.run_slot(self, cycle, slot, extras, occurrence_key)
            return
        self._run_slot_scalar(cycle, slot, records, occurrence_key)

    def _run_slot_scalar(self, cycle: int, slot: int, records: tuple, occurrence_key: object) -> None:
        """The per-device oracle loop (cohort runtime disabled)."""
        plan = self.plan
        phases = self.schedule.phases_per_slot
        trace = self.trace
        for phase in range(phases):
            transmissions: list[Transmission] = []
            listeners: list[int] = []
            observers: list = []
            for record in records:
                frame = record[REC_ACT](cycle, slot, phase)
                if frame is None:
                    listeners.append(record[REC_ID])
                    observers.append(record[REC_OBSERVE])
                else:
                    transmissions.append(
                        plan.transmission(record[REC_ID], record[REC_POSITION], frame)
                    )
                    record[REC_NODE].broadcasts += 1
                    if trace is not None:
                        trace.record(
                            EventKind.BROADCAST,
                            self.round_index + phase,
                            record[REC_ID],
                            slot,
                            phase,
                            frame.kind.name,
                        )
            if not observers:
                continue
            if not transmissions:
                for observe in observers:
                    observe(cycle, slot, phase, SILENCE)
                continue
            observations = self._resolve_round(occurrence_key, listeners, transmissions)
            for observe, obs in zip(observers, observations):
                observe(cycle, slot, phase, obs)

        end_round = self.round_index + phases
        for record in records:
            record[REC_END_SLOT](cycle, slot)
            # Stamp deliveries with the exact round at which they happened
            # (a device's state only changes in slots it participates in).
            node = record[REC_NODE]
            if record[REC_HONEST] and node.delivery_round is None and node.delivered:
                node.mark_delivered(end_round)
                if trace is not None:
                    trace.record(EventKind.DELIVERY, end_round, record[REC_ID])

    def _resolve_round(
        self,
        occurrence_key: object,
        listeners: list[int],
        transmissions: list[Transmission],
    ) -> list[Observation]:
        """Observations for one round, through the plan's caches.

        The round memo is consulted only for RNG-free channel configurations;
        its key pins everything observations depend on — the slot occurrence
        (which fixes the listener list), the sender set and the frames on the
        air.  Stochastic configurations always resolve, consuming the RNG in
        exactly the scalar reference order.
        """
        link_state = self._link_state
        if link_state is None:
            listener_positions = self._positions[listeners]
            return self.channel.observe(listeners, listener_positions, transmissions, self.rng)
        plan = self.plan
        senders = tuple(t.sender for t in transmissions)
        if self._memo_rounds:
            memo_key = (occurrence_key, senders, tuple(t.frame for t in transmissions))
            memo = plan.round_memo
            observations = memo.get(memo_key)
            if observations is not None:
                plan.round_memo_hits += 1
                memo.move_to_end(memo_key)
                return observations
            plan.round_memo_misses += 1
            observations = self._resolve_links(occurrence_key, link_state, listeners, senders, transmissions)
            memo[memo_key] = observations
            while len(memo) > plan.round_memo_max_entries:
                memo.popitem(last=False)
            return observations
        return self._resolve_links(occurrence_key, link_state, listeners, senders, transmissions)

    def _resolve_links(
        self,
        occurrence_key: object,
        link_state,
        listeners: list[int],
        senders: tuple,
        transmissions: list[Transmission],
    ) -> list[Observation]:
        """One round through either the CSR round-view kernel or a submatrix.

        Both paths scatter per-listener results in *listener order* and draw
        any loss RNG in that same order, so the choice is invisible to the
        protocols and to the RNG stream.
        """
        plan = self.plan
        if self._sparse_rounds:
            view = plan.round_view((occurrence_key, senders), link_state, listeners, senders)
            return self.channel.resolve_links_sparse(view, transmissions, self.rng)
        submatrix = plan.submatrix((occurrence_key, senders), link_state, listeners, senders)
        return self.channel.resolve_links(submatrix, transmissions, self.rng)

    def _all_honest_delivered(self) -> bool:
        for node in self.nodes:
            if node.honest and node.active and not node.delivered:
                return False
        return True

    def _record_deliveries(self) -> None:
        for node in self.nodes:
            if node.honest and node.active and node.delivery_round is None and node.delivered:
                node.mark_delivered(self.round_index)
                if self.trace is not None:
                    self.trace.record(EventKind.DELIVERY, self.round_index, node.node_id)

    def _build_result(self, terminated: bool) -> RunResult:
        outcomes: dict[int, NodeOutcome] = {}
        for node in self.nodes:
            delivered = node.delivered if node.active else False
            correct: Optional[bool] = None
            if delivered:
                msg = node.delivered_message
                correct = (tuple(msg) == self.message) if msg is not None else None
            outcomes[node.node_id] = NodeOutcome(
                node_id=node.node_id,
                honest=node.honest,
                active=node.active,
                delivered=delivered,
                correct=correct,
                delivery_round=node.delivery_round,
                broadcasts=node.broadcasts,
            )
        return RunResult(
            message=self.message,
            total_rounds=self.round_index,
            terminated=terminated,
            outcomes=outcomes,
        )
