"""Synchronous slotted simulation engine.

The engine reproduces the execution model of the paper: time is divided into
rounds, rounds are grouped into six-round broadcast intervals (slots), and the
globally known TDMA schedule determines which device — or which
NeighborWatchRB square — owns each slot.  In every round each device either
broadcasts a frame or listens; the channel model then determines, per
listener, whether it perceives silence, a decoded message or a collision.

Sparse slot processing
----------------------
Simulating every device in every round would make large experiments (hundreds
of devices over hundreds of thousands of rounds) prohibitively slow in Python.
The engine therefore only processes, per slot, the devices that *declared an
interest* in the slot (the slot owner plus every device that listens to it)
together with any adversary that decided to transmit during the slot.  This is
sound because a device that neither transmits nor interprets a slot cannot
have its protocol state affected by it, and it follows the guide-recommended
pattern of spending Python time only where the algorithm needs it.

Cached slot fast path
---------------------
Two further quantities are invariant across the (many) cycles of a run and
are computed once at construction instead of per slot:

* the per-slot participant tuples (deduplicated, in declaration order), so no
  per-slot list rebuilding happens unless a flexible transmitter joins in;
* the channel's pairwise link state (audibility sets for the unit-disk model,
  a received-power matrix for Friis), cached per ``(channel, positions)`` pair
  in a small module-level LRU so that repeated simulations over the same
  deployment — e.g. a sweep comparing protocols seed-for-seed — reuse it.  Per
  round the engine resolves observations from the precomputed state instead of
  recomputing a distance matrix.

Deliveries are stamped with the exact round at the end of the slot in which
they happened (not at the next periodic check), so ``delivery_round`` and the
latency metrics derived from it are accurate to one slot.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Sequence

import numpy as np

from ..core.protocol import Observation, Protocol, SILENCE
from ..core.schedule import Schedule
from .events import EventKind, EventLog
from .node import SimNode
from .radio import Channel, Transmission
from .results import NodeOutcome, RunResult

__all__ = ["Simulation", "link_cache_info", "clear_link_cache"]

#: Bounded cache of channel link states (audibility sets / power matrices),
#: keyed by the channel's link signature and the (immutable) bytes of the
#: position array.  A handful of entries is enough: within one process the
#: same deployment is typically re-simulated back-to-back (protocol
#: comparisons, repeated seeds).  Introspect with :func:`link_cache_info`,
#: reset with :func:`clear_link_cache` — tests that assert on cache behaviour
#: must clear it first or they observe each other's entries.
_LINK_CACHE: "OrderedDict[tuple, object]" = OrderedDict()
_LINK_CACHE_MAX_ENTRIES = 8
_LINK_CACHE_HITS = 0
_LINK_CACHE_MISSES = 0


def link_cache_info() -> dict:
    """A snapshot of the module-level link-state cache.

    Returns ``{"entries", "max_entries", "hits", "misses"}``; the counters
    are cumulative since the last :func:`clear_link_cache`.
    """
    return {
        "entries": len(_LINK_CACHE),
        "max_entries": _LINK_CACHE_MAX_ENTRIES,
        "hits": _LINK_CACHE_HITS,
        "misses": _LINK_CACHE_MISSES,
    }


def clear_link_cache() -> None:
    """Drop every cached link state and zero the hit/miss counters.

    Cached entries are keyed by channel parameters and positions, so stale
    entries are never *wrong* — but tests that measure caching (and
    long-lived processes that sweep many deployments) want a known-empty
    starting state.
    """
    global _LINK_CACHE_HITS, _LINK_CACHE_MISSES
    _LINK_CACHE.clear()
    _LINK_CACHE_HITS = 0
    _LINK_CACHE_MISSES = 0


def _cached_link_state(channel: Channel, positions: np.ndarray) -> Optional[object]:
    """The channel's link state for ``positions``, via the module-level cache."""
    global _LINK_CACHE_HITS, _LINK_CACHE_MISSES
    signature = channel.link_signature()
    if signature is None:
        return None
    key = (signature, positions.shape, positions.tobytes())
    cached = _LINK_CACHE.get(key)
    if cached is None:
        _LINK_CACHE_MISSES += 1
        cached = channel.link_state(positions)
        _LINK_CACHE[key] = cached
        while len(_LINK_CACHE) > _LINK_CACHE_MAX_ENTRIES:
            _LINK_CACHE.popitem(last=False)
    else:
        _LINK_CACHE_HITS += 1
        _LINK_CACHE.move_to_end(key)
    return cached


class Simulation:
    """Drive a set of devices through a slotted broadcast execution.

    Parameters
    ----------
    nodes:
        All devices (honest, Byzantine and crashed).  Node ids must equal the
        index of the device in this sequence.
    schedule:
        The TDMA schedule shared by every device.
    channel:
        Channel model used to resolve per-round observations.
    message:
        The bits the (honest) source is broadcasting; used to judge
        correctness of deliveries.
    rng:
        Generator used by stochastic channel models.
    trace:
        Optional :class:`~repro.sim.events.EventLog` receiving broadcast and
        delivery events.
    """

    def __init__(
        self,
        nodes: Sequence[SimNode],
        schedule: Schedule,
        channel: Channel,
        message: Sequence[int],
        *,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[EventLog] = None,
    ) -> None:
        self.nodes = list(nodes)
        for idx, node in enumerate(self.nodes):
            if node.node_id != idx:
                raise ValueError("node ids must match their index in the node list")
        self.schedule = schedule
        self.channel = channel
        self.message = tuple(int(b) for b in message)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.trace = trace
        self.round_index = 0

        self._positions = np.asarray([n.position for n in self.nodes], dtype=float)
        self._interest_map: dict[int, tuple[int, ...]] = {}
        self._interest_sets: dict[int, frozenset[int]] = {}
        self._flex_transmitters: list[int] = []
        self._build_interest_map()
        self._link_state = _cached_link_state(channel, self._positions)

    # -- construction helpers -----------------------------------------------------------
    def _build_interest_map(self) -> None:
        interest_lists: dict[int, list[int]] = {}
        for node in self.nodes:
            proto = node.protocol
            if proto is None:
                continue
            declared: set[int] = set()
            for slot in proto.interests():
                if not (0 <= slot < self.schedule.num_slots):
                    raise ValueError(
                        f"node {node.node_id} declared interest in slot {slot}, "
                        f"but the schedule only has {self.schedule.num_slots} slots"
                    )
                # Deduplicate (order-preserving): a protocol that declares the
                # same slot twice must still act and observe once per phase.
                slot = int(slot)
                if slot in declared:
                    continue
                declared.add(slot)
                interest_lists.setdefault(slot, []).append(node.node_id)
            if getattr(proto, "may_transmit_anywhere", False):
                self._flex_transmitters.append(node.node_id)
        # Freeze the per-slot participant arrays: they are reused every cycle.
        self._interest_map = {slot: tuple(ids) for slot, ids in interest_lists.items()}
        self._interest_sets = {slot: frozenset(ids) for slot, ids in interest_lists.items()}

    # -- execution ------------------------------------------------------------------------
    def run(
        self,
        max_rounds: int,
        *,
        stop_when_delivered: bool = True,
        check_interval_slots: Optional[int] = None,
    ) -> RunResult:
        """Run the simulation for at most ``max_rounds`` rounds.

        The run stops early once every active honest device has delivered the
        message (checked every ``check_interval_slots`` slots; by default once
        per schedule cycle).  Deliveries themselves are stamped with the exact
        round at which they happened regardless of the check interval, so the
        interval only affects how promptly the run *stops*, never the recorded
        ``delivery_round`` of any device.
        """
        if max_rounds <= 0:
            raise ValueError("max_rounds must be positive")
        if check_interval_slots is not None and check_interval_slots <= 0:
            raise ValueError("check_interval_slots must be positive")
        phases = self.schedule.phases_per_slot
        check_every = check_interval_slots if check_interval_slots is not None else self.schedule.num_slots
        slots_since_check = 0
        # Stamp devices that delivered before the run started (e.g. the source).
        self._record_deliveries()
        terminated = self._all_honest_delivered()

        while not terminated and self.round_index + phases <= max_rounds:
            cycle, slot, _ = self.schedule.locate_round(self.round_index)
            self._run_slot(cycle, slot)
            self.round_index += phases
            slots_since_check += 1
            if slots_since_check >= check_every:
                slots_since_check = 0
                if stop_when_delivered and self._all_honest_delivered():
                    terminated = True
        self._record_deliveries()
        terminated = self._all_honest_delivered()
        return self._build_result(terminated)

    def run_slots(self, num_slots: int) -> None:
        """Advance the simulation by exactly ``num_slots`` slots (testing helper)."""
        phases = self.schedule.phases_per_slot
        for _ in range(num_slots):
            cycle, slot, _ = self.schedule.locate_round(self.round_index)
            self._run_slot(cycle, slot)
            self.round_index += phases
        self._record_deliveries()

    # -- internals -------------------------------------------------------------------------
    def _run_slot(self, cycle: int, slot: int) -> None:
        participants: Sequence[int] = self._interest_map.get(slot, ())
        if self._flex_transmitters:
            base = self._interest_sets.get(slot, frozenset())
            extras = []
            for nid in self._flex_transmitters:
                if nid in base:
                    continue
                proto = self.nodes[nid].protocol
                if proto is not None and proto.wants_slot(cycle, slot):
                    extras.append(nid)
            if extras:
                participants = tuple(participants) + tuple(extras)
        if not participants:
            return

        phases = self.schedule.phases_per_slot
        nodes = self.nodes
        link_state = self._link_state
        for phase in range(phases):
            transmissions: list[Transmission] = []
            listeners: list[int] = []
            for nid in participants:
                node = nodes[nid]
                proto = node.protocol
                if proto is None:
                    continue
                frame = proto.act(cycle, slot, phase)
                if frame is not None:
                    transmissions.append(Transmission(nid, node.position, frame))
                    node.broadcasts += 1
                    if self.trace is not None:
                        self.trace.record(
                            EventKind.BROADCAST,
                            self.round_index + phase,
                            nid,
                            slot,
                            phase,
                            frame.kind.name,
                        )
                else:
                    listeners.append(nid)
            if not listeners:
                continue
            if not transmissions:
                observations = [SILENCE] * len(listeners)
            elif link_state is not None:
                observations = self.channel.observe_links(
                    listeners, link_state, transmissions, self.rng
                )
            else:
                listener_positions = self._positions[listeners]
                observations = self.channel.observe(listeners, listener_positions, transmissions, self.rng)
            for nid, obs in zip(listeners, observations):
                proto = nodes[nid].protocol
                if proto is not None:
                    proto.observe(cycle, slot, phase, obs)

        end_round = self.round_index + phases
        for nid in participants:
            node = nodes[nid]
            proto = node.protocol
            if proto is not None:
                proto.end_slot(cycle, slot)
                # Stamp deliveries with the exact round at which they happened
                # (a device's state only changes in slots it participates in).
                if node.honest and node.delivery_round is None and node.delivered:
                    node.mark_delivered(end_round)
                    if self.trace is not None:
                        self.trace.record(EventKind.DELIVERY, end_round, nid)

    def _all_honest_delivered(self) -> bool:
        for node in self.nodes:
            if node.honest and node.active and not node.delivered:
                return False
        return True

    def _record_deliveries(self) -> None:
        for node in self.nodes:
            if node.honest and node.active and node.delivery_round is None and node.delivered:
                node.mark_delivered(self.round_index)
                if self.trace is not None:
                    self.trace.record(EventKind.DELIVERY, self.round_index, node.node_id)

    def _build_result(self, terminated: bool) -> RunResult:
        outcomes: dict[int, NodeOutcome] = {}
        for node in self.nodes:
            delivered = node.delivered if node.active else False
            correct: Optional[bool] = None
            if delivered:
                msg = node.delivered_message
                correct = (tuple(msg) == self.message) if msg is not None else None
            outcomes[node.node_id] = NodeOutcome(
                node_id=node.node_id,
                honest=node.honest,
                active=node.active,
                delivered=delivered,
                correct=correct,
                delivery_round=node.delivery_round,
                broadcasts=node.broadcasts,
            )
        return RunResult(
            message=self.message,
            total_rounds=self.round_index,
            terminated=terminated,
            outcomes=outcomes,
        )
