"""Radio-network simulator substrate (the reproduction's stand-in for WSNet)."""

from .builder import build_channel, build_schedule, build_simulation, run_scenario
from .config import FaultPlan, ScenarioConfig, canonical_channel, canonical_protocol, default_message
from .batch import Cohort, CohortRuntime
from .engine import Simulation, clear_link_cache, default_cohort_runtime, link_cache_info
from .events import Event, EventKind, EventLog
from .node import SimNode
from .plan import SlotPlan
from .radio import Channel, FriisChannel, Transmission, UnitDiskChannel, message_observation
from .results import NodeOutcome, RunResult
from .rng import RngFactory
from .runner import SweepExecutor, SweepTask, resolve_workers, run_repetition
from .backends import (
    ChaosBackend,
    ChaosPlan,
    ExecutorBackend,
    FaultSpec,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)
from .supervision import (
    FabricTelemetry,
    JobFailure,
    SupervisionPolicy,
    SweepFailure,
    SweepInterrupted,
    TransientJobError,
    backoff_delay,
)

__all__ = [
    "SweepExecutor",
    "SweepTask",
    "resolve_workers",
    "run_repetition",
    "ExecutorBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ChaosBackend",
    "ChaosPlan",
    "FaultSpec",
    "resolve_backend",
    "SupervisionPolicy",
    "FabricTelemetry",
    "JobFailure",
    "SweepFailure",
    "SweepInterrupted",
    "TransientJobError",
    "backoff_delay",
    "build_channel",
    "build_schedule",
    "build_simulation",
    "run_scenario",
    "FaultPlan",
    "ScenarioConfig",
    "canonical_channel",
    "canonical_protocol",
    "default_message",
    "Simulation",
    "clear_link_cache",
    "default_cohort_runtime",
    "link_cache_info",
    "Cohort",
    "CohortRuntime",
    "Event",
    "EventKind",
    "EventLog",
    "SimNode",
    "SlotPlan",
    "Channel",
    "FriisChannel",
    "Transmission",
    "UnitDiskChannel",
    "message_observation",
    "NodeOutcome",
    "RunResult",
    "RngFactory",
]
