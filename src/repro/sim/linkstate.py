"""Dense and sparse link-state representations shared by the channel models.

The engine historically kept one dense ``N x N`` matrix per channel —
audibility booleans for the unit-disk model, received powers for Friis.  That
caps single runs near ~10^3-10^4 nodes (10^5 nodes would need 10 GB for the
boolean mask and 80 GB for the power matrix).  Both models are
locality-dominated, so this module adds a sparse tier behind one abstraction:

* :class:`DenseLinkState` wraps the precomputed matrix (the oracle path);
* :class:`UnitDiskLinkState` / :class:`FriisLinkState` keep only the node
  positions, the channel parameters and a CSR neighbor structure built per
  tile with grid-bucketed queries (:class:`~repro.topology.grid.GridBuckets`),
  plus the :class:`~repro.sim.tiling.RegionTiling` that scopes each
  transmission to its tile and the eight adjacent ones.

Bit-identity is the hard contract.  Sparse states never *approximate*: the
``submatrix`` of each sparse class recomputes the exact ``(listeners,
senders)`` block from positions with the same elementwise expression sequence
as the dense construction (elementwise float64 ufuncs are shape-independent,
so the values match bit for bit), and the unit-disk round views give the same
counts and sender attribution as the dense mask because unit-disk audibility
beyond the radius is *exactly* false.  Friis powers, by contrast, are nonzero
at every distance and the channel sums every sender's contribution, so the
Friis sparse state answers rounds through exact on-demand submatrices — its
CSR (within carrier-sense range) exists for topology queries and accounting.
The win is memory (O(N * neighborhood) instead of O(N^2)), never physics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..topology.grid import GridBuckets
from .tiling import RegionTiling

__all__ = [
    "ChannelLinkState",
    "DenseLinkState",
    "SparseLinkState",
    "UnitDiskLinkState",
    "FriisLinkState",
    "RoundView",
]


def _index_dtype(num_nodes: int, nnz: int) -> np.dtype:
    """Smallest safe integer dtype for the CSR ``indptr``/``indices`` arrays.

    ``indices`` stores node ids (< ``num_nodes``) and ``indptr`` stores
    offsets into ``indices`` (<= ``nnz``); when both fit in a signed 32-bit
    integer the arrays are halved.  At the 10^5-node scale the CSR pair is
    the dominant live allocation, so this is a real saving, and every
    consumer (fancy indexing, ``searchsorted``, arithmetic against ``intp``
    arrays) is dtype-agnostic.  Beyond 2^31 - 1 links the structure falls
    back to int64 rather than overflow.
    """
    limit = np.iinfo(np.int32).max
    if num_nodes <= limit and nnz <= limit:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


class ChannelLinkState(abc.ABC):
    """Common interface of dense and sparse link-state representations."""

    #: Whether this state avoids the dense ``N x N`` materialization.
    is_sparse: bool = False

    @abc.abstractmethod
    def submatrix(self, listeners, senders) -> np.ndarray:
        """Exact ``(len(listeners), len(senders))`` link-state block.

        Bit-identical to slicing the dense matrix with ``np.ix_`` — sparse
        implementations recompute the block from positions with the dense
        construction's elementwise arithmetic.
        """

    def info(self) -> dict:
        """Introspection snapshot (shape, memory footprint)."""
        return {"sparse": self.is_sparse}


class DenseLinkState(ChannelLinkState):
    """The precomputed pairwise matrix, unchanged semantics (the oracle tier)."""

    __slots__ = ("matrix",)
    is_sparse = False

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = matrix

    def submatrix(self, listeners, senders) -> np.ndarray:
        return self.matrix[np.ix_(listeners, senders)]

    def info(self) -> dict:
        return {"sparse": False, "dense_bytes": int(self.matrix.nbytes)}


@dataclass(frozen=True, slots=True)
class RoundView:
    """Per-round CSR aggregation for the unit-disk fast path.

    ``counts[i]`` is the number of this round's transmissions audible to the
    ``i``-th listener (listener order preserved), and ``tx_sum[i]`` the sum of
    the audible transmission column indices — for a single-transmission
    listener that *is* the decoded column, which is all the vectorized
    unit-disk kernel needs.  ``interior_hits`` / ``boundary_hits`` count the
    audible (listener, sender) pairs that stayed within the sender's tile vs
    crossed a tile boundary (the tiles' exchanged traffic).
    """

    counts: np.ndarray
    tx_sum: np.ndarray
    interior_hits: int
    boundary_hits: int


class SparseLinkState(ChannelLinkState):
    """Positions + CSR neighbor structure + region tiling (no dense matrix).

    The CSR rows (``indices[indptr[i]:indptr[i+1]]``, ascending) hold each
    node's neighborhood out to the channel's interaction radius, built one
    grid bucket (= one tile window) at a time.  Subclasses fix the distance
    predicate and how rounds resolve.
    """

    is_sparse = True

    def __init__(
        self,
        positions: np.ndarray,
        interaction_radius: float,
        norm: str,
        dense_itemsize: int,
    ) -> None:
        self.positions = np.asarray(positions, dtype=float)
        self.interaction_radius = float(interaction_radius)
        self.norm = norm
        self.dense_itemsize = int(dense_itemsize)
        buckets = GridBuckets(self.positions, cell_size=self.interaction_radius)
        # + 1e-12 mirrors the dense audibility tolerance; for Friis the CSR is
        # a sense-range neighborhood, where the same slack is harmless.
        self.indptr, self.indices = buckets.neighbor_arrays(
            self.interaction_radius + 1e-12, norm, include_self=True
        )
        # Downcast the CSR pair to int32 when safe — the values are identical,
        # only the storage shrinks, and sparse_bytes/dense_bytes_avoided track
        # the change automatically through .nbytes.
        dtype = _index_dtype(self.positions.shape[0], int(self.indices.size))
        if self.indices.dtype != dtype:
            self.indices = self.indices.astype(dtype)
        if self.indptr.dtype != dtype:
            self.indptr = self.indptr.astype(dtype)
        self.tiling = RegionTiling(self.positions, side=self.interaction_radius)
        self._interior_links, self._boundary_links = self.tiling.classify_links(
            self.indptr, self.indices
        )
        # Live exchange counters, accumulated per resolved round (cache hits
        # included — a replayed view still represents executed tile traffic).
        self.rounds_resolved = 0
        self.round_interior_hits = 0
        self.round_boundary_hits = 0

    # -- structure -------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.positions.shape[0])

    @property
    def nnz(self) -> int:
        """Stored links, including the self-link diagonal (dense-mask parity)."""
        return int(self.indices.size)

    @property
    def sparse_bytes(self) -> int:
        return int(self.indices.nbytes + self.indptr.nbytes + self.positions.nbytes)

    @property
    def dense_bytes_avoided(self) -> int:
        """Bytes the dense matrix would need minus what the sparse tier keeps."""
        n = self.num_nodes
        return max(n * n * self.dense_itemsize - self.sparse_bytes, 0)

    def neighbors_of(self, node: int) -> np.ndarray:
        """Ascending ids within the interaction radius of ``node`` (self included)."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    # -- rounds ----------------------------------------------------------------------
    #: Whether :meth:`round_view` is implemented (unit-disk only: audibility
    #: beyond the radius is exactly zero, so the CSR *is* the full physics).
    supports_round_views = False

    def round_view(self, listeners, senders) -> RoundView:
        raise NotImplementedError

    def note_round(self, view: RoundView) -> None:
        """Accumulate one resolved round's tile-exchange statistics."""
        self.rounds_resolved += 1
        self.round_interior_hits += view.interior_hits
        self.round_boundary_hits += view.boundary_hits

    # -- introspection ----------------------------------------------------------------
    def info(self) -> dict:
        out = {"sparse": True, **self.tiling.info()}
        out.update(
            sparse_nnz=self.nnz,
            index_dtype=str(self.indices.dtype),
            interior_links=self._interior_links,
            boundary_links=self._boundary_links,
            dense_bytes_avoided=self.dense_bytes_avoided,
            rounds_resolved=self.rounds_resolved,
            round_interior_hits=self.round_interior_hits,
            round_boundary_hits=self.round_boundary_hits,
        )
        return out


class UnitDiskLinkState(SparseLinkState):
    """Sparse audibility for :class:`~repro.sim.radio.UnitDiskChannel`."""

    supports_round_views = True

    def __init__(self, positions: np.ndarray, radius: float, norm: str) -> None:
        self.radius = float(radius)
        super().__init__(positions, interaction_radius=self.radius, norm=norm, dense_itemsize=1)

    def submatrix(self, listeners, senders) -> np.ndarray:
        """Exact audibility block, recomputed with the dense expressions."""
        lp = self.positions[np.asarray(listeners, dtype=np.intp)]
        sp = self.positions[np.asarray(senders, dtype=np.intp)]
        diff = lp[:, None, :] - sp[None, :, :]
        if self.norm == "linf":
            dist = np.max(np.abs(diff), axis=-1)
        else:
            dist = np.sqrt(np.sum(diff**2, axis=-1))
        return dist <= self.radius + 1e-12

    def round_view(self, listeners, senders) -> RoundView:
        """Aggregate one round tile-by-tile from the senders' CSR rows.

        Each sender's CSR row is its audience: the nodes in its own and the
        eight adjacent tiles that pass the audibility predicate.  The row is
        intersected with the round's listener set and scattered into arrays
        indexed by *listener order*, so the counts (and therefore every
        downstream RNG draw) line up bit-exactly with the dense kernel no
        matter how the work was blocked by tile.
        """
        l_arr = np.asarray(listeners, dtype=np.intp)
        num_listeners = l_arr.size
        counts = np.zeros(num_listeners, dtype=np.int64)
        tx_sum = np.zeros(num_listeners, dtype=np.int64)
        interior = 0
        boundary = 0
        if num_listeners:
            order = np.argsort(l_arr, kind="stable")
            sorted_ids = l_arr[order]
            tile_of = self.tiling.tile_of
            indptr, indices = self.indptr, self.indices
            for col, sender in enumerate(senders):
                audience = indices[indptr[sender] : indptr[sender + 1]]
                pos = np.searchsorted(sorted_ids, audience)
                np.clip(pos, 0, num_listeners - 1, out=pos)
                hit = sorted_ids[pos] == audience
                rows = order[pos[hit]]
                counts[rows] += 1
                tx_sum[rows] += col
                heard_by = audience[hit]
                same = int(np.count_nonzero(tile_of[heard_by] == tile_of[sender]))
                interior += same
                boundary += int(heard_by.size) - same
        return RoundView(counts, tx_sum, interior, boundary)


class FriisLinkState(SparseLinkState):
    """Sparse received-power state for :class:`~repro.sim.radio.FriisChannel`.

    Friis power never truncates: a round's ``(listeners, senders)`` block is
    recomputed exactly from positions (every sender contributes to every
    listener's interference sum, as in the dense matrix), so results cannot
    drift no matter how sparse the topology is.  The CSR holds the
    carrier-sense neighborhood for tiling/accounting.
    """

    def __init__(
        self,
        positions: np.ndarray,
        *,
        sense_range: float,
        tx_power: float,
        reference_distance: float,
        path_loss_exponent: float,
    ) -> None:
        self.tx_power = float(tx_power)
        self.reference_distance = float(reference_distance)
        self.path_loss_exponent = float(path_loss_exponent)
        super().__init__(
            positions, interaction_radius=float(sense_range), norm="l2", dense_itemsize=8
        )

    def submatrix(self, listeners, senders) -> np.ndarray:
        """Exact received-power block, recomputed with the dense expressions."""
        lp = self.positions[np.asarray(listeners, dtype=np.intp)]
        sp = self.positions[np.asarray(senders, dtype=np.intp)]
        diff = lp[:, None, :] - sp[None, :, :]
        dist = np.sqrt(np.sum(diff**2, axis=-1))
        dist = np.maximum(dist, self.reference_distance)
        return self.tx_power * (self.reference_distance / dist) ** self.path_loss_exponent
