"""Assemble deployments, protocols, faults and channels into runnable simulations.

This is the main user-facing entry point of the library: given a
:class:`~repro.topology.deployment.Deployment`, a
:class:`~repro.sim.config.ScenarioConfig` and an optional
:class:`~repro.sim.config.FaultPlan`, :func:`build_simulation` wires up the
schedule, the channel model, one protocol instance per device (honest,
jamming, lying or crashed) and returns a ready-to-run
:class:`~repro.sim.engine.Simulation`.  :func:`run_scenario` is the one-call
convenience wrapper used by the examples, the experiments and most tests.
"""

from __future__ import annotations

import math
from typing import Optional

from ..adversary.jammer import VetoJammer
from ..adversary.liar import fake_message_for
from ..core.protocol import NodeContext, Protocol
from ..core.schedule import Schedule
from ..topology.deployment import Deployment
from .config import FaultPlan, ScenarioConfig
from .engine import Simulation
from .events import EventLog
from .radio import Channel
from .results import RunResult, validate_metadata
from .rng import RngFactory
from .node import SimNode

__all__ = ["build_schedule", "build_channel", "build_simulation", "run_scenario"]


def build_schedule(deployment: Deployment, config: ScenarioConfig) -> Schedule:
    """Construct the TDMA schedule appropriate for the configured protocol."""
    return config.protocol_plugin().build_schedule(deployment, config)


def build_channel(config: ScenarioConfig) -> Channel:
    """Construct the configured channel model."""
    return config.channel_plugin().build(config)


def _honest_protocol(config: ScenarioConfig) -> Protocol:
    return config.protocol_plugin().build(config)


def build_simulation(
    deployment: Deployment,
    config: ScenarioConfig,
    faults: Optional[FaultPlan] = None,
    *,
    trace: Optional[EventLog] = None,
    use_cohort_runtime: Optional[bool] = None,
    use_spatial_tiling: Optional[bool] = None,
    use_soa_kernels: Optional[bool] = None,
) -> Simulation:
    """Wire a deployment, a scenario and a fault plan into a Simulation.

    ``use_cohort_runtime``, ``use_spatial_tiling`` and ``use_soa_kernels``
    are forwarded to :class:`~repro.sim.engine.Simulation` (``None`` =
    process default): the first selects between shared-cohort and per-device
    execution of the protocol state machines, the second between the sparse
    spatially-tiled link-state tier and the dense ``N x N`` matrices, the
    third enables the struct-of-arrays slot kernels for eligible
    protocol/channel combinations.  All three are pure memory/throughput
    knobs — results are bit-identical either way, so they are *not* part of
    :class:`ScenarioConfig` and never enter store fingerprints.
    """
    faults = faults if faults is not None else FaultPlan()
    faults.validate_for(deployment.num_nodes, deployment.source_index)

    plugin = config.protocol_plugin()
    message = config.message_bits
    fake = tuple(faults.fake_message) if faults.fake_message is not None else fake_message_for(message)
    rng_factory = RngFactory(config.seed)

    schedule = build_schedule(deployment, config)
    channel = build_channel(config)

    crashed = set(faults.crashed)
    jammers = set(faults.jammers)
    liars = set(faults.liars)

    nodes: list[SimNode] = []
    # One bulk conversion to Python floats instead of per-node NumPy scalar
    # extraction (identical values; tolist round-trips float64 exactly).
    position_rows = deployment.positions.tolist()
    for node_id in range(deployment.num_nodes):
        row = position_rows[node_id]
        position = (row[0], row[1])
        protocol: Optional[Protocol]
        honest = True
        if node_id in crashed:
            protocol = None
        elif node_id in jammers:
            honest = False
            protocol = VetoJammer(
                faults.jammer_budget,
                jam_probability=faults.jam_probability,
                rng=rng_factory.node_generator(node_id),
            )
        elif node_id in liars:
            honest = False
            protocol = plugin.build_liar(config, fake)
        else:
            protocol = _honest_protocol(config)

        if protocol is not None:
            is_source = node_id == deployment.source_index
            context = NodeContext(
                node_id=node_id,
                position=position,
                radius=config.radius,
                schedule=schedule,
                message_length=config.message_length,
                is_source=is_source,
                source_message=message if is_source else None,
                rng_seed=config.seed,
            )
            protocol.setup(context)
        nodes.append(SimNode(node_id=node_id, position=position, protocol=protocol, honest=honest))

    return Simulation(
        nodes,
        schedule,
        channel,
        message,
        rng=rng_factory.generator("channel"),
        trace=trace,
        use_cohort_runtime=use_cohort_runtime,
        use_spatial_tiling=use_spatial_tiling,
        use_soa_kernels=use_soa_kernels,
    )


#: Process-wide accumulation of the SoA tier's per-run counters, folded in by
#: every :func:`run_scenario` call.  Serial and in-process sweeps surface it
#: in the CLI run summary; process-pool workers accumulate (and discard) their
#: own copies, which is acceptable for an advisory observability line.
_soa_telemetry: dict = {}


def soa_telemetry_snapshot() -> dict:
    """Accumulated SoA-kernel counters of this process's ``run_scenario`` calls.

    Keys mirror ``plan_cache_info()["soa_kernels"]``: ``slots_run``,
    ``scalar_fallbacks`` and the ``busy_cache_*`` counters, summed across
    runs.  Empty until a run executes on the SoA tier.
    """
    return dict(_soa_telemetry)


def run_scenario(
    deployment: Deployment,
    config: ScenarioConfig,
    faults: Optional[FaultPlan] = None,
    *,
    trace: Optional[EventLog] = None,
    max_rounds: Optional[int] = None,
    use_cohort_runtime: Optional[bool] = None,
    use_spatial_tiling: Optional[bool] = None,
    use_soa_kernels: Optional[bool] = None,
    info_sink: Optional[dict] = None,
) -> RunResult:
    """Build and run a scenario to completion (or to the round cap).

    When ``info_sink`` is given, the simulation's post-run
    :meth:`~repro.sim.engine.Simulation.plan_cache_info` snapshot is copied
    into it — runtime-tier telemetry (cohort/SoA/tiling counters) for
    benchmark captures, without widening the closed result-metadata schema.
    """
    simulation = build_simulation(
        deployment,
        config,
        faults,
        trace=trace,
        use_cohort_runtime=use_cohort_runtime,
        use_spatial_tiling=use_spatial_tiling,
        use_soa_kernels=use_soa_kernels,
    )
    faults = faults if faults is not None else FaultPlan()
    if max_rounds is None:
        extent = math.hypot(deployment.width, deployment.height)
        bits_per_hop = config.protocol_plugin().bits_per_hop(
            config, simulation.schedule.num_slots
        )
        max_rounds = config.derive_max_rounds(
            extent,
            simulation.schedule.rounds_per_cycle,
            faults.total_jam_budget(),
            bits_per_hop=bits_per_hop,
        )
    result = simulation.run(max_rounds)
    info = simulation.plan_cache_info()
    soa = info["soa_kernels"]
    if soa.get("enabled"):
        for key in (
            "slots_run",
            "scalar_fallbacks",
            "busy_cache_hits",
            "busy_cache_misses",
            "busy_cache_evictions",
        ):
            _soa_telemetry[key] = _soa_telemetry.get(key, 0) + soa[key]
    if info_sink is not None:
        info_sink.update(info)
    # The metadata schema is closed: every key written here is declared in
    # repro.sim.results.METADATA_FIELDS, and validate_metadata rejects drift
    # so that serialized records keep a stable shape.
    result.metadata.update(
        validate_metadata(
            {
                "protocol": config.protocol,
                "radius": float(config.radius),
                "message_length": config.message_length,
                "num_nodes": deployment.num_nodes,
                "density": deployment.density,
                "seed": config.seed,
                "max_rounds": int(max_rounds),
                "rounds_per_cycle": simulation.schedule.rounds_per_cycle,
                "num_slots": simulation.schedule.num_slots,
                "num_crashed": len(faults.crashed),
                "num_jammers": len(faults.jammers),
                "num_liars": len(faults.liars),
            }
        )
    )
    return result
