"""Carrier-sensing MAC abstraction.

The paper assumes devices can perform *carrier sensing* (collision detection):
whenever there is any activity on the channel — a single message, a collision
of several messages, or jamming noise — the device can distinguish that from
complete silence, even if no frame is decodable.  The WSNet simulation modifies
the MAC layer to surface exactly this tri-state information, and the functions
here reproduce that resolution step for our channel models: given which frames
reached a listener with what strength, produce the
:class:`~repro.core.protocol.Observation` the protocol sees.
"""

from __future__ import annotations

from typing import Sequence

from ..core.messages import Frame
from ..core.protocol import ChannelState, Observation, SILENCE

__all__ = ["resolve_observation"]

#: Shared collision observation (no frame decoded, channel busy).
_COLLISION = Observation(ChannelState.COLLISION)


def resolve_observation(
    frames: Sequence[Frame],
    *,
    decoded_index: int | None = None,
    energy_detected: bool | None = None,
) -> Observation:
    """Resolve what a listening device perceives in one round.

    Parameters
    ----------
    frames:
        The frames whose signal reached the listener above the sensing
        threshold this round (possibly empty).
    decoded_index:
        Index into ``frames`` of the single frame the radio could decode, if
        any.  ``None`` means no frame was decodable (collision / jamming), in
        which case the observation is a collision whenever energy was present.
    energy_detected:
        Override for the busy test; defaults to ``len(frames) > 0``.

    Returns
    -------
    Observation
        ``SILENT`` when nothing was sensed, ``MESSAGE`` with the decoded frame
        when exactly one frame was decodable, ``COLLISION`` otherwise.
    """
    busy = bool(frames) if energy_detected is None else bool(energy_detected)
    if not busy:
        return SILENCE
    if decoded_index is not None:
        if not (0 <= decoded_index < len(frames)):
            raise ValueError("decoded_index out of range")
        return Observation(ChannelState.MESSAGE, frames[decoded_index])
    return _COLLISION
