"""Run results and the four metrics the paper's evaluation reports.

Section 6 of the paper measures, for every simulation run: how long the
broadcast took to terminate, the percentage of devices that completed the
protocol, the number of broadcasts needed, and the percentage of completed
devices that received the *correct* message.  :class:`RunResult` records the
raw per-device outcomes of one run and derives those four quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.messages import Bits

__all__ = ["NodeOutcome", "RunResult"]


@dataclass(frozen=True, slots=True)
class NodeOutcome:
    """Outcome of a single device at the end of a run."""

    node_id: int
    honest: bool
    active: bool
    delivered: bool
    correct: Optional[bool]
    delivery_round: Optional[int]
    broadcasts: int

    @property
    def completed(self) -> bool:
        """Whether the device completed the protocol (delivered some message)."""
        return self.delivered


@dataclass(slots=True)
class RunResult:
    """Aggregate outcome of one simulation run."""

    message: Bits
    total_rounds: int
    terminated: bool
    outcomes: dict[int, NodeOutcome] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    # -- per-population helpers -------------------------------------------------------
    def _honest_active(self) -> list[NodeOutcome]:
        return [o for o in self.outcomes.values() if o.honest and o.active]

    @property
    def num_nodes(self) -> int:
        return len(self.outcomes)

    @property
    def num_honest(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.honest and o.active)

    @property
    def num_adversaries(self) -> int:
        return sum(1 for o in self.outcomes.values() if not o.honest)

    @property
    def num_crashed(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.honest and not o.active)

    # -- the paper's four metrics -------------------------------------------------------
    @property
    def completion_rounds(self) -> int:
        """How long the broadcast took (rounds until the last honest delivery)."""
        rounds = [o.delivery_round for o in self._honest_active() if o.delivery_round is not None]
        return max(rounds) if rounds else self.total_rounds

    @property
    def completion_fraction(self) -> float:
        """Fraction of honest active devices that completed the protocol."""
        honest = self._honest_active()
        if not honest:
            return 0.0
        return sum(1 for o in honest if o.delivered) / len(honest)

    @property
    def total_broadcasts(self) -> int:
        """Total number of broadcasts by all devices (honest and Byzantine)."""
        return sum(o.broadcasts for o in self.outcomes.values())

    @property
    def honest_broadcasts(self) -> int:
        return sum(o.broadcasts for o in self.outcomes.values() if o.honest)

    @property
    def adversary_broadcasts(self) -> int:
        return sum(o.broadcasts for o in self.outcomes.values() if not o.honest)

    @property
    def correctness_fraction(self) -> float:
        """Fraction of *completed* honest devices that delivered the correct message.

        This is the metric of Figure 6: "the percentage of delivered messages
        that are correct".  Devices that never completed are excluded.
        """
        delivered = [o for o in self._honest_active() if o.delivered]
        if not delivered:
            return 1.0
        return sum(1 for o in delivered if o.correct) / len(delivered)

    @property
    def correct_delivery_fraction(self) -> float:
        """Fraction of honest active devices that delivered the *correct* message.

        This combines coverage and correctness and is the quantity thresholded
        at 90% by Figure 7.
        """
        honest = self._honest_active()
        if not honest:
            return 0.0
        return sum(1 for o in honest if o.delivered and o.correct) / len(honest)

    @property
    def any_incorrect_delivery(self) -> bool:
        """Whether any honest device accepted a message the source did not send."""
        return any(o.delivered and o.correct is False for o in self._honest_active())

    # -- presentation -----------------------------------------------------------------
    def summary(self) -> Mapping[str, float]:
        """Compact dictionary of the headline metrics (handy for tables/tests)."""
        return {
            "rounds": float(self.completion_rounds),
            "total_rounds": float(self.total_rounds),
            "terminated": float(self.terminated),
            "completion_fraction": self.completion_fraction,
            "correctness_fraction": self.correctness_fraction,
            "correct_delivery_fraction": self.correct_delivery_fraction,
            "honest_broadcasts": float(self.honest_broadcasts),
            "adversary_broadcasts": float(self.adversary_broadcasts),
            "num_honest": float(self.num_honest),
            "num_adversaries": float(self.num_adversaries),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunResult(rounds={self.completion_rounds}, "
            f"completed={self.completion_fraction:.2%}, "
            f"correct={self.correctness_fraction:.2%}, "
            f"terminated={self.terminated})"
        )
