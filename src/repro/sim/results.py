"""Run results and the four metrics the paper's evaluation reports.

Section 6 of the paper measures, for every simulation run: how long the
broadcast took to terminate, the percentage of devices that completed the
protocol, the number of broadcasts needed, and the percentage of completed
devices that received the *correct* message.  :class:`RunResult` records the
raw per-device outcomes of one run and derives those four quantities.

Serialization
-------------
Both classes round-trip losslessly through plain JSON-compatible dictionaries
(:meth:`NodeOutcome.to_record` / :meth:`RunResult.to_record` and the matching
``from_record`` constructors), which is what the on-disk result store in
:mod:`repro.store` persists.  ``RunResult.to_record(aggregate_only=True)``
produces a compact form that keeps only the headline metrics — useful for
logs and exports, but not reconstructible into a full :class:`RunResult`.

``RunResult.metadata`` is *not* free-form: the keys the scenario builder
writes are declared in :data:`METADATA_FIELDS` and checked by
:func:`validate_metadata`, so that serialized records have a stable schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..core.messages import Bits

__all__ = [
    "NodeOutcome",
    "RunResult",
    "METADATA_FIELDS",
    "RECORD_VERSION",
    "validate_metadata",
]

#: Version of the ``to_record`` dictionary layout.  Bump when the shape of the
#: serialized records changes incompatibly; the result store refuses to read
#: records written under a different version.
RECORD_VERSION = 1

#: The metadata keys a :class:`RunResult` may carry, with their value types.
#: ``run_scenario`` writes exactly these keys; experiments must not invent
#: others (``validate_metadata`` enforces it), so the serialized record schema
#: is closed and future readers know what to expect.
METADATA_FIELDS: Mapping[str, type] = {
    "protocol": str,          # canonical registry key of the simulated protocol
    "radius": float,          # communication radius R
    "message_length": int,    # bits of the application message
    "num_nodes": int,         # deployed devices (honest + faulty)
    "density": float,         # devices per unit area
    "seed": int,              # root seed of the run
    "max_rounds": int,        # round cap the run was given
    "rounds_per_cycle": int,  # schedule geometry
    "num_slots": int,         # schedule geometry
    "num_crashed": int,       # fault-plan composition
    "num_jammers": int,       # fault-plan composition
    "num_liars": int,         # fault-plan composition
}


def validate_metadata(metadata: Mapping[str, Any], *, strict: bool = True) -> dict:
    """Check run metadata against :data:`METADATA_FIELDS` and return a copy.

    ``strict`` rejects keys outside the declared schema; non-strict validation
    (used when deserializing records written by future versions) keeps unknown
    keys but still type-checks the known ones.  Ints are accepted where floats
    are declared (they serialize identically through JSON).
    """
    out: dict = {}
    for key, value in metadata.items():
        expected = METADATA_FIELDS.get(key)
        if expected is None:
            if strict:
                raise ValueError(
                    f"unknown RunResult metadata key {key!r}; declared keys: "
                    f"{', '.join(METADATA_FIELDS)}"
                )
            out[key] = value
            continue
        if expected is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        if not isinstance(value, expected) or (isinstance(value, bool) and expected is not bool):
            raise ValueError(
                f"metadata key {key!r} must be {expected.__name__}, got {type(value).__name__}"
            )
        out[key] = value
    return out


@dataclass(frozen=True, slots=True)
class NodeOutcome:
    """Outcome of a single device at the end of a run."""

    node_id: int
    honest: bool
    active: bool
    delivered: bool
    correct: Optional[bool]
    delivery_round: Optional[int]
    broadcasts: int

    @property
    def completed(self) -> bool:
        """Whether the device completed the protocol (delivered some message)."""
        return self.delivered

    def to_record(self) -> dict:
        """A JSON-compatible dictionary that round-trips through :meth:`from_record`."""
        return {
            "node_id": self.node_id,
            "honest": self.honest,
            "active": self.active,
            "delivered": self.delivered,
            "correct": self.correct,
            "delivery_round": self.delivery_round,
            "broadcasts": self.broadcasts,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "NodeOutcome":
        """Rebuild an outcome from a :meth:`to_record` dictionary."""
        return cls(
            node_id=int(record["node_id"]),
            honest=bool(record["honest"]),
            active=bool(record["active"]),
            delivered=bool(record["delivered"]),
            correct=None if record["correct"] is None else bool(record["correct"]),
            delivery_round=(
                None if record["delivery_round"] is None else int(record["delivery_round"])
            ),
            broadcasts=int(record["broadcasts"]),
        )


@dataclass(slots=True)
class RunResult:
    """Aggregate outcome of one simulation run."""

    message: Bits
    total_rounds: int
    terminated: bool
    outcomes: dict[int, NodeOutcome] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    # -- per-population helpers -------------------------------------------------------
    def _honest_active(self) -> list[NodeOutcome]:
        return [o for o in self.outcomes.values() if o.honest and o.active]

    @property
    def num_nodes(self) -> int:
        return len(self.outcomes)

    @property
    def num_honest(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.honest and o.active)

    @property
    def num_adversaries(self) -> int:
        return sum(1 for o in self.outcomes.values() if not o.honest)

    @property
    def num_crashed(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.honest and not o.active)

    # -- the paper's four metrics -------------------------------------------------------
    @property
    def completion_rounds(self) -> int:
        """How long the broadcast took (rounds until the last honest delivery)."""
        rounds = [o.delivery_round for o in self._honest_active() if o.delivery_round is not None]
        return max(rounds) if rounds else self.total_rounds

    @property
    def completion_fraction(self) -> float:
        """Fraction of honest active devices that completed the protocol."""
        honest = self._honest_active()
        if not honest:
            return 0.0
        return sum(1 for o in honest if o.delivered) / len(honest)

    @property
    def total_broadcasts(self) -> int:
        """Total number of broadcasts by all devices (honest and Byzantine)."""
        return sum(o.broadcasts for o in self.outcomes.values())

    @property
    def honest_broadcasts(self) -> int:
        return sum(o.broadcasts for o in self.outcomes.values() if o.honest)

    @property
    def adversary_broadcasts(self) -> int:
        return sum(o.broadcasts for o in self.outcomes.values() if not o.honest)

    @property
    def correctness_fraction(self) -> float:
        """Fraction of *completed* honest devices that delivered the correct message.

        This is the metric of Figure 6: "the percentage of delivered messages
        that are correct".  Devices that never completed are excluded.
        """
        delivered = [o for o in self._honest_active() if o.delivered]
        if not delivered:
            return 1.0
        return sum(1 for o in delivered if o.correct) / len(delivered)

    @property
    def correct_delivery_fraction(self) -> float:
        """Fraction of honest active devices that delivered the *correct* message.

        This combines coverage and correctness and is the quantity thresholded
        at 90% by Figure 7.
        """
        honest = self._honest_active()
        if not honest:
            return 0.0
        return sum(1 for o in honest if o.delivered and o.correct) / len(honest)

    @property
    def any_incorrect_delivery(self) -> bool:
        """Whether any honest device accepted a message the source did not send."""
        return any(o.delivered and o.correct is False for o in self._honest_active())

    # -- serialization ----------------------------------------------------------------
    def to_record(self, *, aggregate_only: bool = False) -> dict:
        """A JSON-compatible dictionary describing this run.

        The default form is lossless: :meth:`from_record` rebuilds an equal
        :class:`RunResult` from it, per-device outcomes included.  With
        ``aggregate_only=True`` the outcomes are replaced by the
        :meth:`summary` metrics — roughly ``num_nodes`` times smaller, but no
        longer reconstructible (``from_record`` rejects such records).
        """
        record: dict = {
            "version": RECORD_VERSION,
            "message": [int(b) for b in self.message],
            "total_rounds": self.total_rounds,
            "terminated": self.terminated,
            "metadata": validate_metadata(self.metadata, strict=False),
        }
        if aggregate_only:
            record["summary"] = dict(self.summary())
        else:
            record["outcomes"] = [
                self.outcomes[node_id].to_record() for node_id in sorted(self.outcomes)
            ]
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "RunResult":
        """Rebuild a run from a lossless :meth:`to_record` dictionary."""
        version = record.get("version")
        if version != RECORD_VERSION:
            raise ValueError(
                f"cannot read RunResult record version {version!r} "
                f"(this build reads version {RECORD_VERSION})"
            )
        if "outcomes" not in record:
            raise ValueError(
                "record is aggregate-only (no per-device outcomes); "
                "only records from to_record(aggregate_only=False) round-trip"
            )
        outcomes = {
            int(o["node_id"]): NodeOutcome.from_record(o) for o in record["outcomes"]
        }
        return cls(
            message=tuple(int(b) for b in record["message"]),
            total_rounds=int(record["total_rounds"]),
            terminated=bool(record["terminated"]),
            outcomes=outcomes,
            metadata=validate_metadata(record.get("metadata", {}), strict=False),
        )

    # -- presentation -----------------------------------------------------------------
    def summary(self) -> Mapping[str, float]:
        """Compact dictionary of the headline metrics (handy for tables/tests)."""
        return {
            "rounds": float(self.completion_rounds),
            "total_rounds": float(self.total_rounds),
            "terminated": float(self.terminated),
            "completion_fraction": self.completion_fraction,
            "correctness_fraction": self.correctness_fraction,
            "correct_delivery_fraction": self.correct_delivery_fraction,
            "honest_broadcasts": float(self.honest_broadcasts),
            "adversary_broadcasts": float(self.adversary_broadcasts),
            "num_honest": float(self.num_honest),
            "num_adversaries": float(self.num_adversaries),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunResult(rounds={self.completion_rounds}, "
            f"completed={self.completion_fraction:.2%}, "
            f"correct={self.correctness_fraction:.2%}, "
            f"terminated={self.terminated})"
        )
