"""Scenario and fault configuration.

A *scenario* bundles everything that defines a simulation run apart from the
deployment itself: which protocol to run, the radio parameters, the channel
model, the message being broadcast and the run limits.  A *fault plan* lists
which devices misbehave and how.  Both are plain dataclasses so that
experiments can sweep over them declaratively and results remain reproducible
from their configuration alone.

Protocols and channels are referenced by *registry key* (plain strings such
as ``"neighborwatch"`` or ``"friis"``), resolved through the open registries
in :mod:`repro.registry` — not by enum.  Construction canonicalizes aliases
(``"nw2"`` → ``"neighborwatch2"``), so a :class:`ScenarioConfig` always
carries the canonical key; the canonical keys equal the values the retired
``ProtocolName`` / ``ChannelName`` enums carried, which keeps every stored
:meth:`repro.sim.runner.SweepTask.fingerprint` byte-identical across the
registry redesign.  Registering a new protocol or channel plugin makes it
sweepable here with no changes to this module.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from ..core.messages import Bits, validate_bits
from ..registry import CHANNELS, PROTOCOLS

__all__ = [
    "canonical_protocol",
    "canonical_channel",
    "ScenarioConfig",
    "FaultPlan",
    "default_message",
    "dense_link_state_bytes",
]


def canonical_protocol(value: str) -> str:
    """The canonical registry key of a protocol name or alias.

    Raises a :class:`~repro.registry.RegistryError` (a ``KeyError`` *and*
    ``ValueError`` subclass) listing the registered protocols when the key is
    unknown.  Lookup ignores case, ``-`` and ``_``, so the historical aliases
    (``"nw"``, ``"2-vote"``, ``"flooding"``, ...) keep resolving.
    """
    return PROTOCOLS.canonical(value)


def canonical_channel(value: str) -> str:
    """The canonical registry key of a channel name (see :func:`canonical_protocol`)."""
    return CHANNELS.canonical(value)


def dense_link_state_bytes(num_nodes: int, channel: str) -> int:
    """Bytes the dense ``N x N`` link state of ``channel`` would occupy.

    The unit-disk audibility mask is one byte per pair (``bool``), the Friis
    received-power matrix eight (``float64``).  Used by the experiment
    ``describe`` command and the memory-budget guard messaging to show, before
    anything is allocated, what the sparse spatially-tiled tier
    (``use_spatial_tiling`` / ``REPRO_SPATIAL_TILING``) avoids.
    """
    if num_nodes < 0:
        raise ValueError("num_nodes must be >= 0")
    itemsize = 8 if canonical_channel(channel) == "friis" else 1
    return num_nodes * num_nodes * itemsize


def default_message(length: int) -> Bits:
    """The default application message: an alternating pattern starting with 1.

    The pattern exercises both bit values and both parity phases of the
    1Hop-Protocol; experiments that need a specific message pass their own.
    """
    if length < 1:
        raise ValueError("message length must be >= 1")
    return tuple((i + 1) % 2 for i in range(length))


@dataclass(slots=True)
class ScenarioConfig:
    """Everything that defines a run apart from the deployment and the faults.

    Attributes
    ----------
    protocol:
        Registry key (or alias) of the protocol to run; see
        ``repro.registry.PROTOCOLS.keys()`` for what is available.
    radius:
        Communication radius ``R`` (the paper's experiments use ~3-4 length
        units).
    message_length:
        Number of bits of the application message (4-5 bits in the paper).
    message:
        Explicit message bits; defaults to :func:`default_message`.
    norm:
        ``"l2"`` for geometric deployments (simulation model), ``"linf"`` for
        the analytical grid model.
    channel:
        Registry key of the channel model (``"unitdisk"`` or ``"friis"``
        built-in).
    capture_probability / loss_probability:
        Channel imperfections (see :mod:`repro.sim.radio`).
    square_side:
        Side of the NeighborWatchRB squares; defaults to the paper's choice
        (``R/3`` for l2 deployments, ``ceil(R/2)`` for the analytical model).
    multipath_tolerance:
        The ``t`` parameter MultiPathRB is tuned for.
    schedule_separation:
        Minimum distance between devices sharing a slot (default ``3R``).
    epidemic_separation:
        Slot-sharing separation for the epidemic baseline.  Defaults to the
        same ``3R`` rule as the authenticated protocols so that the
        NeighborWatchRB-vs-epidemic comparison isolates the protocols'
        overhead rather than differences in MAC assumptions; lower it (e.g. to
        ``2R``) to model a more aggressive flooding MAC.
    idle_veto:
        Whether relays veto their own idle intervals (see DESIGN.md).
    max_rounds:
        Hard cap on the simulated rounds; ``None`` derives a generous bound
        from the deployment size, message length and adversary budgets.
    seed:
        Root seed for all randomness of the run.
    """

    protocol: str = "neighborwatch"
    radius: float = 4.0
    message_length: int = 4
    message: Optional[Sequence[int]] = None
    norm: str = "l2"
    channel: str = "unitdisk"
    capture_probability: float = 0.0
    loss_probability: float = 0.0
    square_side: Optional[float] = None
    multipath_tolerance: int = 3
    schedule_separation: Optional[float] = None
    epidemic_separation: Optional[float] = None
    idle_veto: bool = True
    max_rounds: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        self.protocol = canonical_protocol(self.protocol)
        self.channel = canonical_channel(self.channel)
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if self.message_length < 1:
            raise ValueError("message_length must be >= 1")
        if self.message is not None:
            self.message = validate_bits(self.message)
            if len(self.message) != self.message_length:
                raise ValueError("message length must equal message_length")
        if self.norm not in ("l2", "linf"):
            raise ValueError("norm must be 'l2' or 'linf'")
        if self.multipath_tolerance < 0:
            raise ValueError("multipath_tolerance must be non-negative")

    # -- derived values -------------------------------------------------------------------
    @property
    def message_bits(self) -> Bits:
        return validate_bits(self.message) if self.message is not None else default_message(self.message_length)

    @property
    def separation(self) -> float:
        if self.schedule_separation is not None:
            return float(self.schedule_separation)
        return 3.0 * self.radius

    @property
    def epidemic_slot_separation(self) -> float:
        if self.epidemic_separation is not None:
            return float(self.epidemic_separation)
        return self.separation

    def protocol_plugin(self):
        """The registered :class:`~repro.registry.ProtocolPlugin` for this scenario."""
        return PROTOCOLS.get(self.protocol)

    def channel_plugin(self):
        """The registered :class:`~repro.registry.ChannelPlugin` for this scenario."""
        return CHANNELS.get(self.channel)

    def effective_square_side(self) -> float:
        if self.square_side is not None:
            if self.square_side <= 0:
                raise ValueError("square_side must be positive")
            return float(self.square_side)
        from ..core.regions import default_square_side

        return default_square_side(self.radius, self.norm)

    def derive_max_rounds(
        self,
        map_extent: float,
        rounds_per_cycle: int,
        adversary_budget: int = 0,
        *,
        bits_per_hop: int = 1,
    ) -> int:
        """A generous round cap: enough cycles for the pipeline plus adversarial delay.

        ``bits_per_hop`` accounts for protocols whose per-hop progress requires
        several 1Hop bits (MultiPathRB streams whole control frames, so one hop
        of progress costs ``frame_bits`` successful slots).  The hop count
        itself comes from the protocol plugin's ``pipeline_hops`` — for
        NeighborWatchRB the effective hop length is the square side rather
        than the radio range.
        """
        if self.max_rounds is not None:
            return int(self.max_rounds)
        hops = self.protocol_plugin().pipeline_hops(self, map_extent)
        # Pipelined delivery needs O(hops + message_length) cycles; multiply by a
        # slack factor and add one cycle per adversarial broadcast (each broadcast
        # can spoil at most one slot).
        cycles = 6 * (hops + self.message_length + 8) * max(1, int(bits_per_hop)) + adversary_budget
        return int(cycles) * int(rounds_per_cycle)

    def with_protocol(self, protocol: str) -> "ScenarioConfig":
        """A copy of this configuration running a different protocol."""
        return replace(self, protocol=canonical_protocol(protocol))


@dataclass(slots=True)
class FaultPlan:
    """Which devices misbehave and how.

    Devices may appear in at most one of the three lists.  The broadcast
    source must stay honest (the problem statement assumes an honest source).
    """

    crashed: tuple[int, ...] = ()
    jammers: tuple[int, ...] = ()
    liars: tuple[int, ...] = ()
    jammer_budget: Optional[int] = None
    jam_probability: float = 0.2
    fake_message: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        self.crashed = tuple(sorted(set(int(i) for i in self.crashed)))
        self.jammers = tuple(sorted(set(int(i) for i in self.jammers)))
        self.liars = tuple(sorted(set(int(i) for i in self.liars)))
        overlaps = (set(self.crashed) & set(self.jammers)) | (set(self.crashed) & set(self.liars)) | (
            set(self.jammers) & set(self.liars)
        )
        if overlaps:
            raise ValueError(f"devices assigned multiple fault roles: {sorted(overlaps)}")
        if not (0.0 <= self.jam_probability <= 1.0):
            raise ValueError("jam_probability must be in [0, 1]")
        if self.fake_message is not None:
            self.fake_message = validate_bits(self.fake_message)

    @property
    def faulty(self) -> tuple[int, ...]:
        """All faulty devices (crashed, jamming or lying)."""
        return tuple(sorted(set(self.crashed) | set(self.jammers) | set(self.liars)))

    @property
    def byzantine(self) -> tuple[int, ...]:
        """Devices with Byzantine (non-crash) behaviour."""
        return tuple(sorted(set(self.jammers) | set(self.liars)))

    def total_jam_budget(self) -> int:
        """Total adversarial broadcast budget (0 when unlimited budgets are used)."""
        if self.jammer_budget is None:
            return 0
        return self.jammer_budget * len(self.jammers)

    def validate_for(self, num_nodes: int, source_index: int) -> None:
        """Check the plan against a concrete deployment."""
        for idx in self.faulty:
            if not (0 <= idx < num_nodes):
                raise ValueError(f"faulty device index {idx} out of range")
        if source_index in self.faulty:
            raise ValueError("the broadcast source must remain honest and active")
