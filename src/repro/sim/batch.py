"""Shared-state batched execution of observation-identical devices.

The paper's central structural observation — "all honest devices in a square
behave identically; they form a single *meta-node*" — is also a runtime
optimization: as long as a group of devices started in identical protocol
state and has observed identical channel activity, their per-round transitions
are one computation, not one per device.  :class:`CohortRuntime` exploits
exactly that:

* at construction, honest devices whose protocols declare themselves
  ``shareable`` are grouped into **cohorts** by
  :meth:`~repro.core.protocol.Protocol.cohort_key` (for NeighborWatchRB this
  seeds one cohort per group of state-identical square members); adversaries,
  dishonest devices, RNG-consuming protocols and one-member groups stay on the
  scalar per-device path as **singletons**;
* each cohort is driven through the typed phase-machine API of
  :mod:`repro.core.runtime`: ``phase_act`` is evaluated once per cohort per
  round and the member-independent :class:`~repro.core.runtime.ActionSpec` is
  fanned out into per-member frames (every member still produces *its own*
  transmission, with its own sender id, in its historical record position);
* observations are delivered once per cohort while every member perceives the
  same *projected* thing (``shared_observation_attr``; rounds the machine
  declares ``OPAQUE_LISTEN`` are skipped entirely), and the moment two
  members' projected observations differ the cohort **splits**
  (copy-on-divergence): the shared machine is cloned per observation class
  and execution continues on the finer partition;
* at slot boundaries, sibling cohorts whose
  :meth:`~repro.core.protocol.Protocol.state_signature` reconverged are
  **re-merged** (a receiver that missed a bit and caught up on the
  retransmission rejoins its square's meta-node), with dirty-flag gating and
  per-family exponential backoff against split/merge oscillation.

Bit-identity is a hard contract (see ROADMAP).  The runtime preserves it by
construction: transmissions, listeners, trace events and channel-RNG
consumption all happen in the exact per-record order of the scalar engine
loop; shareable protocols consume no RNG in their transitions; and the
fan-out frames are value-equal to the frames the members would have built
themselves.  ``tests/test_kernel_equivalence.py`` and
``tests/test_cohort_runtime.py`` pin cohort-vs-scalar equivalence
observation-for-observation and record-for-record.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from ..core.messages import Frame
from ..core.protocol import SILENCE
from ..core.runtime import END_PHASE, OPAQUE_LISTEN, PhaseContext, clone_machine
from .events import EventKind
from .node import SimNode
from .radio import Transmission
from .plan import (
    REC_ACT,
    REC_END_SLOT,
    REC_HONEST,
    REC_ID,
    REC_NODE,
    REC_OBSERVE,
    REC_POSITION,
    SlotPlan,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulation

__all__ = ["Cohort", "CohortRuntime"]

_SPEC_TX_CACHE_MAX = 8192


class Cohort:
    """One group of devices sharing a single protocol state machine.

    ``members`` are the devices currently driven by ``machine`` (ascending
    node id; the first member is the *leader* whose :class:`NodeContext` the
    machine is bound to).  ``slots`` is the common interest set — cohort
    members participate in exactly the same slots, which is what lets one
    ``phase_act`` evaluation stand in for all of them.  ``proj`` is the
    protocol's observation projection
    (:attr:`~repro.core.protocol.Protocol.shared_observation_attr`): members
    whose *projected* observations agree keep sharing even when the raw
    observations differ.
    """

    __slots__ = (
        "machine", "members", "slots", "proj", "family",
        "_tag", "_obs_tag", "_spec", "_buf", "_buf_obs",
    )

    def __init__(self, machine, members: tuple, slots: tuple, family: int) -> None:
        self.machine = machine
        self.members = members
        self.slots = slots
        self.proj = getattr(type(machine), "shared_observation_attr", None)
        self.family = family  # index of the construction-time ancestor cohort
        self._tag = -1       # phase stamp of the last computed act decision
        self._obs_tag = -1   # phase stamp of the last delivered silence
        self._spec = None    # the act decision computed under _tag
        self._buf: list = []      # entries of the current phase's listeners
        self._buf_obs: list = []  # their observations, parallel to _buf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ids = [node.node_id for node in self.members]
        return f"Cohort({type(self.machine).__name__}, members={ids})"


class CohortRuntime:
    """Cohort-grouped slot execution for one :class:`~repro.sim.engine.Simulation`.

    Construction compiles cohort membership into the per-slot entry lists of
    the :class:`~repro.sim.plan.SlotPlan` (``[record, cohort, spec, tx]``
    entries in historical participant order — see
    :meth:`~repro.sim.plan.SlotPlan.compile_cohort_entries`); splits and
    re-merges rewrite the affected entries in place, so membership is tracked
    incrementally and the hot loop never re-derives it.
    """

    def __init__(
        self,
        nodes: Sequence[SimNode],
        plan: SlotPlan,
        *,
        record_splits: bool = False,
        allow_remerge: bool = True,
        tiling=None,
    ) -> None:
        groups: dict = {}
        active = 0
        for node in nodes:
            proto = node.protocol
            if proto is None:
                continue
            active += 1
            if not node.honest or not getattr(proto, "shareable", False):
                continue
            if getattr(proto, "may_transmit_anywhere", False):
                continue
            key = proto.cohort_key()
            if key is None:
                continue
            # The interest tuple is part of the grouping key as defence in
            # depth: cohort_key() is documented to determine it, but a
            # protocol that breaks that rule must degrade to finer cohorts,
            # never to members executing slots they did not declare.
            full_key = (type(proto), key, tuple(proto.interests()))
            # Region-keyed grouping (opt-in): protocols whose transitions
            # depend on position only through the paper's region decomposition
            # (MultiPathRB's commit geometry) expose that view as a hashable
            # profile; folding it in here means two members share a machine
            # exactly when their region-derived views — R-ball membership,
            # per-slot owner neighborhoods — are equal.
            attr = getattr(proto, "position_cohort_attr", None)
            if attr is not None:
                full_key = full_key + (getattr(proto, attr),)
            groups.setdefault(full_key, []).append(node)

        #: Saved per-member contexts: clones are rebound to the context of
        #: their new group leader when a cohort splits.
        self.contexts: dict[int, object] = {}
        self.cohort_of: dict[int, Cohort] = {}
        self.cohorts: list[Cohort] = []
        for full_key, members in groups.items():
            if len(members) < 2:
                # One-member groups keep their compiled scalar fast path —
                # sharing would only add indirection.
                continue
            machine = members[0].protocol
            cohort = Cohort(machine, tuple(members), full_key[2], family=len(self.cohorts))
            for node in members:
                self.contexts[node.node_id] = node.protocol.context
                node.protocol = machine
                self.cohort_of[node.node_id] = cohort
            self.cohorts.append(cohort)

        self.initial_cohorts = len(self.cohorts)
        self.live_cohorts = len(self.cohorts)
        self.shared_members = len(self.cohort_of)
        self.singletons = active - self.shared_members
        self.share_hits = 0
        self.divergence_splits = 0
        self.cohort_merges = 0
        #: Per-family live cohort counts and the set of families currently
        #: split into more than one cohort (the only ones the slot-boundary
        #: re-merge pass ever inspects).
        self.family_counts: dict[int, int] = {c.family: 1 for c in self.cohorts}
        self._fragmented: set[int] = set()
        self.allow_remerge = bool(allow_remerge)
        #: Churn damping: a family that re-splits shortly after a merge is in
        #: a split/merge oscillation (e.g. a member on a reception boundary
        #: diverging every schedule cycle); its merge attempts are delayed
        #: with exponential backoff so the runtime stops paying clone +
        #: signature costs for sharing that immediately evaporates.
        self._slot_counter = 0
        self._family_next_merge: dict[int, int] = {}
        self._family_backoff: dict[int, int] = {}
        self._family_last_merge: dict[int, int] = {}
        #: When ``record_splits`` is set (tests), every split appends
        #: ``((cycle, slot, phase), parent_member_ids, group_member_id_tuples)``
        #: to ``split_log`` and every re-merge appends ``((cycle, slot),
        #: merged_member_id_tuples)`` to ``merge_log``.
        self.record_splits = bool(record_splits)
        self.split_log: list = []
        self.merge_log: list = []

        #: Optional :class:`~repro.sim.tiling.RegionTiling` of the deployment.
        #: Cohort grouping is by observational equivalence, not by location, so
        #: the tiling only feeds introspection: how many shared cohorts span
        #: more than one region tile (their shared decisions are the traffic a
        #: distributed tile executor would have to exchange).
        self.tiling = tiling
        self.cross_region_cohorts = 0
        if tiling is not None:
            tile_of = tiling.tile_of
            for cohort in self.cohorts:
                tiles = {int(tile_of[node.node_id]) for node in cohort.members}
                if len(tiles) > 1:
                    self.cross_region_cohorts += 1

        # With no multi-member cohort, the engine keeps the scalar loop and
        # never calls run_slot — skip compiling entries for every slot.
        self.slot_entries = plan.compile_cohort_entries(self.cohort_of) if self.cohorts else {}
        self._phase_tag = 0
        #: Interned fan-out transmissions keyed ``(node_id, spec)``: hashing a
        #: NamedTuple spec is a C-level tuple hash, while going through
        #: ``plan.transmission`` would re-hash the Frame dataclass per round.
        self._spec_transmissions: dict = {}

    # -- introspection ---------------------------------------------------------------
    def info(self) -> dict:
        """Counters for :meth:`Simulation.plan_cache_info` (see its docstring)."""
        out = {
            "enabled": True,
            "active": bool(self.cohorts),
            "initial_cohorts": self.initial_cohorts,
            "cohorts": self.live_cohorts,
            "shared_members": self.shared_members,
            "singletons": self.singletons,
            "share_hits": self.share_hits,
            "divergence_splits": self.divergence_splits,
            "cohort_merges": self.cohort_merges,
        }
        if self.tiling is not None:
            out["cross_region_cohorts"] = self.cross_region_cohorts
        return out

    # -- hot path --------------------------------------------------------------------
    def _member_transmission(self, node_id: int, position, spec):
        """Interned fan-out transmission for one member and a shared decision.

        The embedded frame is value-equal to the one the member's own ``act``
        adapter would have built (kind + payload from the spec, sender id
        from the member); the cache retains it via ``tx.frame``, so one
        intern table serves both.
        """
        key = (node_id, spec)
        cache = self._spec_transmissions
        tx = cache.get(key)
        if tx is None:
            if len(cache) >= _SPEC_TX_CACHE_MAX:
                cache.clear()
            tx = Transmission(node_id, position, Frame(spec.kind, node_id, spec.payload))
            cache[key] = tx
        return tx

    def run_slot(
        self,
        sim: "Simulation",
        cycle: int,
        slot: int,
        extras: Optional[list],
        occurrence_key: object,
    ) -> None:
        """Execute one slot occurrence (same observable behaviour as the scalar loop)."""
        self._slot_counter += 1
        entries = self.slot_entries.get(slot)
        if extras:
            extra_entries = [[record, None, None, None] for record in extras]
            entries = extra_entries if entries is None else entries + extra_entries
        plan = sim.plan
        trace = sim.trace
        round_index = sim.round_index
        phases = sim.schedule.phases_per_slot
        transmission = plan.transmission
        member_transmission = self._member_transmission
        spec_transmissions = self._spec_transmissions
        share_hits = 0
        for phase in range(phases):
            ctx = PhaseContext(cycle, slot, phase)
            self._phase_tag = tag = self._phase_tag + 1
            transmissions: list = []
            listener_entries: list = []
            append_listener = listener_entries.append
            append_transmission = transmissions.append
            for entry in entries:
                record = entry[0]
                cohort = entry[1]
                if cohort is None:
                    frame = record[REC_ACT](cycle, slot, phase)
                    if frame is None:
                        append_listener(entry)
                        continue
                    tx = transmission(record[REC_ID], record[REC_POSITION], frame)
                else:
                    if cohort._tag != tag:
                        cohort._tag = tag
                        cohort._spec = cohort.machine.phase_act(ctx)
                    else:
                        share_hits += 1
                    # OPAQUE_LISTEN members still enter the listener lists
                    # (the channel RNG stream is per-listener, so the engine
                    # must resolve the round for them exactly as the scalar
                    # path would) but their observation is neither delivered
                    # nor allowed to split the cohort.
                    spec = cohort._spec
                    if spec is None or spec is OPAQUE_LISTEN:
                        append_listener(entry)
                        continue
                    if entry[2] is spec:
                        tx = entry[3]
                    else:
                        tx = spec_transmissions.get((record[REC_ID], spec))
                        if tx is None:
                            tx = member_transmission(record[REC_ID], record[REC_POSITION], spec)
                        entry[2] = spec
                        entry[3] = tx
                append_transmission(tx)
                record[REC_NODE].broadcasts += 1
                if trace is not None:
                    trace.record(
                        EventKind.BROADCAST,
                        round_index + phase,
                        record[REC_ID],
                        slot,
                        phase,
                        tx.frame.kind.name,
                    )
            if not listener_entries:
                continue
            if not transmissions:
                # A silent round is the same observation for everyone; it can
                # never split a cohort.
                for entry in listener_entries:
                    cohort = entry[1]
                    if cohort is None:
                        entry[0][REC_OBSERVE](cycle, slot, phase, SILENCE)
                    elif cohort._spec is OPAQUE_LISTEN:
                        share_hits += 1
                    elif cohort._obs_tag != tag:
                        cohort._obs_tag = tag
                        cohort.machine.phase_observe(ctx, SILENCE)
                    else:
                        share_hits += 1
                continue
            listeners = [entry[0][REC_ID] for entry in listener_entries]
            observations = sim._resolve_round(occurrence_key, listeners, transmissions)
            pending: Optional[list[Cohort]] = None
            for entry, obs in zip(listener_entries, observations):
                cohort = entry[1]
                if cohort is None:
                    entry[0][REC_OBSERVE](cycle, slot, phase, obs)
                elif cohort._spec is OPAQUE_LISTEN:
                    share_hits += 1
                else:
                    buf = cohort._buf
                    if not buf:
                        if pending is None:
                            pending = []
                        pending.append(cohort)
                    buf.append(entry)
                    cohort._buf_obs.append(obs)
            if pending is not None:
                for cohort in pending:
                    buf_obs = cohort._buf_obs
                    first = buf_obs[0]
                    # Uniformity is judged on the protocol's declared
                    # observation projection: NeighborWatchRB machines react
                    # to channel activity only, so decode-vs-collision
                    # differences between members do not split the cohort.
                    proj = cohort.proj
                    uniform = True
                    if proj is None:
                        for obs in buf_obs:
                            if obs is not first and obs != first:
                                uniform = False
                                break
                    else:
                        first_value = getattr(first, proj)
                        for obs in buf_obs:
                            if obs is not first and getattr(obs, proj) != first_value:
                                uniform = False
                                break
                    if uniform:
                        if len(buf_obs) != len(cohort.members):
                            raise RuntimeError(
                                f"cohort contract violation: {cohort!r} has "
                                f"{len(cohort.members)} members but {len(buf_obs)} "
                                f"listened in slot {slot} — cohort_key() must "
                                "determine the interest set"
                            )
                        cohort.machine.phase_observe(ctx, first)
                        share_hits += len(buf_obs) - 1
                    else:
                        share_hits += self._split(ctx, cohort, cohort._buf, buf_obs)
                    cohort._buf.clear()
                    buf_obs.clear()
        self.share_hits += share_hits

        end_round = round_index + phases
        end_ctx = PhaseContext(cycle, slot, END_PHASE)
        self._phase_tag = end_tag = self._phase_tag + 1
        fragmented = self._fragmented
        merge_candidates: Optional[dict] = None
        for entry in entries:
            record = entry[0]
            cohort = entry[1]
            if cohort is None:
                record[REC_END_SLOT](cycle, slot)
            elif cohort._tag != end_tag:
                cohort._tag = end_tag
                cohort.machine.phase_end(end_ctx)
                if fragmented and cohort.family in fragmented:
                    if merge_candidates is None:
                        merge_candidates = {}
                    merge_candidates.setdefault(cohort.family, []).append(cohort)
            node = record[REC_NODE]
            if record[REC_HONEST] and node.delivery_round is None and node.delivered:
                node.mark_delivered(end_round)
                if trace is not None:
                    trace.record(EventKind.DELIVERY, end_round, record[REC_ID])
        if merge_candidates is not None and self.allow_remerge:
            self._try_merges(cycle, slot, merge_candidates)

    # -- divergence ------------------------------------------------------------------
    def _split(self, ctx: PhaseContext, cohort: Cohort, buf_entries: list, buf_obs: list) -> int:
        """Copy-on-divergence: partition ``cohort`` by this phase's observation.

        Groups are formed over the *projected* observations (see
        :attr:`Cohort.proj`) in first-appearance (= ascending member id)
        order; the first group keeps the original machine, every further
        group gets a deep copy taken *before* any observation is applied, and
        each group's machine is rebound to its new leader's context.  The
        compiled per-slot entries are rewritten in place for every slot of
        the cohort's interest set, so the next phase already executes on the
        finer partition.  Returns the number of per-device evaluations still
        saved in this phase (members beyond each group's first).
        """
        if len(buf_entries) != len(cohort.members):
            raise RuntimeError(
                f"cohort contract violation: {cohort!r} has {len(cohort.members)} "
                f"members but {len(buf_entries)} listened in slot {ctx.slot} — "
                "cohort_key() must determine the interest set"
            )
        proj = cohort.proj
        groups: list[tuple] = []
        index: dict = {}
        for entry, obs in zip(buf_entries, buf_obs):
            value = obs if proj is None else getattr(obs, proj)
            i = index.get(value)
            if i is None:
                index[value] = len(groups)
                groups.append((obs, [entry]))
            else:
                groups[i][1].append(entry)

        # Clone before the first group's observation mutates the shared state.
        machines = [cohort.machine]
        for _ in range(len(groups) - 1):
            machines.append(clone_machine(cohort.machine))
        self.divergence_splits += len(groups) - 1
        self.live_cohorts += len(groups) - 1
        if self.record_splits:
            self.split_log.append(
                (
                    (ctx.slot_cycle, ctx.slot, ctx.phase),
                    tuple(node.node_id for node in cohort.members),
                    tuple(
                        tuple(entry[0][REC_ID] for entry in group_entries)
                        for _obs, group_entries in groups
                    ),
                )
            )

        family = cohort.family
        self.family_counts[family] = self.family_counts.get(family, 1) + len(groups) - 1
        self._fragmented.add(family)
        # Split soon after a merge → oscillation; back the family's merge
        # attempts off exponentially.  A split long after the last merge is a
        # fresh divergence and resets the backoff.
        counter = self._slot_counter
        if counter - self._family_last_merge.get(family, -(1 << 30)) <= 8:
            backoff = min(64, self._family_backoff.get(family, 1) * 2)
        else:
            backoff = 1
        self._family_backoff[family] = backoff
        self._family_next_merge[family] = counter + backoff
        saved = 0
        new_cohort_of: dict[int, Cohort] = {}
        for position, ((obs, group_entries), machine) in enumerate(zip(groups, machines)):
            members = tuple(entry[0][REC_NODE] for entry in group_entries)
            if position == 0:
                target = cohort
                target.members = members
            else:
                target = Cohort(machine, members, cohort.slots, family=family)
                self.cohorts.append(target)
            machine.context = self.contexts[members[0].node_id]
            machine._frame_cache = None
            for node in members:
                node.protocol = machine
                self.cohort_of[node.node_id] = target
                new_cohort_of[node.node_id] = target
            machine.phase_observe(ctx, obs)
            saved += len(members) - 1

        for other_slot in cohort.slots:
            for entry in self.slot_entries.get(other_slot, ()):
                target = new_cohort_of.get(entry[0][REC_ID])
                if target is not None:
                    entry[1] = target
        return saved

    # -- re-convergence ---------------------------------------------------------------
    def _try_merges(self, cycle: int, slot: int, candidates: dict) -> None:
        """Re-merge sibling cohorts whose states reconverged.

        Called at the end of a slot for every *fragmented* family that
        participated (siblings share their interest set, so all of a family's
        cohorts end the same slots).  Cohorts with equal
        :meth:`~repro.core.protocol.Protocol.state_signature` are provably
        interchangeable from here on — a receiver that missed a bit and
        caught up on the retransmission rejoins its square's meta-node
        instead of being simulated separately forever.
        """
        counter = self._slot_counter
        for family, cohorts in candidates.items():
            if len(cohorts) < 2:
                continue
            if counter < self._family_next_merge.get(family, 0):
                continue
            # Unchanged signatures cannot have become equal since the last
            # attempt — only evaluate them when some sibling changed state.
            if not any(cohort.machine._cohort_state_dirty for cohort in cohorts):
                continue
            by_signature: dict = {}
            mergeable = True
            for cohort in cohorts:
                machine = cohort.machine
                machine._cohort_state_dirty = False
                signature = machine.state_signature()
                if signature is None:
                    mergeable = False
                    break
                by_signature.setdefault(signature, []).append(cohort)
            if not mergeable:
                continue
            merged = False
            for group in by_signature.values():
                if len(group) > 1:
                    self._merge(cycle, slot, family, group)
                    merged = True
            if merged:
                self._family_last_merge[family] = counter
            if self.family_counts.get(family, 1) <= 1:
                self._fragmented.discard(family)

    def _merge(self, cycle: int, slot: int, family: int, group: list) -> None:
        """Fuse state-identical sibling cohorts into the first of ``group``."""
        group.sort(key=lambda cohort: cohort.members[0].node_id)
        if self.record_splits:
            self.merge_log.append(
                ((cycle, slot), tuple(tuple(n.node_id for n in c.members) for c in group))
            )
        target = group[0]
        machine = target.machine
        members = list(target.members)
        absorbed: set[int] = set()
        dead: list[Cohort] = group[1:]
        for cohort in dead:
            for node in cohort.members:
                members.append(node)
                absorbed.add(node.node_id)
                node.protocol = machine
                self.cohort_of[node.node_id] = target
        members.sort(key=lambda node: node.node_id)
        target.members = tuple(members)
        machine.context = self.contexts[members[0].node_id]
        machine._frame_cache = None
        for other_slot in target.slots:
            for entry in self.slot_entries.get(other_slot, ()):
                if entry[0][REC_ID] in absorbed:
                    entry[1] = target
        dead_set = set(dead)
        self.cohorts = [cohort for cohort in self.cohorts if cohort not in dead_set]
        self.cohort_merges += len(dead)
        self.live_cohorts -= len(dead)
        self.family_counts[family] = self.family_counts.get(family, 1) - len(dead)
