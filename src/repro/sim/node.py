"""Simulated devices.

A :class:`SimNode` ties together a device's identity (index and position), its
role (honest protocol participant, Byzantine adversary, or crashed device) and
its behaviour (a :class:`~repro.core.protocol.Protocol` instance).  Crashed
devices simply have no behaviour: they never transmit, never observe, and are
reported as inactive in the run results.

Under the cohort runtime (:mod:`repro.sim.batch`) several nodes may point at
the *same* protocol instance — the shared state machine of their cohort — and
a node's ``protocol`` is rebound to a clone when its cohort splits.  That is
safe for every consumer here: ``delivered``/``delivered_message`` are
member-independent for shareable protocols, and ``broadcasts`` is maintained
per node by the engine, never by the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.messages import Bits
from ..core.protocol import Protocol

__all__ = ["SimNode"]


@dataclass(slots=True)
class SimNode:
    """One device participating in a simulation run.

    Attributes
    ----------
    node_id:
        Index of the device in the deployment.
    position:
        Device coordinates (tuple, so it is cheap to hand to channel models).
    protocol:
        The behaviour driving the device; ``None`` for crashed devices.
    honest:
        Whether the device is honest.  Adversarial devices also carry a
        protocol (their adversarial behaviour), but their outcomes are
        excluded from the delivery metrics.
    broadcasts:
        Number of frames the device put on the air during the run (maintained
        by the engine).
    delivery_round:
        Round count at the end of the slot in which the device delivered the
        message (exact to one slot; ``None`` until delivery).
    """

    node_id: int
    position: tuple[float, float]
    protocol: Optional[Protocol] = None
    honest: bool = True
    broadcasts: int = 0
    delivery_round: Optional[int] = None
    _delivered_cache: bool = field(default=False, repr=False)

    @property
    def active(self) -> bool:
        """Whether the device takes any steps at all (crashed devices do not)."""
        return self.protocol is not None

    @property
    def delivered(self) -> bool:
        """Whether the device has delivered the broadcast message."""
        if self._delivered_cache:
            return True
        if self.protocol is None:
            return False
        if self.protocol.delivered:
            self._delivered_cache = True
            return True
        return False

    @property
    def delivered_message(self) -> Optional[Bits]:
        if self.protocol is None:
            return None
        return self.protocol.delivered_message

    def mark_delivered(self, round_index: int) -> None:
        """Record the first round at which delivery was observed."""
        if self.delivery_round is None:
            self.delivery_round = round_index
