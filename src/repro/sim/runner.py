"""Parallel sweep execution.

Every experiment of the reproduction is a *sweep*: a grid of points, each
repeated over several seeds, where repetition ``i`` of a point derives its
deployment, fault placement and scenario seed from ``base_seed + i`` alone.
Repetitions are therefore mutually independent and can run in any order — or
in different processes — without changing a single bit of the results.

This module turns that property into throughput:

* :class:`SweepTask` describes one sweep point declaratively (a deployment
  factory, a :class:`~repro.sim.config.ScenarioConfig`, an optional fault
  factory, a repetition count and a base seed).  Tasks must be *picklable*:
  factories are module-level callables or dataclass instances (see
  :mod:`repro.experiments.factories`), never closures.
* :func:`run_repetition` executes one ``(task, repetition)`` pair.  The
  scenario is cloned with :func:`dataclasses.replace`, so every config field —
  including ones added after this module was written — survives the cloning.
* :class:`SweepExecutor` fans all ``(task, repetition)`` pairs of a sweep out
  over a :class:`concurrent.futures.ProcessPoolExecutor` and reassembles the
  results in task order.  Because each pair is fully determined by its seed,
  the output is identical to a serial run regardless of the worker count.

``SweepExecutor(workers=0)`` (the default) runs everything inline in the
current process; experiments accept an executor so callers choose the degree
of parallelism exactly once, e.g. via ``python -m repro.experiments <name>
--workers N``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from ..topology.deployment import Deployment
from .builder import run_scenario
from .config import FaultPlan, ScenarioConfig
from .results import RunResult

__all__ = [
    "DeploymentFactory",
    "FaultFactory",
    "SweepTask",
    "SweepExecutor",
    "run_repetition",
    "resolve_workers",
]

#: A deployment factory receives the repetition seed and returns a deployment.
DeploymentFactory = Callable[[int], Deployment]
#: A fault factory receives the deployment and the repetition seed.
FaultFactory = Callable[[Deployment, int], FaultPlan]


@dataclass(slots=True)
class SweepTask:
    """One sweep point: ``repetitions`` seeded, independent simulation runs.

    Attributes
    ----------
    label:
        Human-readable identifier of the point (becomes the row label).
    deployment_factory / fault_factory:
        Picklable callables deriving the deployment and the fault plan from
        the repetition seed.
    config:
        The scenario template; each repetition runs a copy with only ``seed``
        replaced (via :func:`dataclasses.replace`, so every field round-trips).
    repetitions / base_seed:
        Repetition ``i`` uses seed ``base_seed + i``.
    max_rounds:
        Optional override of the derived round cap.
    extra:
        Extra row columns the experiment wants attached to this point's
        results (carried along, not interpreted).
    """

    label: str
    deployment_factory: DeploymentFactory
    config: ScenarioConfig
    fault_factory: Optional[FaultFactory] = None
    repetitions: int = 3
    base_seed: int = 0
    max_rounds: Optional[int] = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")

    def scenario(self, seed: int) -> ScenarioConfig:
        """The scenario of the repetition with seed ``seed``.

        Uses :func:`dataclasses.replace` so that any field added to
        :class:`ScenarioConfig` in the future is carried over automatically.
        """
        return replace(self.config, seed=seed)

    def seeds(self) -> range:
        return range(self.base_seed, self.base_seed + self.repetitions)


def run_repetition(task: SweepTask, repetition: int) -> RunResult:
    """Run one repetition of a sweep task (deterministic in the derived seed)."""
    if not (0 <= repetition < task.repetitions):
        raise ValueError(f"repetition {repetition} out of range for {task.repetitions} repetitions")
    seed = task.base_seed + repetition
    deployment = task.deployment_factory(seed)
    faults = task.fault_factory(deployment, seed) if task.fault_factory is not None else FaultPlan()
    return run_scenario(deployment, task.scenario(seed), faults, max_rounds=task.max_rounds)


def _run_job(job: tuple[int, int, SweepTask]) -> tuple[int, int, RunResult]:
    """Worker entry point: one (task index, repetition) pair."""
    task_index, repetition, task = job
    return task_index, repetition, run_repetition(task, repetition)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count knob: ``None`` means one per CPU, ``0``/``1`` serial."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError("workers must be >= 0")
    return int(workers)


class SweepExecutor:
    """Execute sweep tasks, optionally fanning repetitions out over processes.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` run everything inline (no processes are spawned);
        ``N > 1`` uses a process pool of ``N`` workers; ``None`` uses one
        worker per CPU.
    chunk_size:
        How many ``(task, repetition)`` jobs each worker picks up at a time.
        ``1`` (the default) gives the best load balance; larger chunks
        amortise pickling overhead when individual runs are very short.

    The worker pool is created lazily on the first parallel :meth:`run` and
    reused across calls, so adaptive experiments that run many small sweeps
    back-to-back (e.g. the FIG7 tolerated-fraction search) pay the pool
    start-up cost once, not per sweep.  Call :meth:`close` — or use the
    executor as a context manager — to release the workers; an unclosed pool
    is torn down at interpreter exit.
    """

    def __init__(self, workers: Optional[int] = 0, *, chunk_size: int = 1) -> None:
        self.workers = resolve_workers(workers)
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size)
        self._pool: Optional[ProcessPoolExecutor] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepExecutor(workers={self.workers}, chunk_size={self.chunk_size})"

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def close(self) -> None:
        """Shut down the worker pool (if one was started)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def run(self, tasks: Sequence[SweepTask]) -> list[list[RunResult]]:
        """Run every repetition of every task; results in task/repetition order.

        The returned list has one inner list per task, with the repetition at
        seed ``base_seed + i`` at index ``i`` — exactly what a serial loop
        over :func:`run_repetition` would produce.
        """
        tasks = list(tasks)
        jobs = [
            (task_index, repetition, task)
            for task_index, task in enumerate(tasks)
            for repetition in range(task.repetitions)
        ]
        results: list[list[Optional[RunResult]]] = [[None] * task.repetitions for task in tasks]
        if not self.parallel or len(jobs) <= 1:
            for task_index, repetition, task in jobs:
                results[task_index][repetition] = run_repetition(task, repetition)
        else:
            pool = self._ensure_pool()
            for task_index, repetition, result in pool.map(
                _run_job, jobs, chunksize=self.chunk_size
            ):
                results[task_index][repetition] = result
        return results  # type: ignore[return-value]

    def run_task(self, task: SweepTask) -> list[RunResult]:
        """Run a single task's repetitions (convenience wrapper around :meth:`run`)."""
        return self.run([task])[0]
