"""Parallel sweep execution.

Every experiment of the reproduction is a *sweep*: a grid of points, each
repeated over several seeds, where repetition ``i`` of a point derives its
deployment, fault placement and scenario seed from ``base_seed + i`` alone.
Repetitions are therefore mutually independent and can run in any order — or
in different processes — without changing a single bit of the results.

This module turns that property into throughput:

* :class:`SweepTask` describes one sweep point declaratively (a deployment
  factory, a :class:`~repro.sim.config.ScenarioConfig`, an optional fault
  factory, a repetition count and a base seed).  Tasks must be *picklable*:
  factories are module-level callables or dataclass instances (see
  :mod:`repro.experiments.factories`), never closures.
* :func:`run_repetition` executes one ``(task, repetition)`` pair.  The
  scenario is cloned with :func:`dataclasses.replace`, so every config field —
  including ones added after this module was written — survives the cloning.
* :class:`SweepExecutor` fans all ``(task, repetition)`` pairs of a sweep out
  over a :class:`concurrent.futures.ProcessPoolExecutor` and reassembles the
  results in task order.  Because each pair is fully determined by its seed,
  the output is identical to a serial run regardless of the worker count.

``SweepExecutor(workers=0)`` (the default) runs everything inline in the
current process; experiments accept an executor so callers choose the degree
of parallelism exactly once, e.g. via ``python -m repro.experiments <name>
--workers N``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from ..topology.deployment import Deployment
from .builder import run_scenario
from .config import FaultPlan, ScenarioConfig
from .results import RunResult

__all__ = [
    "DeploymentFactory",
    "FaultFactory",
    "SweepTask",
    "SweepExecutor",
    "run_repetition",
    "resolve_workers",
    "fingerprint_payload",
]

#: A deployment factory receives the repetition seed and returns a deployment.
DeploymentFactory = Callable[[int], Deployment]
#: A fault factory receives the deployment and the repetition seed.
FaultFactory = Callable[[Deployment, int], FaultPlan]


def fingerprint_payload(obj) -> object:
    """Reduce ``obj`` to a canonical JSON-compatible value for fingerprinting.

    The reduction is *stable across processes and interpreter runs*: it never
    relies on ``hash()`` (randomized), ``id()`` or dict insertion order.
    Dataclasses are reduced to their qualified class name plus their fields,
    enums to their values, NumPy arrays to a digest of their raw bytes.  Plain
    module-level functions reduce to their qualified name.  Anything else —
    lambdas, bound methods, arbitrary objects — is rejected, because its
    identity cannot be captured stably; factories must be the dataclass kind
    of :mod:`repro.experiments.factories` (which also makes them picklable).
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips floats exactly; json.dumps uses the same encoding.
        return obj
    if isinstance(obj, enum.Enum):
        return fingerprint_payload(obj.value)
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest(),
            "shape": list(obj.shape),
            "dtype": str(obj.dtype),
        }
    if isinstance(obj, np.generic):
        return fingerprint_payload(obj.item())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return {
            "__type__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: fingerprint_payload(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, (list, tuple)):
        return [fingerprint_payload(v) for v in obj]
    if isinstance(obj, dict):
        return {
            str(k): fingerprint_payload(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    qualname = getattr(obj, "__qualname__", None)
    module = getattr(obj, "__module__", None)
    if callable(obj) and qualname and module and "<" not in qualname:
        return {"__callable__": f"{module}.{qualname}"}
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!s} objects stably; "
        "use dataclass factories (repro.experiments.factories) or module-level functions"
    )


@dataclass(slots=True)
class SweepTask:
    """One sweep point: ``repetitions`` seeded, independent simulation runs.

    Attributes
    ----------
    label:
        Human-readable identifier of the point (becomes the row label).
    deployment_factory / fault_factory:
        Picklable callables deriving the deployment and the fault plan from
        the repetition seed.
    config:
        The scenario template; each repetition runs a copy with only ``seed``
        replaced (via :func:`dataclasses.replace`, so every field round-trips).
    repetitions / base_seed:
        Repetition ``i`` uses seed ``base_seed + i``.
    max_rounds:
        Optional override of the derived round cap.
    extra:
        Extra row columns the experiment wants attached to this point's
        results (carried along, not interpreted).
    """

    label: str
    deployment_factory: DeploymentFactory
    config: ScenarioConfig
    fault_factory: Optional[FaultFactory] = None
    repetitions: int = 3
    base_seed: int = 0
    max_rounds: Optional[int] = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")

    def scenario(self, seed: int) -> ScenarioConfig:
        """The scenario of the repetition with seed ``seed``.

        Uses :func:`dataclasses.replace` so that any field added to
        :class:`ScenarioConfig` in the future is carried over automatically.
        """
        return replace(self.config, seed=seed)

    def seeds(self) -> range:
        return range(self.base_seed, self.base_seed + self.repetitions)

    def fingerprint(self, repetition: int) -> str:
        """Stable content hash identifying one ``(task, repetition)`` pair.

        The fingerprint covers everything that determines the bits of the
        repetition's :class:`RunResult`: the scenario config, the deployment
        and fault factories (by class and parameters, arrays by content), the
        round-cap override and the derived repetition seed.  Presentation-only
        attributes (``label``, ``extra``) and the repetition *count* are
        deliberately excluded, so re-labelling a sweep or growing its
        repetitions reuses every run already computed.  The hash is a hex
        SHA-256 over a canonical JSON encoding — identical across processes,
        platforms and interpreter restarts, which is what lets
        :class:`repro.store.ResultStore` key its on-disk cache by it.
        """
        if not (0 <= repetition < self.repetitions):
            raise ValueError(
                f"repetition {repetition} out of range for {self.repetitions} repetitions"
            )
        seed = self.base_seed + repetition
        payload = {
            "kind": "repro.sweep_repetition",
            # The *effective* scenario (template with the repetition seed
            # substituted), so two tasks differing only in template seed but
            # producing the same runs share cache entries.
            "config": fingerprint_payload(self.scenario(seed)),
            "deployment_factory": fingerprint_payload(self.deployment_factory),
            "fault_factory": fingerprint_payload(self.fault_factory),
            "max_rounds": self.max_rounds,
            "seed": seed,
        }
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf8")).hexdigest()


def run_repetition(task: SweepTask, repetition: int) -> RunResult:
    """Run one repetition of a sweep task (deterministic in the derived seed)."""
    if not (0 <= repetition < task.repetitions):
        raise ValueError(f"repetition {repetition} out of range for {task.repetitions} repetitions")
    seed = task.base_seed + repetition
    deployment = task.deployment_factory(seed)
    faults = task.fault_factory(deployment, seed) if task.fault_factory is not None else FaultPlan()
    return run_scenario(deployment, task.scenario(seed), faults, max_rounds=task.max_rounds)


def _run_chunk(chunk: Sequence[tuple[int, SweepTask, int]]) -> list[tuple[int, RunResult]]:
    """Worker entry point: a chunk of positioned (task, repetition) pairs."""
    return [(position, run_repetition(task, repetition)) for position, task, repetition in chunk]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count knob: ``None`` means one per CPU, ``0``/``1`` serial."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError("workers must be >= 0")
    return int(workers)


class SweepExecutor:
    """Execute sweep tasks, optionally fanning repetitions out over processes.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` run everything inline (no processes are spawned);
        ``N > 1`` uses a process pool of ``N`` workers; ``None`` uses one
        worker per CPU.
    chunk_size:
        How many ``(task, repetition)`` jobs each worker picks up at a time.
        ``1`` (the default) gives the best load balance; larger chunks
        amortise pickling overhead when individual runs are very short.

    The worker pool is created lazily on the first parallel :meth:`run` and
    reused across calls, so adaptive experiments that run many small sweeps
    back-to-back (e.g. the FIG7 tolerated-fraction search) pay the pool
    start-up cost once, not per sweep.  Call :meth:`close` — or use the
    executor as a context manager — to release the workers; an unclosed pool
    is torn down at interpreter exit.
    """

    def __init__(self, workers: Optional[int] = 0, *, chunk_size: int = 1) -> None:
        self.workers = resolve_workers(workers)
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size)
        self._pool: Optional[ProcessPoolExecutor] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepExecutor(workers={self.workers}, chunk_size={self.chunk_size})"

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def close(self) -> None:
        """Shut down the worker pool (if one was started)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def iter_jobs(
        self, jobs: Sequence[tuple[SweepTask, int]]
    ) -> Iterator[tuple[int, RunResult]]:
        """Run ``(task, repetition)`` jobs, yielding ``(position, result)`` pairs.

        Serial executors yield in job order; parallel executors yield in
        *completion* order (at ``chunk_size`` granularity), so a slow job
        never delays the delivery of jobs that finished after it.  That is
        what lets :class:`repro.store.CachingSweepExecutor` persist
        completions as they land: an interrupted parallel sweep keeps every
        repetition that finished, not just the prefix before the slowest job.
        Callers reassemble order from the yielded positions.
        """
        jobs = list(jobs)
        if not self.parallel or len(jobs) <= 1:
            for position, (task, repetition) in enumerate(jobs):
                yield position, run_repetition(task, repetition)
            return
        pool = self._ensure_pool()
        indexed = [(position, task, repetition) for position, (task, repetition) in enumerate(jobs)]
        chunks = [indexed[i : i + self.chunk_size] for i in range(0, len(indexed), self.chunk_size)]
        futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
        for future in as_completed(futures):
            yield from future.result()

    def run(self, tasks: Sequence[SweepTask]) -> list[list[RunResult]]:
        """Run every repetition of every task; results in task/repetition order.

        The returned list has one inner list per task, with the repetition at
        seed ``base_seed + i`` at index ``i`` — exactly what a serial loop
        over :func:`run_repetition` would produce.
        """
        tasks = list(tasks)
        slots = [
            (task_index, repetition)
            for task_index, task in enumerate(tasks)
            for repetition in range(task.repetitions)
        ]
        jobs = [(tasks[task_index], repetition) for task_index, repetition in slots]
        results: list[list[Optional[RunResult]]] = [[None] * task.repetitions for task in tasks]
        for position, result in self.iter_jobs(jobs):
            task_index, repetition = slots[position]
            results[task_index][repetition] = result
        return results  # type: ignore[return-value]

    def run_task(self, task: SweepTask) -> list[RunResult]:
        """Run a single task's repetitions (convenience wrapper around :meth:`run`)."""
        return self.run([task])[0]
