"""Parallel sweep execution.

Every experiment of the reproduction is a *sweep*: a grid of points, each
repeated over several seeds, where repetition ``i`` of a point derives its
deployment, fault placement and scenario seed from ``base_seed + i`` alone.
Repetitions are therefore mutually independent and can run in any order — or
in different processes — without changing a single bit of the results.

This module turns that property into throughput:

* :class:`SweepTask` describes one sweep point declaratively (a deployment
  factory, a :class:`~repro.sim.config.ScenarioConfig`, an optional fault
  factory, a repetition count and a base seed).  Tasks must be *picklable*:
  factories are module-level callables or dataclass instances (see
  :mod:`repro.experiments.factories`), never closures.
* :func:`run_repetition` executes one ``(task, repetition)`` pair.  The
  scenario is cloned with :func:`dataclasses.replace`, so every config field —
  including ones added after this module was written — survives the cloning.
* :class:`SweepExecutor` drives all ``(task, repetition)`` pairs of a sweep
  through a pluggable :class:`~repro.sim.backends.ExecutorBackend` (serial
  inline execution, a process pool, the fault-injecting chaos wrapper, or
  the ``queue`` backend dispatching to the worker daemons of
  :mod:`repro.service` — see :data:`repro.registry.EXECUTOR_BACKENDS`) under
  the supervision
  envelope of :mod:`repro.sim.supervision`: per-repetition wall-clock
  timeouts, bounded deterministic-backoff retry of transient failures
  (worker crashes, timeouts), and quarantine of jobs that exhaust their
  retries — reported together as a :class:`~repro.sim.supervision.SweepFailure`
  after the rest of the sweep completed, instead of the first bad job
  aborting the whole figure.  Because each pair is fully determined by its
  seed, the output is identical for every backend, worker count and retry
  history.

``SweepExecutor(workers=0)`` (the default) runs everything inline in the
current process; experiments accept an executor so callers choose the degree
of parallelism exactly once, e.g. via ``python -m repro.experiments <name>
--workers N [--backend KEY --timeout S --max-retries N]``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from ..topology.deployment import Deployment
from .builder import run_scenario
from .config import FaultPlan, ScenarioConfig
from .results import RunResult
from .supervision import (
    FabricTelemetry,
    JobFailure,
    Supervisor,
    SupervisionPolicy,
    SweepFailure,
)

__all__ = [
    "DeploymentFactory",
    "FaultFactory",
    "SweepTask",
    "SweepExecutor",
    "run_repetition",
    "resolve_workers",
    "fingerprint_payload",
]

#: A deployment factory receives the repetition seed and returns a deployment.
DeploymentFactory = Callable[[int], Deployment]
#: A fault factory receives the deployment and the repetition seed.
FaultFactory = Callable[[Deployment, int], FaultPlan]


def fingerprint_payload(obj) -> object:
    """Reduce ``obj`` to a canonical JSON-compatible value for fingerprinting.

    The reduction is *stable across processes and interpreter runs*: it never
    relies on ``hash()`` (randomized), ``id()`` or dict insertion order.
    Dataclasses are reduced to their qualified class name plus their fields,
    enums to their values, NumPy arrays to a digest of their raw bytes.  Plain
    module-level functions reduce to their qualified name.  Anything else —
    lambdas, bound methods, arbitrary objects — is rejected, because its
    identity cannot be captured stably; factories must be the dataclass kind
    of :mod:`repro.experiments.factories` (which also makes them picklable).
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips floats exactly; json.dumps uses the same encoding.
        return obj
    if isinstance(obj, enum.Enum):
        return fingerprint_payload(obj.value)
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest(),
            "shape": list(obj.shape),
            "dtype": str(obj.dtype),
        }
    if isinstance(obj, np.generic):
        return fingerprint_payload(obj.item())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return {
            "__type__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: fingerprint_payload(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, (list, tuple)):
        return [fingerprint_payload(v) for v in obj]
    if isinstance(obj, dict):
        return {
            str(k): fingerprint_payload(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    qualname = getattr(obj, "__qualname__", None)
    module = getattr(obj, "__module__", None)
    if callable(obj) and qualname and module and "<" not in qualname:
        return {"__callable__": f"{module}.{qualname}"}
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!s} objects stably; "
        "use dataclass factories (repro.experiments.factories) or module-level functions"
    )


@dataclass(slots=True)
class SweepTask:
    """One sweep point: ``repetitions`` seeded, independent simulation runs.

    Attributes
    ----------
    label:
        Human-readable identifier of the point (becomes the row label).
    deployment_factory / fault_factory:
        Picklable callables deriving the deployment and the fault plan from
        the repetition seed.
    config:
        The scenario template; each repetition runs a copy with only ``seed``
        replaced (via :func:`dataclasses.replace`, so every field round-trips).
    repetitions / base_seed:
        Repetition ``i`` uses seed ``base_seed + i``.
    max_rounds:
        Optional override of the derived round cap.
    extra:
        Extra row columns the experiment wants attached to this point's
        results (carried along, not interpreted).
    """

    label: str
    deployment_factory: DeploymentFactory
    config: ScenarioConfig
    fault_factory: Optional[FaultFactory] = None
    repetitions: int = 3
    base_seed: int = 0
    max_rounds: Optional[int] = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")

    def scenario(self, seed: int) -> ScenarioConfig:
        """The scenario of the repetition with seed ``seed``.

        Uses :func:`dataclasses.replace` so that any field added to
        :class:`ScenarioConfig` in the future is carried over automatically.
        """
        return replace(self.config, seed=seed)

    def seeds(self) -> range:
        return range(self.base_seed, self.base_seed + self.repetitions)

    def fingerprint(self, repetition: int) -> str:
        """Stable content hash identifying one ``(task, repetition)`` pair.

        The fingerprint covers everything that determines the bits of the
        repetition's :class:`RunResult`: the scenario config, the deployment
        and fault factories (by class and parameters, arrays by content), the
        round-cap override and the derived repetition seed.  Presentation-only
        attributes (``label``, ``extra``) and the repetition *count* are
        deliberately excluded, so re-labelling a sweep or growing its
        repetitions reuses every run already computed.  The hash is a hex
        SHA-256 over a canonical JSON encoding — identical across processes,
        platforms and interpreter restarts, which is what lets
        :class:`repro.store.ResultStore` key its on-disk cache by it.
        """
        if not (0 <= repetition < self.repetitions):
            raise ValueError(
                f"repetition {repetition} out of range for {self.repetitions} repetitions"
            )
        seed = self.base_seed + repetition
        payload = {
            "kind": "repro.sweep_repetition",
            # The *effective* scenario (template with the repetition seed
            # substituted), so two tasks differing only in template seed but
            # producing the same runs share cache entries.
            "config": fingerprint_payload(self.scenario(seed)),
            "deployment_factory": fingerprint_payload(self.deployment_factory),
            "fault_factory": fingerprint_payload(self.fault_factory),
            "max_rounds": self.max_rounds,
            "seed": seed,
        }
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf8")).hexdigest()


def run_repetition(task: SweepTask, repetition: int) -> RunResult:
    """Run one repetition of a sweep task (deterministic in the derived seed)."""
    if not (0 <= repetition < task.repetitions):
        raise ValueError(f"repetition {repetition} out of range for {task.repetitions} repetitions")
    seed = task.base_seed + repetition
    deployment = task.deployment_factory(seed)
    faults = task.fault_factory(deployment, seed) if task.fault_factory is not None else FaultPlan()
    return run_scenario(deployment, task.scenario(seed), faults, max_rounds=task.max_rounds)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count knob: ``None`` means one per CPU, ``0``/``1`` serial."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError("workers must be >= 0")
    return int(workers)


class SweepExecutor:
    """Execute sweep tasks through a supervised, pluggable executor backend.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` run everything inline (no processes are spawned);
        ``N > 1`` uses a process pool of ``N`` workers; ``None`` uses one
        worker per CPU.
    chunk_size:
        How many ``(task, repetition)`` jobs each worker picks up at a time.
        ``1`` (the default) gives the best load balance; larger chunks
        amortise pickling overhead when individual runs are very short.
    backend:
        An :class:`~repro.sim.backends.ExecutorBackend` instance or a
        :data:`~repro.registry.EXECUTOR_BACKENDS` key (``"serial"``,
        ``"process-pool"``, ``"chaos"``).  ``None`` auto-selects from
        ``workers``, preserving the historical behaviour.
    timeout / max_retries / policy:
        The supervision envelope: per-repetition wall-clock budget, bounded
        retry of transient failures with deterministic backoff, quarantine
        after the budget is exhausted (see :mod:`repro.sim.supervision`).
        ``policy`` supplies a full :class:`SupervisionPolicy` and wins over
        the two shorthand knobs.

    The backend (and its worker pool, if any) is created lazily on the first
    :meth:`run` and reused across calls, so adaptive experiments that run
    many small sweeps back-to-back (e.g. the FIG7 tolerated-fraction search)
    pay the pool start-up cost once, not per sweep.  Call :meth:`close` — or
    use the executor as a context manager — to release the workers; queued
    but unstarted jobs are *cancelled* at close, so a failed sweep never
    blocks on work nobody will consume.  Recovery events are counted in
    :attr:`telemetry`; jobs quarantined by the last :meth:`run` are in
    :attr:`failures`.
    """

    def __init__(
        self,
        workers: Optional[int] = 0,
        *,
        chunk_size: int = 1,
        backend=None,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        policy: Optional[SupervisionPolicy] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size)
        if policy is None:
            policy = SupervisionPolicy(
                timeout=timeout,
                max_retries=2 if max_retries is None else int(max_retries),
            )
        self.policy = policy
        self.telemetry = FabricTelemetry()
        self.failures: list[JobFailure] = []
        self._backend_spec = backend
        self._backend = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepExecutor(workers={self.workers}, chunk_size={self.chunk_size})"

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    @property
    def backend(self):
        """The resolved backend (built lazily so construction stays cheap)."""
        if self._backend is None:
            from .backends import resolve_backend

            self._backend = resolve_backend(
                self._backend_spec,
                workers=self.workers,
                chunk_size=self.chunk_size,
                telemetry=self.telemetry,
            )
        return self._backend

    @property
    def _pool(self):
        """The live process pool, if the backend keeps one (introspection aid)."""
        backend = self._backend
        while backend is not None:
            pool = getattr(backend, "_pool", None)
            if pool is not None:
                return pool
            backend = getattr(backend, "inner", None)
        return None

    def close(self, *, cancel_futures: bool = True) -> None:
        """Shut the backend down; queued-but-unstarted jobs are cancelled.

        ``cancel_futures=True`` (the default) is what keeps a failed or
        interrupted sweep from blocking on jobs that nobody will consume;
        pass ``False`` to drain the queue instead.
        """
        if self._backend is not None:
            self._backend.close(cancel_futures=cancel_futures)
            self._backend = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def notify_persisted(self, fingerprint: str, path) -> None:
        """Forward a store-append notification to the backend (chaos hook)."""
        if self._backend is not None:
            self._backend.notify_persisted(fingerprint, path)

    def iter_jobs(
        self, jobs: Sequence[tuple[SweepTask, int]]
    ) -> Iterator[tuple[int, RunResult]]:
        """Run ``(task, repetition)`` jobs, yielding ``(position, result)`` pairs.

        Serial backends yield in job order; parallel backends yield in
        *completion* order (at ``chunk_size`` granularity), so a slow job
        never delays the delivery of jobs that finished after it.  That is
        what lets :class:`repro.store.CachingSweepExecutor` persist
        completions as they land: an interrupted parallel sweep keeps every
        repetition that finished, not just the prefix before the slowest job.
        Callers reassemble order from the yielded positions.

        Jobs that exhaust their retry budget are quarantined: every other
        job still completes (and is yielded, so a caching front end persists
        it), then one :class:`~repro.sim.supervision.SweepFailure` reports
        all of them together.  The quarantine records stay in
        :attr:`failures` either way.
        """
        jobs = list(jobs)
        self.failures = []
        supervisor = Supervisor(self.backend, self.policy, self.telemetry)
        yield from supervisor.run(jobs)
        if supervisor.failures:
            self.failures = list(supervisor.failures)
            raise SweepFailure(supervisor.failures)

    def run(self, tasks: Sequence[SweepTask]) -> list[list[RunResult]]:
        """Run every repetition of every task; results in task/repetition order.

        The returned list has one inner list per task, with the repetition at
        seed ``base_seed + i`` at index ``i`` — exactly what a serial loop
        over :func:`run_repetition` would produce.
        """
        tasks = list(tasks)
        slots = [
            (task_index, repetition)
            for task_index, task in enumerate(tasks)
            for repetition in range(task.repetitions)
        ]
        jobs = [(tasks[task_index], repetition) for task_index, repetition in slots]
        results: list[list[Optional[RunResult]]] = [[None] * task.repetitions for task in tasks]
        for position, result in self.iter_jobs(jobs):
            task_index, repetition = slots[position]
            results[task_index][repetition] = result
        return results  # type: ignore[return-value]

    def run_task(self, task: SweepTask) -> list[RunResult]:
        """Run a single task's repetitions (convenience wrapper around :meth:`run`)."""
        return self.run([task])[0]
