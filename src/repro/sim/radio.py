"""Radio channel models.

Two propagation models are provided, mirroring the paper's two system models:

* :class:`UnitDiskChannel` — the analytical model: a transmission is heard by
  every device within distance ``R`` (L-infinity or L2); a listener hearing
  exactly one transmission decodes it, a listener hearing several detects a
  collision (optionally, the *capture* behaviour of the analytical model lets
  it decode one of them instead), and a listener hearing none perceives
  silence.
* :class:`FriisChannel` — the simulation model: Friis free-space path loss
  with configurable exponent, a reception threshold, SINR-based capture (the
  strongest signal is decoded when it sufficiently dominates the interference,
  reproducing WSNet's capture effect), a carrier-sense threshold below the
  reception threshold, and optional independent packet loss.

Both channels operate on batches: given the listeners and the transmitters of
one round they return one observation per listener, fully vectorised in NumPy.

Precomputed link state
----------------------
For a static deployment the pairwise quantity a channel derives from node
positions (audibility for the unit-disk model, received power for Friis) never
changes during a run.  Channels therefore expose :meth:`Channel.link_state`,
which precomputes that quantity for *all* node pairs once, and
:meth:`Channel.observe_links`, which resolves a round from that precomputed
state instead of recomputing distances.  The engine caches the state per
``(channel, positions)`` pair and hands it back every round, which removes
the per-round distance computation from the hot path entirely.
"""

from __future__ import annotations

import abc
import math
import os
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.messages import Frame
from ..core.protocol import ChannelState, Observation, SILENCE
from ..registry import ChannelPlugin, register_channel
from .linkstate import FriisLinkState, RoundView, SparseLinkState, UnitDiskLinkState

__all__ = [
    "Transmission",
    "Channel",
    "UnitDiskChannel",
    "FriisChannel",
    "SoaRoundSupport",
    "message_observation",
    "LinkStateMemoryError",
    "link_state_budget_bytes",
    "DEFAULT_LINK_STATE_MAX_BYTES",
]

#: Default byte budget for one dense link-state matrix (1 GiB).  Above it,
#: :meth:`Channel.link_state` refuses to allocate and points at the sparse
#: tier instead of letting a 10^5-node run OOM minutes into construction.
DEFAULT_LINK_STATE_MAX_BYTES = 1 << 30


def link_state_budget_bytes() -> int:
    """The dense link-state byte budget (``REPRO_LINK_STATE_MAX_BYTES``).

    Values ``<= 0`` disable the guard entirely; unset or unparsable values
    fall back to :data:`DEFAULT_LINK_STATE_MAX_BYTES`.
    """
    raw = os.environ.get("REPRO_LINK_STATE_MAX_BYTES", "").strip()
    if not raw:
        return DEFAULT_LINK_STATE_MAX_BYTES
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_LINK_STATE_MAX_BYTES


class LinkStateMemoryError(MemoryError):
    """A dense link-state matrix would exceed the configured byte budget."""

_COLLISION = Observation(ChannelState.COLLISION)

#: Interned ``Observation(MESSAGE, frame)`` objects keyed by frame.  Protocols
#: put a small alphabet of frames on the air over and over (the same veto/ack
#: frame every cycle), so decoding allocates the same observation millions of
#: times per run without this table.  Bounded by wholesale clearing: entries
#: are pure values, so dropping them is always safe.
_MESSAGE_OBSERVATIONS: dict = {}
_MESSAGE_OBSERVATIONS_MAX = 4096


def message_observation(frame: Frame) -> Observation:
    """The interned ``Observation(MESSAGE, frame)`` for a decoded frame."""
    obs = _MESSAGE_OBSERVATIONS.get(frame)
    if obs is None:
        if len(_MESSAGE_OBSERVATIONS) >= _MESSAGE_OBSERVATIONS_MAX:
            _MESSAGE_OBSERVATIONS.clear()
        obs = Observation(ChannelState.MESSAGE, frame)
        _MESSAGE_OBSERVATIONS[frame] = obs
    return obs


@dataclass(frozen=True, slots=True)
class Transmission:
    """One frame put on the air in the current round."""

    sender: int
    position: tuple[float, float]
    frame: Frame


@dataclass(frozen=True, slots=True)
class SoaRoundSupport:
    """Per-capability verdict of :meth:`Channel.soa_round_support`.

    The struct-of-arrays tier (:mod:`repro.sim.soa`) compiles whole slots
    into mask kernels; whether that is sound is not one predicate but a
    conjunction of independent capabilities, and the *reasons* matter —
    ``experiments describe`` and the run summaries surface them so a user
    can see exactly which capability forced a slower tier.

    Attributes
    ----------
    eligible:
        Overall verdict: every capability below holds, so the SoA tier may
        compile slots for this channel configuration.
    busy:
        How the kernels must compute the per-listener busy flag:
        ``"disjunction"`` (unit disk — busy iff *some* transmission is
        individually audible) or ``"power-sum"`` (Friis — busy iff the
        summed received power clears the carrier-sense threshold).
    loss_probability:
        The per-decodable-listener loss draw probability the kernels must
        replay (``0.0`` means the configuration draws nothing).  The draws
        are listener-ordered, so one batched ``rng.random(k)`` per phase
        consumes the generator exactly like the scalar loop (the PR 3
        contract).
    verdicts:
        ``(capability, ok, reason)`` triples, one per capability —
        ``channel`` (busy model), ``kernels`` (vectorized kernels knob),
        ``loss``, ``capture`` and ``trace``.  ``reason`` explains the
        verdict either way; for a failed capability it says *why* the
        configuration stays on the cohort/scalar tiers.
    """

    eligible: bool
    busy: str
    loss_probability: float
    verdicts: tuple

    def blockers(self) -> list[tuple[str, str]]:
        """The failed capabilities as ``(capability, reason)`` pairs."""
        return [(name, reason) for name, ok, reason in self.verdicts if not ok]


class Channel(abc.ABC):
    """Interface of a per-round channel model."""

    #: Whether the per-round resolvers may take their vectorized fast paths.
    #: The scalar fallbacks produce identical observations and consume the RNG
    #: identically (the equivalence test suite asserts both); flipping this to
    #: ``False`` on an instance forces the scalar reference implementation.
    use_vectorized_kernels: bool = True

    @abc.abstractmethod
    def observe(
        self,
        listener_ids: Sequence[int],
        listener_positions: np.ndarray,
        transmissions: Sequence[Transmission],
        rng: np.random.Generator,
    ) -> list[Observation]:
        """Observation perceived by every listener given this round's transmissions."""

    def link_signature(self) -> Optional[tuple]:
        """Hashable key identifying this channel's link-state semantics.

        Channels that support precomputed link state return a tuple of the
        parameters that determine :meth:`link_state` (used by the engine to
        cache states across simulations over the same deployment); channels
        without a precomputable link state return ``None``.
        """
        return None

    def link_state(self, positions: np.ndarray) -> object:
        """Precomputed pairwise link state for a static deployment.

        ``positions`` is the ``(N, 2)`` array of all node positions; the
        representation is channel-specific (audibility sets for
        :class:`UnitDiskChannel`, a received-power matrix for
        :class:`FriisChannel`) and opaque to the engine, which only passes it
        back to :meth:`observe_links`.  Only called when
        :meth:`link_signature` returned a key.

        Implementations must call :meth:`_check_dense_budget` before
        allocating: a dense matrix over the ``REPRO_LINK_STATE_MAX_BYTES``
        budget raises :class:`LinkStateMemoryError` naming the sparse/tiled
        knob instead of OOM-ing mid-run.
        """
        raise NotImplementedError

    def _check_dense_budget(self, num_nodes: int, itemsize: int) -> None:
        """Refuse dense ``N x N`` allocations above the configured byte budget."""
        budget = link_state_budget_bytes()
        if budget <= 0:
            return
        needed = num_nodes * num_nodes * itemsize
        if needed > budget:
            raise LinkStateMemoryError(
                f"dense link state for {num_nodes} nodes needs "
                f"{needed:,} bytes ({itemsize} byte(s) per node pair), over the "
                f"REPRO_LINK_STATE_MAX_BYTES budget of {budget:,}. Enable the "
                f"sparse spatially-tiled tier instead — pass "
                f"use_spatial_tiling=True to build_simulation()/Simulation, or "
                f"set REPRO_SPATIAL_TILING=1 — or raise the budget if you "
                f"really want the dense matrix."
            )

    def link_state_sparse(self, positions: np.ndarray) -> SparseLinkState:
        """Sparse (CSR + region tiling) link state for a static deployment.

        Returns a :class:`~repro.sim.linkstate.SparseLinkState` whose
        ``submatrix`` is bit-identical to slicing :meth:`link_state` but whose
        memory is ``O(N * neighborhood)``.  Channels without a sparse tier
        raise ``NotImplementedError``; the engine then falls back to the
        dense path (subject to the byte budget).
        """
        raise NotImplementedError

    def supports_sparse_rounds(self) -> bool:
        """Whether :meth:`resolve_links_sparse` can resolve this configuration.

        ``False`` routes sparse-state rounds through exact on-demand
        :meth:`~repro.sim.linkstate.SparseLinkState.submatrix` blocks and the
        dense :meth:`resolve_links` kernels instead.
        """
        return False

    def resolve_links_sparse(
        self,
        view: RoundView,
        transmissions: Sequence[Transmission],
        rng: np.random.Generator,
    ) -> list[Observation]:
        """Resolve one round from a CSR :class:`~repro.sim.linkstate.RoundView`.

        Must produce exactly the observations of :meth:`resolve_links` on the
        corresponding dense submatrix and consume the RNG identically.
        """
        raise NotImplementedError

    def observe_links(
        self,
        listener_ids: Sequence[int],
        state: object,
        transmissions: Sequence[Transmission],
        rng: np.random.Generator,
    ) -> list[Observation]:
        """Resolve one round from the precomputed link state.

        Transmitters are identified by ``Transmission.sender``; callers must
        guarantee that each transmission originates at the sender's position
        in the array :meth:`link_state` was built from (the engine does).
        Must produce exactly the same observations — and consume the RNG in
        exactly the same order — as :meth:`observe` on the same round.
        """
        raise NotImplementedError

    def resolve_links(
        self,
        submatrix: np.ndarray,
        transmissions: Sequence[Transmission],
        rng: np.random.Generator,
    ) -> list[Observation]:
        """Resolve one round from an already-extracted link-state submatrix.

        ``submatrix`` is the ``(listeners, senders)`` slice of
        :meth:`link_state` for this round's listeners and transmitters, in
        their respective orders.  The engine's slot plans cache these slices
        per ``(slot, sender-set)`` so the per-round fancy indexing of
        :meth:`observe_links` disappears from the hot path.
        """
        raise NotImplementedError

    def consumes_rng(self) -> bool:
        """Whether resolving a round may draw from the generator.

        ``False`` means a round's observations are a pure function of the
        listeners, the link state and the transmissions — which is what lets
        the engine memoize whole resolved rounds without perturbing the RNG
        stream of stochastic configurations.
        """
        return True

    def soa_round_support(self) -> SoaRoundSupport:
        """Per-capability verdict on the struct-of-arrays slot kernels.

        The SoA tier (:mod:`repro.sim.soa`) compiles whole slots into mask
        kernels that bypass per-round resolution.  This method decomposes
        eligibility into independent capabilities — the busy model
        (disjunction vs power sum), the vectorized-kernel knob, loss draws,
        capture draws and tracing — each with a human-readable reason, so
        the eligibility surfaces (``experiments describe``, run summaries)
        can say *which* predicate failed rather than just "ineligible".
        Channels without an SoA round model return the ineligible default.
        """
        return SoaRoundSupport(
            eligible=False,
            busy="none",
            loss_probability=0.0,
            verdicts=(
                (
                    "channel",
                    False,
                    f"{type(self).__name__} defines no SoA busy model → cohort/scalar",
                ),
            ),
        )

    def supports_soa_rounds(self) -> bool:
        """Aggregate verdict of :meth:`soa_round_support` (the engine's gate)."""
        return self.soa_round_support().eligible

    def hears(self, listener_position: Sequence[float], transmitter_position: Sequence[float]) -> bool:
        """Whether a single transmission at ``transmitter_position`` is audible.

        Used by the engine to bound which devices could possibly be affected
        by a transmission; channel subclasses with soft thresholds should be
        conservative (return ``True`` whenever reception is possible).
        """
        raise NotImplementedError


class UnitDiskChannel(Channel):
    """Idealised range-based channel used for the analytical model.

    Parameters
    ----------
    radius:
        Communication (and interference) radius.
    norm:
        ``"linf"`` for the analytical grid model, ``"l2"`` for geometric
        deployments.
    capture_probability:
        When two or more transmissions reach a listener, probability that the
        listener nevertheless receives one of them (chosen uniformly at
        random), reproducing the model sentence "v may receive either of the
        two messages, or no message at all".  The default of ``0`` makes
        collisions deterministic, which is what the correctness proofs assume
        (they only rely on *activity* being detected).
    loss_probability:
        Independent probability that an otherwise decodable frame is lost; the
        energy is still sensed, so the listener perceives a collision rather
        than silence (losses cannot forge silence).
    """

    def __init__(
        self,
        radius: float,
        norm: str = "l2",
        *,
        capture_probability: float = 0.0,
        loss_probability: float = 0.0,
    ) -> None:
        if radius <= 0:
            raise ValueError("radius must be positive")
        if not (0.0 <= capture_probability <= 1.0):
            raise ValueError("capture_probability must be in [0, 1]")
        if not (0.0 <= loss_probability <= 1.0):
            raise ValueError("loss_probability must be in [0, 1]")
        if norm not in ("linf", "l2"):
            raise ValueError("norm must be 'linf' or 'l2'")
        self.radius = float(radius)
        self.norm = norm
        self.capture_probability = float(capture_probability)
        self.loss_probability = float(loss_probability)

    def _distances(self, listeners: np.ndarray, transmitters: np.ndarray) -> np.ndarray:
        diff = listeners[:, None, :] - transmitters[None, :, :]
        if self.norm == "linf":
            return np.max(np.abs(diff), axis=-1)
        return np.sqrt(np.sum(diff**2, axis=-1))

    def hears(self, listener_position: Sequence[float], transmitter_position: Sequence[float]) -> bool:
        lx, ly = float(listener_position[0]), float(listener_position[1])
        tx, ty = float(transmitter_position[0]), float(transmitter_position[1])
        if self.norm == "linf":
            d = max(abs(lx - tx), abs(ly - ty))
        else:
            d = math.hypot(lx - tx, ly - ty)
        return d <= self.radius + 1e-12

    def link_signature(self) -> Optional[tuple]:
        return ("unitdisk", self.radius, self.norm)

    def link_state(self, positions: np.ndarray) -> np.ndarray:
        """Boolean audibility mask between every pair of nodes.

        Rows are computed in blocks so the transient distance matrix stays
        small for large maps; the stored mask is one byte per pair.
        """
        pos = np.asarray(positions, dtype=float)
        num_nodes = pos.shape[0]
        self._check_dense_budget(num_nodes, 1)
        audible = np.empty((num_nodes, num_nodes), dtype=bool)
        block = 512
        for start in range(0, num_nodes, block):
            audible[start : start + block] = (
                self._distances(pos[start : start + block], pos) <= self.radius + 1e-12
            )
        return audible

    def link_state_sparse(self, positions: np.ndarray) -> UnitDiskLinkState:
        """CSR audibility built per tile; bit-identical to :meth:`link_state`.

        Unit-disk audibility beyond the radius is exactly ``False``, so the
        CSR stores the complete physics — no truncation is involved.
        """
        return UnitDiskLinkState(np.asarray(positions, dtype=float), self.radius, self.norm)

    def supports_sparse_rounds(self) -> bool:
        """CSR round views cover the deterministic and loss-only kernels.

        Capture configurations need each listener's full audible column set
        (their RNG draws are data-dependent), so they fall back to exact
        on-demand submatrices through the scalar reference loop — same
        dispatch rule as the dense vectorized kernel.
        """
        return self.use_vectorized_kernels and self.capture_probability == 0.0

    def soa_round_support(self) -> SoaRoundSupport:
        """Unit-disk rounds lower to disjunction kernels; capture stays scalar.

        Audibility beyond the radius is exactly ``False`` and a listener is
        busy iff *some* transmission is within range, so busy is the
        disjunction the SoA kernels compute.  Loss compiles: a loss draw can
        only turn a decodable frame into a collision (never into silence),
        so it cannot move any busy bit, and the scalar loop draws exactly
        once per sole-audible listener in listener order — a count the
        kernels replay with one batched ``rng.random(k)`` per phase.
        Capture does *not* compile: a captured collision interleaves a
        uniform draw, an integer choice over the audible set and possibly a
        loss draw per listener, so the draw sequence depends on per-listener
        data and cannot be reproduced from packed masks.
        """
        capture_ok = self.capture_probability == 0.0
        loss = self.loss_probability
        verdicts = (
            ("channel", True, "unit-disk busy is a per-listener audibility disjunction"),
            (
                "kernels",
                self.use_vectorized_kernels,
                "vectorized kernels on"
                if self.use_vectorized_kernels
                else "use_vectorized_kernels=False pins the scalar reference loop",
            ),
            (
                "loss",
                True,
                f"loss_probability={loss:g} → one batched listener-ordered draw per phase"
                if loss > 0.0
                else "no loss draws",
            ),
            (
                "capture",
                capture_ok,
                "no capture draws"
                if capture_ok
                else f"capture_probability={self.capture_probability:g} draws are "
                "data-dependent (uniform + integer choice per collision) → scalar",
            ),
            ("trace", True, "event stream synthesized from the packed masks"),
        )
        return SoaRoundSupport(
            eligible=all(ok for _, ok, _ in verdicts),
            busy="disjunction",
            loss_probability=loss,
            verdicts=verdicts,
        )

    def resolve_links_sparse(
        self,
        view: RoundView,
        transmissions: Sequence[Transmission],
        rng: np.random.Generator,
    ) -> list[Observation]:
        """CSR fast path of :meth:`resolve_links` (dense kernel is the oracle).

        Mirrors the vectorized branch of :meth:`_resolve_audible` statement
        for statement: SILENCE for zero audible transmissions, one batched
        loss draw per single-transmission listener in listener order, and the
        summed column index of a single hit *is* its ``argmax``.
        """
        counts = view.counts
        num_listeners = counts.shape[0]
        out = np.empty(num_listeners, dtype=object)
        out[:] = _COLLISION
        out[counts == 0] = SILENCE
        singles = np.flatnonzero(counts == 1)
        if singles.size and self.loss_probability > 0.0:
            draws = rng.random(singles.size)
            singles = singles[draws >= self.loss_probability]
        if singles.size:
            tx_index = view.tx_sum[singles]
            for tx in np.unique(tx_index):
                obs = message_observation(transmissions[int(tx)].frame)
                out[singles[tx_index == tx]] = obs
        return list(out)

    def consumes_rng(self) -> bool:
        return self.capture_probability > 0.0 or self.loss_probability > 0.0

    def _resolve_audible(
        self,
        audible: np.ndarray,
        transmissions: Sequence[Transmission],
        rng: np.random.Generator,
    ) -> list[Observation]:
        """Observations from a (listener, transmission) audibility mask.

        Shared by :meth:`observe`, :meth:`observe_links` and
        :meth:`resolve_links` so all consume the RNG identically.  Dispatches
        to a vectorized kernel whenever the configuration's RNG draw sequence
        is listener-ordered (and therefore batchable): the deterministic
        default consumes no RNG at all, and the loss-only configuration draws
        exactly once per single-transmission listener, in listener order.
        Capture configurations interleave data-dependent draws and fall back
        to the scalar reference loop.
        """
        if not self.use_vectorized_kernels:
            return self._resolve_audible_scalar(audible, transmissions, rng)
        if self.capture_probability == 0.0:
            counts = audible.sum(axis=1)
            num_listeners = audible.shape[0]
            out = np.empty(num_listeners, dtype=object)
            out[:] = _COLLISION
            out[counts == 0] = SILENCE
            singles = np.flatnonzero(counts == 1)
            if singles.size:
                if self.loss_probability > 0.0:
                    # One draw per single-transmission listener, in listener
                    # order — the batch consumes the generator exactly like
                    # the scalar loop's sequential rng.random() calls.
                    draws = rng.random(singles.size)
                    singles = singles[draws >= self.loss_probability]
            if singles.size:
                tx_index = np.argmax(audible[singles], axis=1)
                for tx in np.unique(tx_index):
                    obs = message_observation(transmissions[int(tx)].frame)
                    out[singles[tx_index == tx]] = obs
            return list(out)
        return self._resolve_audible_scalar(audible, transmissions, rng)

    def _resolve_audible_scalar(
        self,
        audible: np.ndarray,
        transmissions: Sequence[Transmission],
        rng: np.random.Generator,
    ) -> list[Observation]:
        """Reference per-listener loop (all configurations).

        Kept both as the fallback for capture configurations (whose RNG draws
        are data-dependent and cannot be batched) and as the oracle the
        kernel-equivalence tests compare the vectorized paths against.
        """
        num_listeners = audible.shape[0]
        counts = audible.sum(axis=1)
        observations: list[Observation] = []
        for li in range(num_listeners):
            count = int(counts[li])
            if count == 0:
                observations.append(SILENCE)
                continue
            if count == 1:
                tx_index = int(np.nonzero(audible[li])[0][0])
                if self.loss_probability > 0.0 and rng.random() < self.loss_probability:
                    observations.append(_COLLISION)
                else:
                    observations.append(message_observation(transmissions[tx_index].frame))
                continue
            # Two or more audible transmissions: collision, possibly captured.
            if self.capture_probability > 0.0 and rng.random() < self.capture_probability:
                choices = np.nonzero(audible[li])[0]
                tx_index = int(choices[rng.integers(0, len(choices))])
                if self.loss_probability > 0.0 and rng.random() < self.loss_probability:
                    observations.append(_COLLISION)
                else:
                    observations.append(message_observation(transmissions[tx_index].frame))
            else:
                observations.append(_COLLISION)
        return observations

    def observe(
        self,
        listener_ids: Sequence[int],
        listener_positions: np.ndarray,
        transmissions: Sequence[Transmission],
        rng: np.random.Generator,
    ) -> list[Observation]:
        num_listeners = len(listener_ids)
        if num_listeners == 0:
            return []
        if not transmissions:
            return [SILENCE] * num_listeners

        tx_pos = np.asarray([t.position for t in transmissions], dtype=float)
        listeners = np.asarray(listener_positions, dtype=float).reshape(num_listeners, 2)
        dist = self._distances(listeners, tx_pos)
        audible = dist <= self.radius + 1e-12
        return self._resolve_audible(audible, transmissions, rng)

    def observe_links(
        self,
        listener_ids: Sequence[int],
        state: object,
        transmissions: Sequence[Transmission],
        rng: np.random.Generator,
    ) -> list[Observation]:
        if not listener_ids:
            return []
        if not transmissions:
            return [SILENCE] * len(listener_ids)
        all_audible: np.ndarray = state  # type: ignore[assignment]
        senders = [t.sender for t in transmissions]
        audible = all_audible[np.ix_(listener_ids, senders)]
        return self._resolve_audible(audible, transmissions, rng)

    def resolve_links(
        self,
        submatrix: np.ndarray,
        transmissions: Sequence[Transmission],
        rng: np.random.Generator,
    ) -> list[Observation]:
        return self._resolve_audible(submatrix, transmissions, rng)


class FriisChannel(Channel):
    """Friis free-space propagation with SINR capture and carrier sensing.

    The received power of a transmission over distance ``d`` is
    ``P_rx = P_tx * (reference_distance / max(d, reference_distance)) ** path_loss_exponent``.
    A listener decodes the strongest audible frame when (a) its power exceeds
    ``reception_threshold`` and (b) its SINR — power divided by the sum of all
    other received powers plus the noise floor — exceeds ``capture_threshold``.
    Whenever the *total* received power exceeds ``sense_threshold`` the channel
    is perceived as busy, which is how the carrier-sensing MAC of the paper
    reports jamming and collisions.

    The defaults are normalised so that ``reception_range`` (the distance at
    which a lone transmission is decodable) plays the role of the paper's
    broadcast range ``R``, and the carrier-sense range is ``sense_range_factor``
    times larger, as is typical of real radios.
    """

    def __init__(
        self,
        reception_range: float,
        *,
        path_loss_exponent: float = 2.0,
        sense_range_factor: float = 1.5,
        capture_threshold_db: float = 6.0,
        noise_floor: float = 1e-9,
        loss_probability: float = 0.0,
        tx_power: float = 1.0,
        reference_distance: float = 1.0,
    ) -> None:
        if reception_range <= 0:
            raise ValueError("reception_range must be positive")
        if path_loss_exponent <= 0:
            raise ValueError("path_loss_exponent must be positive")
        if sense_range_factor < 1.0:
            raise ValueError("sense_range_factor must be >= 1")
        if not (0.0 <= loss_probability <= 1.0):
            raise ValueError("loss_probability must be in [0, 1]")
        self.reception_range = float(reception_range)
        self.path_loss_exponent = float(path_loss_exponent)
        self.sense_range_factor = float(sense_range_factor)
        self.capture_threshold = 10.0 ** (capture_threshold_db / 10.0)
        self.noise_floor = float(noise_floor)
        self.loss_probability = float(loss_probability)
        self.tx_power = float(tx_power)
        self.reference_distance = float(reference_distance)
        # Reception threshold: power received from exactly reception_range away.
        self.reception_threshold = self._power_at(self.reception_range)
        self.sense_threshold = self._power_at(self.reception_range * self.sense_range_factor)

    def _power_at(self, distance: float) -> float:
        d = max(float(distance), self.reference_distance)
        return self.tx_power * (self.reference_distance / d) ** self.path_loss_exponent

    @property
    def sense_range(self) -> float:
        """Distance out to which a lone transmission is sensed (but maybe not decoded)."""
        return self.reception_range * self.sense_range_factor

    def hears(self, listener_position: Sequence[float], transmitter_position: Sequence[float]) -> bool:
        lx, ly = float(listener_position[0]), float(listener_position[1])
        tx, ty = float(transmitter_position[0]), float(transmitter_position[1])
        return math.hypot(lx - tx, ly - ty) <= self.sense_range + 1e-12

    def link_signature(self) -> Optional[tuple]:
        return (
            "friis",
            self.path_loss_exponent,
            self.tx_power,
            self.reference_distance,
        )

    def link_state(self, positions: np.ndarray) -> np.ndarray:
        """Received power between every pair of nodes (row: listener, column: sender)."""
        pos = np.asarray(positions, dtype=float)
        num_nodes = pos.shape[0]
        self._check_dense_budget(num_nodes, 8)
        powers = np.empty((num_nodes, num_nodes), dtype=float)
        block = 512
        for start in range(0, num_nodes, block):
            diff = pos[start : start + block, None, :] - pos[None, :, :]
            dist = np.sqrt(np.sum(diff**2, axis=-1))
            dist = np.maximum(dist, self.reference_distance)
            powers[start : start + block] = (
                self.tx_power * (self.reference_distance / dist) ** self.path_loss_exponent
            )
        return powers

    def link_state_sparse(self, positions: np.ndarray) -> FriisLinkState:
        """Sparse Friis state: positions + sense-range CSR, no power matrix.

        Rounds resolve through exact on-demand submatrices (every sender's
        power still reaches every listener's interference sum), so the sparse
        tier changes memory, never physics — see
        :class:`~repro.sim.linkstate.FriisLinkState`.
        """
        return FriisLinkState(
            np.asarray(positions, dtype=float),
            sense_range=self.sense_range,
            tx_power=self.tx_power,
            reference_distance=self.reference_distance,
            path_loss_exponent=self.path_loss_exponent,
        )

    def observe(
        self,
        listener_ids: Sequence[int],
        listener_positions: np.ndarray,
        transmissions: Sequence[Transmission],
        rng: np.random.Generator,
    ) -> list[Observation]:
        num_listeners = len(listener_ids)
        if num_listeners == 0:
            return []
        if not transmissions:
            return [SILENCE] * num_listeners

        tx_pos = np.asarray([t.position for t in transmissions], dtype=float)
        listeners = np.asarray(listener_positions, dtype=float).reshape(num_listeners, 2)
        diff = listeners[:, None, :] - tx_pos[None, :, :]
        dist = np.sqrt(np.sum(diff**2, axis=-1))
        dist = np.maximum(dist, self.reference_distance)
        powers = self.tx_power * (self.reference_distance / dist) ** self.path_loss_exponent
        return self._resolve_powers(powers, transmissions, rng)

    def observe_links(
        self,
        listener_ids: Sequence[int],
        state: object,
        transmissions: Sequence[Transmission],
        rng: np.random.Generator,
    ) -> list[Observation]:
        if not listener_ids:
            return []
        if not transmissions:
            return [SILENCE] * len(listener_ids)
        all_powers: np.ndarray = state  # type: ignore[assignment]
        senders = [t.sender for t in transmissions]
        powers = all_powers[np.ix_(listener_ids, senders)]
        return self._resolve_powers(powers, transmissions, rng)

    def resolve_links(
        self,
        submatrix: np.ndarray,
        transmissions: Sequence[Transmission],
        rng: np.random.Generator,
    ) -> list[Observation]:
        return self._resolve_powers(submatrix, transmissions, rng)

    def consumes_rng(self) -> bool:
        return self.loss_probability > 0.0

    def soa_round_support(self) -> SoaRoundSupport:
        """Friis rounds lower to power-sum kernels; every capability compiles.

        Busy is the carrier-sense test ``sum(received powers) >=
        sense_threshold`` — not a disjunction, so the SoA tier precomputes
        each compiled group's exact pairwise power block and resolves each
        distinct transmitter mask as cached vector algebra (one column-sum
        with the same float order as :meth:`_resolve_powers`, hence
        bit-identical thresholds).  SINR capture is deterministic (an argmax
        and two comparisons — no draws), and the loss draw is one per
        decodable listener in listener order, so both compile; the kernels
        replay the draw count with one batched ``rng.random(k)`` per phase.
        """
        loss = self.loss_probability
        verdicts = (
            (
                "channel",
                True,
                "friis busy is a power sum → per-group power blocks precompiled",
            ),
            (
                "kernels",
                self.use_vectorized_kernels,
                "vectorized kernels on"
                if self.use_vectorized_kernels
                else "use_vectorized_kernels=False pins the scalar reference loop",
            ),
            (
                "loss",
                True,
                f"loss_probability={loss:g} → one batched listener-ordered draw per phase"
                if loss > 0.0
                else "no loss draws",
            ),
            ("capture", True, "SINR capture is deterministic (argmax, no draws)"),
            ("trace", True, "event stream synthesized from the packed masks"),
        )
        return SoaRoundSupport(
            eligible=all(ok for _, ok, _ in verdicts),
            busy="power-sum",
            loss_probability=loss,
            verdicts=verdicts,
        )

    def _resolve_powers(
        self,
        powers: np.ndarray,
        transmissions: Sequence[Transmission],
        rng: np.random.Generator,
    ) -> list[Observation]:
        """Observations from a (listener, transmission) received-power matrix.

        The vectorized kernel is branch-free over listeners: a sense mask, a
        row argmax, and an SINR test, with the loss draws (when configured)
        batched in listener order — the scalar loop draws exactly once per
        decodable listener, in listener order, so one batched ``rng.random``
        call consumes the generator identically.  The deterministic default
        (``loss_probability == 0``) draws nothing in either implementation.
        Every arithmetic step mirrors the scalar loop's expressions operation
        for operation, so the results are bit-identical, not just close.
        """
        if not self.use_vectorized_kernels:
            return self._resolve_powers_scalar(powers, transmissions, rng)
        num_listeners = powers.shape[0]
        total = powers.sum(axis=1)
        sensed = total >= self.sense_threshold
        strongest = powers.argmax(axis=1)
        signal = powers[np.arange(num_listeners), strongest]
        interference = total - signal + self.noise_floor
        decodable = (
            sensed
            & (signal >= self.reception_threshold)
            & (signal >= self.capture_threshold * interference)
        )
        out = np.empty(num_listeners, dtype=object)
        out[:] = _COLLISION
        out[~sensed] = SILENCE
        decode_rows = np.flatnonzero(decodable)
        if decode_rows.size and self.loss_probability > 0.0:
            draws = rng.random(decode_rows.size)
            decode_rows = decode_rows[draws >= self.loss_probability]
        if decode_rows.size:
            tx_for_row = strongest[decode_rows]
            for tx in np.unique(tx_for_row):
                obs = message_observation(transmissions[int(tx)].frame)
                out[decode_rows[tx_for_row == tx]] = obs
        return list(out)

    def _resolve_powers_scalar(
        self,
        powers: np.ndarray,
        transmissions: Sequence[Transmission],
        rng: np.random.Generator,
    ) -> list[Observation]:
        """Reference per-listener loop (the pre-vectorization implementation).

        Kept as the oracle for the kernel-equivalence tests; not used on the
        hot path unless :attr:`use_vectorized_kernels` is flipped off.
        """
        num_listeners = powers.shape[0]
        total = powers.sum(axis=1)

        observations: list[Observation] = []
        for li in range(num_listeners):
            row = powers[li]
            total_power = float(total[li])
            if total_power < self.sense_threshold:
                observations.append(SILENCE)
                continue
            strongest = int(np.argmax(row))
            signal = float(row[strongest])
            interference = total_power - signal + self.noise_floor
            decodable = signal >= self.reception_threshold and signal >= self.capture_threshold * interference
            if decodable and (self.loss_probability == 0.0 or rng.random() >= self.loss_probability):
                observations.append(message_observation(transmissions[strongest].frame))
            else:
                observations.append(_COLLISION)
        return observations


# -- registry plugins ---------------------------------------------------------------------
@register_channel("unitdisk")
class UnitDiskChannelPlugin(ChannelPlugin):
    """Builds the deterministic/capture/loss unit-disk channel from a scenario."""

    def build(self, config) -> UnitDiskChannel:
        return UnitDiskChannel(
            config.radius,
            norm=config.norm,
            capture_probability=config.capture_probability,
            loss_probability=config.loss_probability,
        )


@register_channel("friis")
class FriisChannelPlugin(ChannelPlugin):
    """Builds the Friis/SINR channel from a scenario."""

    def build(self, config) -> FriisChannel:
        return FriisChannel(config.radius, loss_probability=config.loss_probability)
