# Convenience entry points; every target assumes the repo root as cwd.
PYTHON ?= python
PR ?= 4
export PYTHONPATH := src

.PHONY: test bench bench-baseline bench-smoke profile

# Tier-1 verification (unit/property tests only; benchmarks excluded).
test:
	$(PYTHON) -m pytest -x -q tests

# Capture a post-change benchmark run into BENCH_$(PR).json (merges with the
# stored baseline and computes speedups; fails on series-hash drift).
bench:
	$(PYTHON) benchmarks/capture.py --pr $(PR) --label current

# Capture the pre-change baseline (run this before starting a perf change).
# For runtime-perf PRs the baseline is the scalar per-device oracle
# (BENCH_RUNTIME=scalar by default here); 'make bench' records the default
# (cohort) runtime and fails if any series hash moved between the two.
BENCH_RUNTIME ?= scalar
bench-baseline:
	$(PYTHON) benchmarks/capture.py --pr $(PR) --label baseline --runtime $(BENCH_RUNTIME)

# CI smoke: verify BENCH_$(PR).json exists and its suite hashes reproduce.
bench-smoke:
	$(PYTHON) benchmarks/capture.py --check BENCH_$(PR).json

# Profile one experiment's sweep (top cumulative hot spots to stderr).
profile:
	$(PYTHON) -m repro.experiments run FIG7 --scale small --profile
