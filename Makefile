# Convenience entry points; every target assumes the repo root as cwd.
PYTHON ?= python
PR ?= 6
export PYTHONPATH := src

.PHONY: test bench bench-baseline bench-smoke profile

# Tier-1 verification (unit/property tests only; benchmarks excluded).
test:
	$(PYTHON) -m pytest -x -q tests

# Capture a post-change benchmark run into BENCH_$(PR).json (merges with the
# stored baseline and computes speedups; fails on series-hash drift).
# PR 6's varied knob is the link-state tier: the baseline is the dense matrix
# path (--tiling off), the current run the sparse spatially-tiled CSR tier
# (--tiling on, which also unlocks the requires_tiling 10^5-node macro).  Set
# BENCH_RUNTIME=scalar/cohort to additionally pin the protocol runtime (the
# PR 4 knob); unset, the environment default (cohort) applies to both labels.
BENCH_RUNTIME ?=
RUNTIME_FLAG = $(if $(BENCH_RUNTIME),--runtime $(BENCH_RUNTIME),)
BENCH_TILING_BASELINE ?= off
BENCH_TILING_CURRENT ?= on
bench:
	$(PYTHON) benchmarks/capture.py --pr $(PR) --label current $(RUNTIME_FLAG) --tiling $(BENCH_TILING_CURRENT)

# Capture the pre-change baseline (run this before starting a perf change).
bench-baseline:
	$(PYTHON) benchmarks/capture.py --pr $(PR) --label baseline $(RUNTIME_FLAG) --tiling $(BENCH_TILING_BASELINE)

# CI smoke: verify BENCH_$(PR).json exists and its suite hashes reproduce,
# then check a medium-scale export is byte-identical tiled vs untiled.
bench-smoke:
	$(PYTHON) benchmarks/capture.py --check BENCH_$(PR).json
	REPRO_SPATIAL_TILING=0 $(PYTHON) -m repro.experiments run FIG7 --scale small --export json > /tmp/untiled.json
	REPRO_SPATIAL_TILING=1 $(PYTHON) -m repro.experiments run FIG7 --scale small --export json > /tmp/tiled.json
	cmp /tmp/untiled.json /tmp/tiled.json
	rm -f /tmp/untiled.json /tmp/tiled.json

# Profile one experiment's sweep (top cumulative hot spots to stderr).
profile:
	$(PYTHON) -m repro.experiments run FIG7 --scale small --profile
