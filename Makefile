# Convenience entry points; every target assumes the repo root as cwd.
PYTHON ?= python
PR ?= 10
export PYTHONPATH := src

.PHONY: test bench bench-baseline bench-smoke chaos-smoke service-smoke profile

# Tier-1 verification (unit/property tests only; benchmarks excluded).
test:
	$(PYTHON) -m pytest -x -q tests

# Capture a post-change benchmark run into BENCH_$(PR).json (merges with the
# stored baseline and computes speedups; fails on series-hash drift), then
# report the cross-PR trend over every BENCH_*.json (fails on a >25%
# regression of any entry vs its best recorded run — ROADMAP item 5's
# regression guard).
# PR 7/9's varied knob is the protocol execution runtime: the baseline is
# the cohort tier with the struct-of-arrays kernels pinned off, the current
# run the SoA slot kernels (--runtime soa; since PR 9 they also cover loss,
# Friis power-sum and traced configurations).  Both labels use --tiling on,
# which resolves to the auto threshold for the suite (small deployments
# stay dense — forcing CSR onto them was the DUAL/MAPSZ regression in
# BENCH_6) and forces the sparse CSR tier for the paper-scale macros, so
# the requires_tiling 10^5-node macros run under both labels.
BENCH_RUNTIME_BASELINE ?= cohort
BENCH_RUNTIME_CURRENT ?= soa
BENCH_TILING ?= on
bench:
	$(PYTHON) benchmarks/capture.py --pr $(PR) --label current --runtime $(BENCH_RUNTIME_CURRENT) --tiling $(BENCH_TILING)
	$(PYTHON) benchmarks/trend.py

# Capture the pre-change baseline (run this before starting a perf change).
bench-baseline:
	$(PYTHON) benchmarks/capture.py --pr $(PR) --label baseline --runtime $(BENCH_RUNTIME_BASELINE) --tiling $(BENCH_TILING)

# CI smoke: verify BENCH_$(PR).json exists and its suite hashes reproduce,
# then check exports are byte-identical SoA-on vs SoA-off — FIG5 for the
# unit-disk disjunction kernels, the Friis smoke spec for the PR 9
# power-sum (+ loss) kernels.
bench-smoke:
	$(PYTHON) benchmarks/capture.py --check BENCH_$(PR).json
	REPRO_SOA_KERNELS=1 $(PYTHON) -m repro.experiments run FIG5 --scale small --export json > /tmp/soa.json
	REPRO_SOA_KERNELS=0 $(PYTHON) -m repro.experiments run FIG5 --scale small --export json > /tmp/nosoa.json
	cmp /tmp/soa.json /tmp/nosoa.json
	REPRO_SOA_KERNELS=1 $(PYTHON) -m repro.experiments run --spec examples/specs/friis_smoke.toml --export json > /tmp/friis-soa.json
	REPRO_SOA_KERNELS=0 $(PYTHON) -m repro.experiments run --spec examples/specs/friis_smoke.toml --export json > /tmp/friis-nosoa.json
	cmp /tmp/friis-soa.json /tmp/friis-nosoa.json
	rm -f /tmp/soa.json /tmp/nosoa.json /tmp/friis-soa.json /tmp/friis-nosoa.json

# CI smoke for the fault-tolerant fabric: the focused chaos/integrity test
# files, then a seeded chaos-backend run that must export byte-identical
# rows to a plain run (every injected fault recovered).  No --timeout here:
# seeded plans may draw "delay" faults, and with a budget in force those are
# deliberately stretched past it (the injected sleep would dominate the
# smoke's wall-clock); the timeout path is covered by the pytest files.
chaos-smoke:
	$(PYTHON) -m pytest -x -q tests/test_backends.py tests/test_store_integrity.py
	$(PYTHON) -m repro.experiments run DUAL --scale small --export json > /tmp/chaos-plain.json
	REPRO_CHAOS_SEED=7 REPRO_CHAOS_RATE=0.7 $(PYTHON) -m repro.experiments run DUAL --scale small --backend chaos --max-retries 3 --export json > /tmp/chaos-faulty.json
	cmp /tmp/chaos-plain.json /tmp/chaos-faulty.json
	rm -f /tmp/chaos-plain.json /tmp/chaos-faulty.json

# CI smoke for the distributed sweep service: the focused queue/store test
# files, then the end-to-end drill — submit a small sweep, run two worker
# processes, SIGKILL one mid-job (its lease expires and the job requeues),
# and byte-diff both the replayed export and the shared store against a
# plain serial run.
service-smoke:
	$(PYTHON) -m pytest -x -q tests/test_service.py tests/test_store_concurrency.py
	$(PYTHON) -m repro.service smoke FIG5 --scale small

# Profile one experiment's sweep (top cumulative hot spots to stderr).
profile:
	$(PYTHON) -m repro.experiments run FIG7 --scale small --profile
