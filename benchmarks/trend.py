"""Cross-PR performance trend report over the ``BENCH_<pr>.json`` captures.

Each perf PR freezes its before/after into ``BENCH_<pr>.json`` (see
``capture.py``), which answers "did *this* PR speed things up" but not "has
any entry quietly rotted since its best recorded run".  This script reads
every capture in the repository root and reports, per suite/macro entry,

* the **timing trajectory** — the ``current``-label wall clock of the entry
  across PRs, oldest to newest;
* the **speedup trajectory** — each PR's recorded baseline/current speedup
  for the entry; and
* a **regression verdict** — the newest recorded timing compared against the
  best (fastest) timing any capture recorded for that entry.

The process exits non-zero when any entry's newest timing regresses more
than ``--threshold`` (default 25%) over its best recorded run, so
``make bench`` fails loudly instead of letting slowdowns accumulate one
"within noise" PR at a time.  Machine-to-machine variance is real; the
threshold is deliberately generous, entries recorded by only one PR cannot
regress by construction, and entries must also exceed ``--noise-floor``
(default 50ms) of *absolute* slowdown — a 35ms entry that drifts to 46ms is
timer jitter, not a regression, even though the ratio clears 25%.

Usage::

    python benchmarks/trend.py                 # scan BENCH_*.json next to the repo root
    python benchmarks/trend.py --threshold 0.4
    python benchmarks/trend.py BENCH_7.json BENCH_9.json
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_captures(paths: list[Path]) -> list[tuple[int, dict]]:
    """Parse the given capture files, sorted by PR number."""
    captures = []
    for path in paths:
        match = re.search(r"BENCH_(\d+)\.json$", path.name)
        if not match:
            continue
        with open(path, encoding="utf-8") as fh:
            captures.append((int(match.group(1)), json.load(fh)))
    captures.sort()
    return captures


def entry_timings(capture: dict) -> dict[str, float]:
    """``section/name -> current-label elapsed seconds`` for one capture."""
    run = capture.get("runs", {}).get("current")
    if run is None:
        return {}
    out = {}
    for section in ("suite", "macros"):
        for name, entry in (run.get(section) or {}).items():
            elapsed = entry.get("elapsed_s")
            if isinstance(elapsed, (int, float)):
                out[f"{section}/{name}"] = float(elapsed)
    return out


def build_trend(captures: list[tuple[int, dict]]) -> dict[str, dict]:
    """Per-entry trajectory: ``{entry: {"timings": {pr: s}, "speedups": {pr: x}}}``."""
    trend: dict[str, dict] = {}
    for pr, capture in captures:
        for entry, elapsed in entry_timings(capture).items():
            slot = trend.setdefault(entry, {"timings": {}, "speedups": {}})
            slot["timings"][pr] = elapsed
        for entry, speedup in (capture.get("speedups") or {}).items():
            slot = trend.setdefault(entry, {"timings": {}, "speedups": {}})
            slot["speedups"][pr] = speedup
    return trend


def report(trend: dict[str, dict], threshold: float, noise_floor: float = 0.05, out=sys.stdout) -> list[str]:
    """Print the trajectory table; return the entries that regressed."""
    prs = sorted({pr for slot in trend.values() for pr in slot["timings"]})
    if not prs:
        print("no current-label captures found", file=out)
        return []
    header = ["entry"] + [f"PR{pr}" for pr in prs] + ["best", "latest", "vs best"]
    rows = [header]
    regressions = []
    for entry in sorted(trend):
        timings = trend[entry]["timings"]
        speedups = trend[entry]["speedups"]
        if not timings:
            continue
        cells = [entry]
        for pr in prs:
            if pr in timings:
                cell = f"{timings[pr]:.3f}s"
                if pr in speedups:
                    cell += f" ({speedups[pr]:.2f}x)"
            else:
                cell = "-"
            cells.append(cell)
        best = min(timings.values())
        latest = timings[max(timings)]
        ratio = latest / best if best > 0 else 1.0
        cells += [f"{best:.3f}s", f"{latest:.3f}s", f"{(ratio - 1.0) * 100.0:+.1f}%"]
        if ratio > 1.0 + threshold and latest - best > noise_floor:
            regressions.append(entry)
            cells[-1] += "  <-- REGRESSION"
        rows.append(cells)
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    for row in rows:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)), file=out)
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="capture files to scan (default: BENCH_*.json in the repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed latest-vs-best slowdown fraction before failing (default 0.25)",
    )
    parser.add_argument(
        "--noise-floor",
        type=float,
        default=0.05,
        help="absolute latest-vs-best slowdown (seconds) below which an entry "
        "is never flagged, regardless of ratio (default 0.05)",
    )
    args = parser.parse_args(argv)
    paths = args.files or sorted(REPO_ROOT.glob("BENCH_*.json"))
    captures = load_captures(paths)
    if not captures:
        print("no BENCH_*.json captures found", file=sys.stderr)
        return 1
    print(
        f"performance trend across {len(captures)} capture(s): "
        + ", ".join(f"PR{pr}" for pr, _ in captures)
    )
    regressions = report(build_trend(captures), args.threshold, args.noise_floor)
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} entr{'y' if len(regressions) == 1 else 'ies'} "
            f"regressed >{args.threshold:.0%} vs the best recorded run: "
            + ", ".join(regressions),
            file=sys.stderr,
        )
        return 1
    print(f"\nno entry regressed >{args.threshold:.0%} vs its best recorded run")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
