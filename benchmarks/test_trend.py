"""Unit tests for the cross-PR trend report's regression verdict.

These exercise :func:`trend.report` on synthetic trajectories — the real
captures are machine-dependent, but the flagging rules (relative threshold
gated by an absolute noise floor) are pure arithmetic and must not drift.
"""

from __future__ import annotations

import io

from trend import build_trend, report


def _trend(entries: dict[str, dict[int, float]]) -> dict[str, dict]:
    """Build a trend structure straight from ``entry -> {pr: elapsed}``."""
    captures = []
    prs = sorted({pr for timings in entries.values() for pr in timings})
    for pr in prs:
        suite = {
            name.split("/", 1)[1]: {"elapsed_s": timings[pr]}
            for name, timings in entries.items()
            if pr in timings
        }
        captures.append((pr, {"runs": {"current": {"suite": suite}}}))
    return build_trend(captures)


def test_report_flags_large_regression():
    trend = _trend({"suite/BIG": {3: 1.0, 9: 1.4}})
    regressions = report(trend, threshold=0.25, noise_floor=0.05, out=io.StringIO())
    assert regressions == ["suite/BIG"]


def test_report_allows_within_threshold():
    trend = _trend({"suite/BIG": {3: 1.0, 9: 1.2}})
    assert report(trend, threshold=0.25, noise_floor=0.05, out=io.StringIO()) == []


def test_noise_floor_ignores_millisecond_jitter():
    # 35ms -> 46ms is +31% but only 11ms absolute: timer jitter, not a regression.
    trend = _trend({"suite/TINY": {7: 0.035, 9: 0.046}})
    assert report(trend, threshold=0.25, noise_floor=0.05, out=io.StringIO()) == []
    # The same ratio above the floor still fails.
    trend = _trend({"suite/TINY": {7: 0.35, 9: 0.46}})
    assert report(trend, threshold=0.25, noise_floor=0.05, out=io.StringIO()) == ["suite/TINY"]


def test_single_capture_cannot_regress():
    trend = _trend({"suite/NEW": {9: 5.0}})
    assert report(trend, threshold=0.25, noise_floor=0.05, out=io.StringIO()) == []


def test_latest_is_newest_pr_not_slowest():
    # A slow middle PR does not count against a recovered latest run.
    trend = _trend({"suite/RECOVERED": {3: 1.0, 6: 2.0, 9: 1.05}})
    assert report(trend, threshold=0.25, noise_floor=0.05, out=io.StringIO()) == []
