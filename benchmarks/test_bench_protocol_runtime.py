"""Benchmark PR4 — cohort protocol runtime vs the per-device scalar oracle.

The cohort runtime (:mod:`repro.sim.batch`) executes one state machine per
group of observation-identical NeighborWatchRB devices — the paper's
meta-node squares turned into a runtime optimization.  This benchmark runs
one mid-size NeighborWatchRB simulation twice, with the runtime off (the
scalar oracle) and on, asserts the two produce byte-identical records (the
hard contract of every perf PR), and reports both wall clocks plus the
runtime's sharing counters.  The pytest-benchmark timing is taken on the
cohort path — the configuration every experiment uses by default.
"""

from __future__ import annotations

import time

from conftest import attach_rows, run_once

from repro.experiments.factories import UniformDeploymentFactory
from repro.sim.builder import build_simulation, run_scenario
from repro.sim.config import ScenarioConfig
from repro.sim.engine import clear_link_cache

#: Mid-size version of the BENCH nw-friis-600 macro (same shape, quicker).
NUM_NODES = 400
MAP_SIZE = 16.0


def _scenario():
    deployment = UniformDeploymentFactory(NUM_NODES, MAP_SIZE, MAP_SIZE)(7)
    config = ScenarioConfig(
        protocol="neighborwatch", radius=4.0, message_length=4, seed=7, channel="friis"
    )
    return deployment, config


def _run(use_cohort_runtime: bool):
    deployment, config = _scenario()
    clear_link_cache()
    started = time.perf_counter()
    # Friis slots lower to the SoA tier by default since PR 9; pin it off so
    # this benchmark keeps measuring the cohort tier against the oracle.
    result = run_scenario(
        deployment, config,
        use_cohort_runtime=use_cohort_runtime,
        use_soa_kernels=False,
    )
    return result, time.perf_counter() - started


def test_bench_cohort_runtime_vs_scalar(benchmark):
    scalar_result, scalar_elapsed = _run(False)

    def cohort_run():
        return _run(True)

    cohort_result, cohort_elapsed = run_once(benchmark, cohort_run)
    assert cohort_result.to_record() == scalar_result.to_record(), (
        "cohort runtime changed the simulation output — bit-identity is a hard contract"
    )

    deployment, config = _scenario()
    clear_link_cache()
    sim = build_simulation(
        deployment, config, use_cohort_runtime=True, use_soa_kernels=False
    )
    sim.run(10**9)
    info = sim.plan_cache_info()["cohort_runtime"]

    rows = [
        {
            "runtime": "scalar (oracle)",
            "elapsed_s": round(scalar_elapsed, 3),
            "speedup": 1.0,
            "cohorts": 0,
            "share_hits": 0,
            "splits": 0,
            "merges": 0,
        },
        {
            "runtime": "cohort",
            "elapsed_s": round(cohort_elapsed, 3),
            "speedup": round(scalar_elapsed / cohort_elapsed, 2),
            "cohorts": info["cohorts"],
            "share_hits": info["share_hits"],
            "splits": info["divergence_splits"],
            "merges": info["cohort_merges"],
        },
    ]
    benchmark.extra_info["cohort_runtime"] = info
    attach_rows(
        benchmark,
        rows,
        title=f"NeighborWatchRB {NUM_NODES} nodes / Friis — cohort runtime vs scalar oracle",
    )
    assert info["active"] and info["share_hits"] > 0
