"""Benchmark THM5 — running time scaling O(beta*D + log|Sigma|) (Theorem 5).

Two controlled sweeps on the analytical grid validate the two terms of the
bound separately:

* fixing the adversary and growing the message length: the completion time
  grows (at most) linearly in the number of message bits;
* fixing the topology/message and growing the per-jammer budget beta: the
  completion time grows (at most) linearly in beta.
"""

from __future__ import annotations

import numpy as np
from conftest import attach_rows, run_once

from repro.adversary.placement import random_fault_selection
from repro.sim.builder import run_scenario
from repro.sim.config import FaultPlan, ScenarioConfig
from repro.topology.deployment import grid_jittered_deployment


def _sweep_message_length(lengths):
    deployment = grid_jittered_deployment(8, 8, spacing=1.0)
    rows = []
    for k in lengths:
        config = ScenarioConfig(protocol="neighborwatch", radius=3.0, message_length=int(k), seed=2)
        result = run_scenario(deployment, config)
        rows.append(
            {
                "message_bits": int(k),
                "rounds": result.completion_rounds,
                "rounds_per_bit": result.completion_rounds / int(k),
                "completion_%": 100.0 * result.completion_fraction,
            }
        )
    return rows


def _sweep_budget(budgets):
    deployment = grid_jittered_deployment(8, 8, spacing=1.0)
    jammers = random_fault_selection(
        deployment.num_nodes, 6, exclude=[deployment.source_index], rng=3
    )
    rows = []
    for beta in budgets:
        config = ScenarioConfig(protocol="neighborwatch", radius=3.0, message_length=3, seed=2)
        faults = (
            FaultPlan(jammers=tuple(jammers), jammer_budget=int(beta), jam_probability=1.0)
            if beta > 0
            else FaultPlan()
        )
        result = run_scenario(deployment, config, faults)
        rows.append(
            {
                "beta": int(beta),
                "rounds": result.completion_rounds,
                "adversary_broadcasts": result.adversary_broadcasts,
                "completion_%": 100.0 * result.completion_fraction,
            }
        )
    return rows


def test_runtime_scales_with_message_length(benchmark):
    rows = run_once(benchmark, _sweep_message_length, (2, 4, 8))
    attach_rows(benchmark, rows, title="THM5: completion time vs message length")
    rounds = np.array([r["rounds"] for r in rows], dtype=float)
    bits = np.array([r["message_bits"] for r in rows], dtype=float)
    assert all(r["completion_%"] == 100.0 for r in rows)
    # Monotone growth, and sub-linear-per-bit thanks to pipelining: doubling
    # the message length far less than doubles the completion time once the
    # pipeline is full.
    assert rounds[1] > rounds[0] and rounds[2] > rounds[1]
    assert rounds[2] / rounds[0] < 2.0 * (bits[2] / bits[0])
    assert rows[2]["rounds_per_bit"] <= rows[0]["rounds_per_bit"]


def test_runtime_scales_with_adversary_budget(benchmark):
    rows = run_once(benchmark, _sweep_budget, (0, 4, 8))
    attach_rows(benchmark, rows, title="THM5: completion time vs jamming budget beta")
    rounds = [r["rounds"] for r in rows]
    assert all(r["completion_%"] == 100.0 for r in rows)
    # Delay is non-decreasing in beta (adaptivity: the protocol finishes as
    # soon as the interference stops).
    assert rounds[1] >= rounds[0]
    assert rounds[2] >= rounds[1]
    # The incremental delay per unit of budget is bounded: going 4 -> 8 costs
    # at most proportionally more than going 0 -> 4 (linear, not worse).
    extra_first = rounds[1] - rounds[0]
    extra_second = rounds[2] - rounds[1]
    cycle = 606  # one full schedule cycle on this configuration
    assert extra_second <= extra_first + 4 * cycle
