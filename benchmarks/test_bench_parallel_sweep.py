"""Benchmark RUNNER — the parallel sweep executor.

Times the same multi-repetition sweep twice — serially and through a
``SweepExecutor(workers=4)`` process pool — asserts that the two produce
identical results seed-for-seed (the executor's core guarantee), and records
the wall-clock speedup.  On a machine with at least four CPUs the parallel
run must be at least 2x faster; on smaller machines (including single-core CI
containers, where a process pool cannot beat a serial loop by construction)
the speedup is only recorded, not asserted.
"""

from __future__ import annotations

import os
import time

from conftest import attach_rows, run_once

from repro.experiments import JammingSpec, run_jamming
from repro.sim.runner import SweepExecutor

#: Speedup the pool must deliver when the hardware can parallelise at all.
REQUIRED_SPEEDUP = 2.0
WORKERS = 4


def _sweep_spec() -> JammingSpec:
    # A multi-repetition sweep with enough independent (point, repetition)
    # jobs (3 budgets x 4 repetitions) to keep four workers busy.
    return JammingSpec(
        map_size=10.0,
        num_nodes=150,
        radius=3.0,
        message_length=2,
        budgets=(0, 4, 8),
        repetitions=4,
    )


def test_parallel_sweep_matches_serial_and_speeds_up(benchmark):
    spec = _sweep_spec()

    started = time.perf_counter()
    serial_rows = run_jamming(spec, executor=SweepExecutor(0))
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    with SweepExecutor(WORKERS) as executor:
        parallel_rows = run_once(benchmark, run_jamming, spec, executor=executor)
    parallel_seconds = time.perf_counter() - started

    # Determinism: the pool must reproduce the serial sweep bit for bit —
    # same aggregates, same per-point rows, in the same order.
    assert parallel_rows == serial_rows

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    attach_rows(benchmark, parallel_rows, title="RUNNER: parallel sweep (workers=4)")
    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["parallel_seconds"] = parallel_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    print(
        f"\nserial {serial_seconds:.2f}s vs workers={WORKERS} {parallel_seconds:.2f}s "
        f"-> speedup {speedup:.2f}x on {os.cpu_count()} CPU(s)"
    )

    if (os.cpu_count() or 1) >= WORKERS:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"expected >= {REQUIRED_SPEEDUP}x speedup with {WORKERS} workers on "
            f"{os.cpu_count()} CPUs, measured {speedup:.2f}x"
        )
