"""Benchmark CLUST — clustered vs uniform deployments (Section 6.2).

Regenerates the comparison between uniformly random and clustered (Marsaglia)
deployments for NeighborWatchRB, with and without lying devices.  Expected
shape: completion tracks connectivity from the source (clustered deployments
may leave a fraction of devices disconnected), and clustering does not hurt —
the paper reports it even helps — correctness under lying attacks.
"""

from __future__ import annotations

from conftest import attach_rows, run_once

from repro.experiments import ClusteredSpec, run_clustered


def test_clustered_deployments(benchmark, bench_executor):
    spec = ClusteredSpec.small()
    rows = run_once(benchmark, run_clustered, spec, executor=bench_executor)
    attach_rows(
        benchmark,
        rows,
        title="CLUST: uniform vs clustered deployments",
        columns=[
            "deployment",
            "byzantine_fraction",
            "completion_%",
            "correct_%",
            "reachable_from_source_pct",
            "rounds",
        ],
    )

    kinds = {r["deployment"] for r in rows}
    assert kinds == {"uniform", "clustered"}
    for row in rows:
        # Completion never exceeds connectivity from the source (plus noise).
        assert row["completion_%"] <= row["reachable_from_source_pct"] + 5.0
        if row["byzantine_fraction"] == 0.0:
            assert row["correct_%"] >= 99.9
    clean_uniform = next(
        r for r in rows if r["deployment"] == "uniform" and r["byzantine_fraction"] == 0.0
    )
    assert clean_uniform["completion_%"] > 80.0
