"""Shared helpers for the benchmark harness.

Every benchmark regenerates the data behind one table or figure of the paper
(see the experiment index in DESIGN.md).  Because a single experiment run is
already an aggregate over several seeded simulations, each benchmark executes
its experiment exactly once (``benchmark.pedantic`` with one round/iteration)
and attaches the resulting rows to ``benchmark.extra_info`` so that the JSON
output of ``pytest benchmarks/ --benchmark-only --benchmark-json=...``
contains the reproduced series alongside the timing.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


def attach_rows(benchmark, rows, *, title: str, columns=None) -> str:
    """Record experiment rows in the benchmark metadata and return the table text."""
    rows = list(rows)
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["title"] = title
    text = format_table(rows, columns, title=title)
    print("\n" + text)
    return text


@pytest.fixture
def bench_table():
    """Fixture exposing :func:`attach_rows` with a uniform signature."""
    return attach_rows
