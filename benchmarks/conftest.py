"""Shared helpers for the benchmark harness.

Every benchmark regenerates the data behind one table or figure of the paper
(see the experiment index in DESIGN.md).  Because a single experiment run is
already an aggregate over several seeded simulations, each benchmark executes
its experiment exactly once (``benchmark.pedantic`` with one round/iteration)
and attaches the resulting rows to ``benchmark.extra_info`` so that the JSON
output of ``pytest benchmarks/ --benchmark-only --benchmark-json=...``
contains the reproduced series alongside the timing.

Worker knobs
------------
The experiment benchmarks run through a :class:`repro.sim.runner.SweepExecutor`
built by the ``bench_executor`` fixture.  Two environment variables control it
(environment variables rather than pytest options, so the knobs work no matter
which directory pytest was invoked from):

* ``REPRO_BENCH_WORKERS`` — worker processes for the sweeps (default ``0``:
  serial, which keeps timings comparable across runs and machines);
* ``REPRO_BENCH_CHUNK_SIZE`` — repetitions per worker dispatch (default ``1``);
* ``REPRO_BENCH_CACHE_DIR`` — when set, route every sweep through a
  :class:`repro.store.ResultStore` rooted there.  A warm cache answers
  repetitions from disk, which turns the benchmark into a measurement of the
  experiment's *non-simulation* overhead; the cache hit/miss split is
  recorded in ``extra_info`` so a timing is never mistaken for a cold run.

Results are bit-identical for every setting; only the wall clock moves.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import format_table
from repro.sim.runner import SweepExecutor


def bench_workers() -> int:
    """Worker-count knob for the benchmark sweeps (0 = serial)."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", "0"))


def bench_chunk_size() -> int:
    """Chunking knob for the benchmark sweeps."""
    return int(os.environ.get("REPRO_BENCH_CHUNK_SIZE", "1"))


def bench_cache_dir() -> str | None:
    """Result-store knob for the benchmark sweeps (unset = no cache)."""
    return os.environ.get("REPRO_BENCH_CACHE_DIR") or None


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


def attach_rows(benchmark, rows, *, title: str, columns=None) -> str:
    """Record experiment rows in the benchmark metadata and return the table text."""
    rows = list(rows)
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["title"] = title
    text = format_table(rows, columns, title=title)
    print("\n" + text)
    return text


@pytest.fixture
def bench_table():
    """Fixture exposing :func:`attach_rows` with a uniform signature."""
    return attach_rows


@pytest.fixture
def bench_executor(benchmark):
    """The sweep executor the experiment benchmarks run through.

    Serial by default; set ``REPRO_BENCH_WORKERS`` to fan repetitions out over
    processes and ``REPRO_BENCH_CACHE_DIR`` to reuse/persist results through
    the on-disk store.  The configuration — and, when caching, the hit/miss
    split — is recorded in ``benchmark.extra_info`` so the JSON output says
    what the timing was taken under.
    """
    with SweepExecutor(bench_workers(), chunk_size=bench_chunk_size()) as executor:
        benchmark.extra_info["workers"] = executor.workers
        benchmark.extra_info["chunk_size"] = executor.chunk_size
        cache_dir = bench_cache_dir()
        if cache_dir is None:
            yield executor
        else:
            from repro.store import CachingSweepExecutor, ResultStore

            store = ResultStore(cache_dir)
            benchmark.extra_info["cache_dir"] = cache_dir
            yield CachingSweepExecutor(store, executor)
            benchmark.extra_info["cache_stats"] = store.stats.snapshot()
