"""Benchmark DUAL — the dual-mode protocol (Sections 1 and 6.2).

Regenerates the dual-mode experiment: flood the payload with the epidemic
protocol, secure only a short digest with NeighborWatchRB, and accept the
payload only when the digests match.  The paper conjectures the end-to-end
overhead over plain flooding stays modest (below ~2x at paper scale with a
digest of about a tenth of the payload); on the scaled-down map the digest
phase is relatively more expensive, so the bound checked here is looser.
"""

from __future__ import annotations

from conftest import attach_rows, run_once

from repro.experiments import DualModeSpec, run_dual_mode


def test_dual_mode_overhead(benchmark, bench_executor):
    spec = DualModeSpec.small()
    row = run_once(benchmark, run_dual_mode, spec, executor=bench_executor)
    attach_rows(
        benchmark,
        [row],
        title="DUAL: dual-mode protocol (epidemic payload + secured digest)",
    )

    # Every device that accepted got the authentic payload.
    assert row["correct_%"] >= 99.9
    assert row["acceptance_%"] > 90.0
    # The digest is much shorter than the payload...
    assert row["digest_bits"] <= max(1, row["payload_bits"] // 2)
    # ...and securing only the digest costs a small constant factor over the
    # unprotected flood (versus the ~10x of securing every payload bit).
    assert row["overhead_factor"] < 10.0
