"""Ablation benchmarks for the design choices called out in DESIGN.md.

* square size: the paper's simulation uses R/3 squares instead of the
  analytical ceil(R/2) — smaller squares mean more hops but denser meta-node
  coverage;
* idle veto: the soundness device documented in DESIGN.md (a silent interval
  must not read as a (0,0) pair);
* jamming probability: the paper states 1/5 is near-optimal for the jammers;
* channel model: unit-disk vs Friis/SINR capture.
"""

from __future__ import annotations

from conftest import attach_rows, run_once

from repro.adversary.placement import random_fault_selection
from repro.sim.builder import run_scenario
from repro.sim.config import FaultPlan, ScenarioConfig
from repro.topology.deployment import uniform_deployment


def _run(deployment, *, square_side=None, idle_veto=True, channel="unitdisk", faults=None, seed=4):
    config = ScenarioConfig(
        protocol="neighborwatch",
        radius=3.0,
        message_length=3,
        square_side=square_side,
        idle_veto=idle_veto,
        channel=channel,
        seed=seed,
    )
    result = run_scenario(deployment, config, faults)
    return {
        "rounds": result.completion_rounds,
        "completion_%": 100.0 * result.completion_fraction,
        "correct_%": 100.0 * result.correctness_fraction,
        "honest_broadcasts": result.honest_broadcasts,
    }


def _ablate_square_side(deployment):
    rows = []
    for label, side in (("R/3 (paper sim)", 1.0), ("R/2 (analytic)", 1.5)):
        row = _run(deployment, square_side=side)
        row["square_side"] = label
        rows.append(row)
    return rows


def test_ablation_square_size(benchmark):
    deployment = uniform_deployment(140, 9, 9, rng=21)
    rows = run_once(benchmark, _ablate_square_side, deployment)
    attach_rows(benchmark, rows, title="Ablation: NeighborWatchRB square side",
                columns=["square_side", "rounds", "completion_%", "correct_%", "honest_broadcasts"])
    assert all(r["correct_%"] >= 99.9 for r in rows)
    # Both settings must deliver to (almost) everyone on this dense deployment.
    assert all(r["completion_%"] > 90.0 for r in rows)


def _ablate_idle_veto(deployment):
    rows = []
    for idle_veto in (True, False):
        row = _run(deployment, idle_veto=idle_veto)
        row["idle_veto"] = idle_veto
        rows.append(row)
    return rows


def test_ablation_idle_veto(benchmark):
    deployment = uniform_deployment(140, 9, 9, rng=22)
    rows = run_once(benchmark, _ablate_idle_veto, deployment)
    attach_rows(benchmark, rows, title="Ablation: idle veto on/off",
                columns=["idle_veto", "rounds", "completion_%", "correct_%", "honest_broadcasts"])
    with_veto = next(r for r in rows if r["idle_veto"])
    # With the idle veto the protocol is sound: full correctness.
    assert with_veto["correct_%"] >= 99.9
    assert with_veto["completion_%"] > 90.0
    # The veto costs extra honest broadcasts (that is its price).
    without = next(r for r in rows if not r["idle_veto"])
    assert with_veto["honest_broadcasts"] >= without["honest_broadcasts"]


def _ablate_jam_probability(deployment, jammers):
    rows = []
    for prob in (0.05, 0.2, 1.0):
        faults = FaultPlan(jammers=tuple(jammers), jammer_budget=8, jam_probability=prob)
        row = _run(deployment, faults=faults)
        row["jam_probability"] = prob
        rows.append(row)
    return rows


def test_ablation_jam_probability(benchmark):
    deployment = uniform_deployment(140, 9, 9, rng=23)
    jammers = random_fault_selection(deployment.num_nodes, 14, exclude=[deployment.source_index], rng=9)
    rows = run_once(benchmark, _ablate_jam_probability, deployment, jammers)
    attach_rows(benchmark, rows, title="Ablation: jammer activation probability (budget fixed)",
                columns=["jam_probability", "rounds", "completion_%", "correct_%"])
    # Jamming never violates authenticity regardless of the jammer's strategy.
    assert all(r["correct_%"] >= 99.9 for r in rows)
    assert all(r["completion_%"] > 90.0 for r in rows)


def _ablate_channel(deployment):
    rows = []
    for channel in ("unitdisk", "friis"):
        row = _run(deployment, channel=channel)
        row["channel"] = channel
        rows.append(row)
    return rows


def test_ablation_channel_model(benchmark):
    deployment = uniform_deployment(140, 9, 9, rng=24)
    rows = run_once(benchmark, _ablate_channel, deployment)
    attach_rows(benchmark, rows, title="Ablation: unit-disk vs Friis/SINR channel",
                columns=["channel", "rounds", "completion_%", "correct_%"])
    # The protocol's guarantees are channel-model independent.
    assert all(r["correct_%"] >= 99.9 for r in rows)
    assert all(r["completion_%"] > 85.0 for r in rows)
