"""Benchmark EPID — comparison with the simple epidemic baseline (Section 6.2).

Regenerates the epidemic vs NeighborWatchRB (vs MultiPathRB) comparison.  The
paper reports NeighborWatchRB at about 7.7x the epidemic baseline and
MultiPathRB orders of magnitude slower; the air-time slowdown measured here
must reproduce that ordering and ballpark.
"""

from __future__ import annotations

from conftest import attach_rows, run_once

from repro.experiments import EpidemicComparisonSpec, run_epidemic_comparison


def test_epidemic_comparison_neighborwatch(benchmark, bench_executor):
    spec = EpidemicComparisonSpec.small()
    rows = run_once(benchmark, run_epidemic_comparison, spec, executor=bench_executor)
    attach_rows(
        benchmark,
        rows,
        title="EPID: epidemic baseline vs NeighborWatchRB (air-time slowdown)",
        columns=["protocol", "map_size", "rounds", "airtime_bits", "slowdown", "completion_%"],
    )
    by_protocol = {r["protocol"]: r for r in rows}
    epidemic = by_protocol["epidemic"]
    nw = by_protocol["NeighborWatchRB"]
    assert epidemic["slowdown"] == 1.0
    # The authenticated protocol is slower, but within the same order of
    # magnitude as the paper's ~7.7x once air-time is accounted for.
    assert 2.0 <= nw["slowdown"] <= 40.0
    assert nw["completion_%"] > 95.0


def test_epidemic_comparison_multipath(benchmark, bench_executor):
    spec = EpidemicComparisonSpec.small_with_multipath()
    rows = run_once(benchmark, run_epidemic_comparison, spec, executor=bench_executor)
    attach_rows(
        benchmark,
        rows,
        title="EPID (with MultiPathRB): slowdowns over the epidemic baseline",
        columns=["protocol", "rounds", "airtime_bits", "slowdown", "completion_%"],
    )
    by_protocol = {r["protocol"]: r for r in rows}
    nw = by_protocol["NeighborWatchRB"]
    mp = next(v for k, v in by_protocol.items() if k.startswith("MultiPathRB"))
    epidemic = by_protocol["epidemic"]
    # Ordering: epidemic < NeighborWatchRB << MultiPathRB.
    assert epidemic["slowdown"] <= nw["slowdown"] < mp["slowdown"]
    # MultiPathRB is "orders of magnitude" slower than the epidemic baseline.
    assert mp["slowdown"] > 10 * epidemic["slowdown"]
