"""Benchmark JAM — resilience to jamming (Section 6.1).

Regenerates the completion-time-vs-jamming-budget series and checks the
paper's observation that the delay grows (approximately) linearly with the
budget while authenticity is never affected.
"""

from __future__ import annotations

from conftest import attach_rows, run_once

from repro.experiments import JammingSpec, fit_linear_trend, run_jamming


def test_jamming_delay_scales_with_budget(benchmark, bench_executor):
    spec = JammingSpec.small()
    rows = run_once(benchmark, run_jamming, spec, executor=bench_executor)
    attach_rows(
        benchmark,
        rows,
        title="JAM: completion time vs per-jammer broadcast budget",
        columns=["budget", "rounds", "completion_%", "correct_%", "adversary_broadcasts"],
    )

    assert [r["budget"] for r in rows] == list(spec.budgets)
    # Jamming can only delay, never corrupt.
    assert all(r["correct_%"] >= 99.9 for r in rows)
    # Delay is non-decreasing in the budget and the trend is consistent with a line.
    rounds = [r["rounds"] for r in rows]
    assert rounds[-1] >= rounds[0]
    slope, _intercept, r_squared = fit_linear_trend(rows)
    benchmark.extra_info["slope_rounds_per_budget"] = slope
    benchmark.extra_info["r_squared"] = r_squared
    assert slope >= 0.0
