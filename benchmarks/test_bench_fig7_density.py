"""Benchmark FIG7 — maximum tolerated Byzantine fraction vs deployment density.

Regenerates the Figure 7 search: for each density, the largest fraction of
lying devices such that at least 90% of honest devices still receive the
correct message.  Expected shape: the tolerated fraction grows with density
(NeighborWatchRB "benefits most from the increase in density").
"""

from __future__ import annotations

from conftest import attach_rows, run_once

from repro.experiments import DensityToleranceSpec, run_density_tolerance


def test_fig7_density_tolerance(benchmark, bench_executor):
    spec = DensityToleranceSpec.small()
    rows = run_once(benchmark, run_density_tolerance, spec, executor=bench_executor)
    attach_rows(
        benchmark,
        rows,
        title="FIG7: max tolerated Byzantine fraction vs density (>=90% correct)",
        columns=["protocol", "density", "num_nodes", "max_tolerated_%"],
    )

    assert len(rows) == len(spec.densities) * len(spec.protocols)
    for label, _proto, _t in spec.protocols:
        series = sorted((r for r in rows if r["protocol"] == label), key=lambda r: r["density"])
        # Robustness scales (weakly) with density.
        assert series[-1]["max_tolerated_%"] >= series[0]["max_tolerated_%"]
        # At the densest point some non-zero fraction of liars is tolerated.
        assert series[-1]["max_tolerated_%"] > 0.0
