"""Benchmark MAPSZ — scaling with the map size / network diameter (Section 6.2).

Regenerates the "running time and message complexity scale linearly with the
diameter" series for NeighborWatchRB.
"""

from __future__ import annotations

from conftest import attach_rows, run_once

from repro.experiments import MapSizeSpec, linear_scaling_error, run_map_size


def test_mapsize_linear_scaling(benchmark, bench_executor):
    spec = MapSizeSpec.small()
    rows = run_once(benchmark, run_map_size, spec, executor=bench_executor)
    attach_rows(
        benchmark,
        rows,
        title="MAPSZ: scaling with map size",
        columns=[
            "map_size",
            "num_nodes",
            "diameter_hops",
            "rounds",
            "rounds_per_hop",
            "honest_broadcasts",
            "broadcasts_per_node",
            "completion_%",
        ],
    )

    assert [r["map_size"] for r in rows] == list(spec.map_sizes)
    # Larger maps take longer and use more messages in total...
    assert rows[-1]["rounds"] > rows[0]["rounds"]
    assert rows[-1]["honest_broadcasts"] > rows[0]["honest_broadcasts"]
    # ...but the series stays consistent with linear growth in the diameter.
    error = linear_scaling_error(rows)
    benchmark.extra_info["linear_fit_relative_rms"] = error
    assert error < 0.5
    # Per-device message complexity grows far slower than the total.
    growth_total = rows[-1]["honest_broadcasts"] / rows[0]["honest_broadcasts"]
    growth_per_node = rows[-1]["broadcasts_per_node"] / rows[0]["broadcasts_per_node"]
    assert growth_per_node < growth_total
