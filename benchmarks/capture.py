"""Capture the repository's performance trajectory into ``BENCH_<pr>.json``.

Every perf-focused PR needs two things the pytest-benchmark harness does not
give us directly: a *persistent* record of how long the experiment suite took
before and after the change, and a content hash of the produced series so a
"speedup" can never silently come from computing different numbers.  This
script provides both:

* the **suite** section runs every registered experiment at ``--suite-scale``
  (default ``small``) through a serial executor, recording wall-clock time and
  a canonical SHA-256 over the exported rows;
* the **macros** section runs a few representative *paper-scale* single
  simulations (the cold hot-path cost PR 3 targets: dense deployments on both
  channel models), recording wall-clock time, total rounds and a canonical
  SHA-256 over the full :meth:`~repro.sim.results.RunResult.to_record`.

Runs are stored under a label (``baseline`` / ``current`` by convention) and
merged into the same JSON file, so one file documents the before/after of a
PR.  When both labels are present the script computes per-entry speedups and
**fails loudly if any series hash moved** — a perf PR must not change a single
exported byte.

Usage::

    PYTHONPATH=src python benchmarks/capture.py --pr 4 --label baseline --runtime scalar
    PYTHONPATH=src python benchmarks/capture.py --pr 4 --label current
    PYTHONPATH=src python benchmarks/capture.py --pr 4 --label current --suite-only
    PYTHONPATH=src python benchmarks/capture.py --pr 6 --label baseline --tiling off
    PYTHONPATH=src python benchmarks/capture.py --pr 6 --label current --tiling on
    PYTHONPATH=src python benchmarks/capture.py --pr 7 --label baseline --runtime cohort --tiling on
    PYTHONPATH=src python benchmarks/capture.py --pr 7 --label current --runtime soa --tiling on
    PYTHONPATH=src python benchmarks/capture.py --check BENCH_4.json

``--runtime {cohort,scalar,soa}`` pins the protocol execution runtime for the
capture: ``scalar`` is the per-device oracle (``REPRO_COHORT_RUNTIME=0``,
``REPRO_SOA_KERNELS=0``), ``cohort`` the shared-state batched path with the
struct-of-arrays kernels off, and ``soa`` (PR 7) enables the struct-of-arrays
slot kernels on top of the cohort default — the hashes must agree exactly
across all three, which is itself part of the bit-identity contract.

``--tiling {on,off}`` pins the link-state tier the same way
(``REPRO_SPATIAL_TILING``): PR 6's baseline is the dense matrix path, its
current run the sparse spatially-tiled CSR tier.  ``on`` resolves to *auto*
for the suite section and to *forced* for the macros: BENCH_6 showed that
forcing the CSR tier onto the suite's small deployments costs real time
(DUAL 0.39x, MAPSZ 0.59x — per-sender Python round loops where one dense
slice would do) while saving memory those runs never needed, so the suite
honors the node-count auto threshold and only the paper-scale macros pin the
sparse tier.  Macros flagged ``requires_tiling`` (the 10^5-node scale
targets, whose dense link state would not fit in memory) only run with
tiling on; every macro that runs under both labels must hash identically.

``--check`` re-runs the (quick) suite and verifies the stored hashes of the
newest run still reproduce — the CI smoke job uses it so a drifted series can
never hide behind a stale JSON.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path
from typing import Optional

import numpy as np

SCHEMA_VERSION = 1

#: Experiments whose small-scale runs form the quick "suite" section.  Kept
#: explicit (not ``EXPERIMENTS.keys()``) so adding an experiment is a
#: deliberate decision to grow the capture time.
SUITE_EXPERIMENTS = ("FIG5", "JAM", "FIG6", "FIG7", "CLUST", "MAPSZ", "EPID", "DUAL")

#: Representative paper-scale single simulations (the serial cold-repetition
#: cost).  Densities/sizes follow Fig. 7 of the paper (20x20 map, density
#: 1.5-3.0); both channel models are exercised because their hot paths differ
#: (audibility mask vs received-power matrix).
MACROS = (
    {
        "name": "nw-unitdisk-1200",
        "protocol": "neighborwatch",
        "channel": "unitdisk",
        "num_nodes": 1200,
        "map_size": 20.0,
        "radius": 4.0,
        "message_length": 4,
        "seed": 5,
    },
    {
        "name": "nw-friis-600",
        "protocol": "neighborwatch",
        "channel": "friis",
        "num_nodes": 600,
        "map_size": 20.0,
        "radius": 4.0,
        "message_length": 4,
        "seed": 5,
    },
    {
        "name": "epidemic-friis-1200",
        "protocol": "epidemic",
        "channel": "friis",
        "num_nodes": 1200,
        "map_size": 20.0,
        "radius": 4.0,
        "message_length": 4,
        "seed": 5,
    },
    # The 10^5-node scale target of the spatially-tiled engine core: a dense
    # unit-disk audibility matrix at this size would be ~9.3 GiB, so the
    # macro only runs with tiling on (the sparse CSR tier keeps ~10^6
    # entries).  Density 0.125 with radius 6 keeps the expected neighborhood
    # ~14, comfortably connected for the epidemic flood.
    {
        "name": "epidemic-unitdisk-100k",
        "protocol": "epidemic",
        "channel": "unitdisk",
        "num_nodes": 100_000,
        "map_size": 894.0,
        "radius": 6.0,
        "message_length": 4,
        "seed": 5,
        "requires_tiling": True,
    },
    # The PR 7 scale target: NeighborWatchRB at 10^5 nodes.  Unlike the
    # epidemic flood, the meta-square relay needs occupied squares, so this
    # macro keeps the nw-unitdisk-1200 density (~3 devices per unit area,
    # ~5 per R/3-square; the epidemic macro's 0.125 leaves most squares
    # empty and the relay never completes).  The struct-of-arrays slot
    # kernels carry the 6-phase 2Bit exchanges in packed-bitmask algebra,
    # which is what makes the protocol (not just the flood) tractable at
    # this size — so, like requires_tiling vs the dense baseline, the macro
    # only runs when the SoA tier is on (a cohort/scalar baseline would
    # take hours).
    {
        "name": "nw-unitdisk-100k",
        "protocol": "neighborwatch",
        "channel": "unitdisk",
        "num_nodes": 100_000,
        "map_size": 183.0,
        "radius": 4.0,
        "message_length": 4,
        "seed": 5,
        "requires_tiling": True,
        "requires_soa": True,
    },
)


def _canonical(value):
    """Reduce a result row/record to canonical JSON-compatible data."""
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.generic):
        return _canonical(value.item())
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    raise TypeError(f"cannot canonicalize {type(value).__name__} for hashing")


def series_hash(value) -> str:
    """Stable SHA-256 over a canonical JSON encoding of ``value``."""
    encoded = json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf8")).hexdigest()


def capture_suite(scale: str, cache_dir: Optional[str], log) -> dict:
    """Run every suite experiment serially; timings, hashes and cache stats."""
    from repro.experiments.registry import run_experiment
    from repro.sim.runner import SweepExecutor

    store = None
    if cache_dir is not None:
        from repro.store import ResultStore

        store = ResultStore(cache_dir)

    section: dict = {}
    with SweepExecutor(0) as executor:
        for experiment in SUITE_EXPERIMENTS:
            if store is not None:
                store.stats.reset()
            started = time.perf_counter()
            rows, _description = run_experiment(
                experiment, scale=scale, executor=executor, store=store
            )
            elapsed = time.perf_counter() - started
            entry = {
                "elapsed_s": round(elapsed, 4),
                "rows_sha256": series_hash(list(rows)),
            }
            if store is not None:
                entry["cache"] = store.stats.snapshot()
            section[experiment] = entry
            log(f"  suite {experiment:<6} {elapsed:8.2f}s  {entry['rows_sha256'][:12]}")
    return section


def capture_macros(log) -> dict:
    """Run the representative paper-scale single simulations serially.

    Macros flagged ``requires_tiling`` are skipped (with a log line) unless
    spatial tiling resolves to *on* for their node count — their dense link
    state would not fit in memory, which is the point of the flag.  Macros
    flagged ``requires_soa`` are likewise skipped unless the struct-of-arrays
    kernels are enabled: they are scale targets the SoA tier unlocks, not
    before/after comparisons, and running them on the cohort or scalar tier
    would take hours.
    """
    from repro.experiments.factories import UniformDeploymentFactory
    from repro.sim.builder import build_channel, run_scenario
    from repro.sim.config import ScenarioConfig
    from repro.sim.engine import (
        _cached_link_state,
        default_soa_kernels,
        default_spatial_tiling,
    )
    from repro.sim.linkstate import SparseLinkState

    section: dict = {}
    for macro in MACROS:
        tiled = default_spatial_tiling(macro["num_nodes"])
        if macro.get("requires_tiling") and not tiled:
            log(f"  macro {macro['name']:<22} skipped (needs spatial tiling on)")
            continue
        if macro.get("requires_soa") and not default_soa_kernels():
            log(f"  macro {macro['name']:<22} skipped (needs SoA kernels on)")
            continue
        deployment = UniformDeploymentFactory(
            macro["num_nodes"], macro["map_size"], macro["map_size"]
        )(macro["seed"])
        config = ScenarioConfig(
            protocol=macro["protocol"],
            radius=macro["radius"],
            message_length=macro["message_length"],
            seed=macro["seed"],
            channel=macro["channel"],
        )
        info: dict = {}
        started = time.perf_counter()
        result = run_scenario(deployment, config, info_sink=info)
        elapsed = time.perf_counter() - started
        entry = {
            "elapsed_s": round(elapsed, 4),
            "result_sha256": series_hash(result.to_record()),
            "total_rounds": result.total_rounds,
            "num_nodes": macro["num_nodes"],
            "channel": macro["channel"],
            "protocol": macro["protocol"],
            # Which execution tier actually carried the run — SoA slot
            # kernels, cohort batching, or the scalar oracle — with the SoA
            # compile/fallback counters when that tier was active.
            "runtime_tiers": {
                "soa_kernels": info.get("soa_kernels", {"enabled": False}),
                "cohort_runtime": {
                    "enabled": bool(info.get("cohort_runtime", {}).get("enabled"))
                },
            },
        }
        # The engine's module-level link cache still holds the state this run
        # used (same channel signature + positions), live round counters
        # included — so the tiling telemetry costs one cache lookup, not a
        # second run.
        state = _cached_link_state(
            build_channel(config), deployment.positions, sparse=tiled
        )
        if isinstance(state, SparseLinkState):
            entry["spatial_tiling"] = {"enabled": True, **state.info()}
        else:
            entry["spatial_tiling"] = {"enabled": False}
        section[macro["name"]] = entry
        log(f"  macro {macro['name']:<22} {elapsed:8.2f}s  {entry['result_sha256'][:12]}")
    return section


def capture_service_macro(log) -> dict:
    """Time a queue-backed FIG5 sweep served by two real worker daemons.

    The PR 10 service-fabric macro: the whole sweep travels through the
    durable work queue — submit-side enqueue, worker claim/run/persist into
    the shared store, poll-side readback — so the entry's wall clock tracks
    the queue's dispatch overhead on top of the simulation cost the suite
    section already records.  The rows hash must equal the serial FIG5 suite
    hash (byte-identity is the service's core contract), stored under
    ``result_sha256`` so the baseline/current drift check covers it too.
    """
    import os
    import subprocess
    import tempfile

    from repro.experiments.registry import run_experiment
    from repro.service.backend import QueueBackend
    from repro.service.queue import WorkQueue
    from repro.sim.runner import SweepExecutor

    src_dir = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir if not existing else os.pathsep.join((src_dir, existing))
    with tempfile.TemporaryDirectory(prefix="bench-service-") as workdir:
        queue_dir = os.path.join(workdir, "queue")
        queue = WorkQueue.ensure(queue_dir)
        workers = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.service", "worker",
                    "--queue", queue_dir, "--poll", "0.05", "--idle-exit", "5",
                    "--worker-id", f"bench-{index}",
                ],
                env=env,
                stderr=subprocess.DEVNULL,
            )
            for index in range(2)
        ]
        started = time.perf_counter()
        with SweepExecutor(0, backend=QueueBackend(queue, poll_interval=0.05)) as executor:
            rows, _description = run_experiment("FIG5", scale="small", executor=executor)
        elapsed = time.perf_counter() - started
        for proc in workers:
            proc.wait(timeout=120)
    entry = {
        "elapsed_s": round(elapsed, 4),
        "result_sha256": series_hash(list(rows)),
        "transport": "queue",
        "workers": 2,
        "lease_requeues": executor.telemetry.lease_requeues,
    }
    log(f"  macro {'service-queue-fig5':<22} {elapsed:8.2f}s  {entry['result_sha256'][:12]}")
    return entry


def _load(path: Path) -> dict:
    if path.exists():
        with path.open("r", encoding="utf8") as handle:
            return json.load(handle)
    return {"schema": SCHEMA_VERSION, "pr": None, "runs": {}}


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "captured_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def compute_speedups(document: dict) -> dict:
    """Per-entry baseline/current speedups; raises on series-hash drift."""
    runs = document.get("runs", {})
    if "baseline" not in runs or "current" not in runs:
        return {}
    baseline, current = runs["baseline"], runs["current"]
    speedups: dict = {}
    for section, hash_key in (("suite", "rows_sha256"), ("macros", "result_sha256")):
        base_section = baseline.get(section, {})
        cur_section = current.get(section, {})
        for name in sorted(set(base_section) & set(cur_section)):
            before, after = base_section[name], cur_section[name]
            if before[hash_key] != after[hash_key]:
                raise SystemExit(
                    f"series hash drift in {section}/{name}: "
                    f"{before[hash_key][:16]} (baseline) != {after[hash_key][:16]} (current); "
                    "a perf PR must not change exported results"
                )
            if after["elapsed_s"] > 0:
                speedups[f"{section}/{name}"] = round(
                    before["elapsed_s"] / after["elapsed_s"], 3
                )
    return speedups


def check(path: Path, scale: str, log) -> int:
    """Re-run the suite and verify the newest stored run's hashes reproduce."""
    document = _load(path)
    runs = document.get("runs", {})
    if not runs:
        log(f"error: {path} is missing or has no recorded runs")
        return 1
    if "current" in runs:
        label = "current"
    else:
        # Fall back to the newest capture by timestamp, and say so — a file
        # holding only a pre-change baseline should be conspicuous in CI logs.
        label = max(runs, key=lambda name: runs[name].get("environment", {}).get("captured_at", ""))
        log(f"warning: no 'current' run recorded; checking newest run {label!r}")
    stored = runs[label].get("suite", {})
    if not stored:
        log(f"error: run {label!r} in {path} has no suite section")
        return 1
    fresh = capture_suite(scale, None, log)
    failures = 0
    for name, entry in sorted(stored.items()):
        if name not in fresh:
            continue
        if fresh[name]["rows_sha256"] != entry["rows_sha256"]:
            log(
                f"error: suite/{name} drifted: stored {entry['rows_sha256'][:16]} "
                f"!= fresh {fresh[name]['rows_sha256'][:16]}"
            )
            failures += 1
    if failures:
        return 1
    log(f"ok: {len(stored)} suite series match {path}:{label}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pr", type=int, default=3, help="PR number (names the output file)")
    parser.add_argument(
        "--label",
        default="current",
        help="run label to store under (convention: 'baseline' before a change, "
        "'current' after)",
    )
    parser.add_argument("--output", default=None, help="output path (default BENCH_<pr>.json)")
    parser.add_argument("--suite-scale", default="small", choices=("small", "paper"))
    parser.add_argument("--suite-only", action="store_true", help="skip the paper-scale macros")
    parser.add_argument("--macros-only", action="store_true", help="skip the experiment suite")
    parser.add_argument(
        "--cache-dir", default=None, help="route suite sweeps through a ResultStore"
    )
    parser.add_argument(
        "--runtime",
        choices=("cohort", "scalar", "soa"),
        default=None,
        help="force the protocol execution runtime for this capture (sets "
        "REPRO_COHORT_RUNTIME / REPRO_SOA_KERNELS): 'scalar' records the "
        "per-device oracle baseline, 'cohort' the shared-state batched path "
        "with the struct-of-arrays kernels off, 'soa' the struct-of-arrays "
        "slot kernels (cohort batching still covers ineligible runs); "
        "results are bit-identical, only the wall clock moves "
        "(default: environment)",
    )
    parser.add_argument(
        "--tiling",
        choices=("on", "off"),
        default=None,
        help="pin the spatially-tiled sparse link-state tier for this capture "
        "(sets REPRO_SPATIAL_TILING): 'off' records the dense baseline, 'on' "
        "resolves to the auto node-count threshold for the suite (forcing "
        "CSR onto small deployments is a measured slowdown) and forces the "
        "sparse CSR path for the paper-scale macros; results are "
        "bit-identical, only memory and the wall clock move (default: "
        "environment / auto threshold).  Macros flagged requires_tiling "
        "only run with tiling on",
    )
    parser.add_argument(
        "--check",
        metavar="JSON",
        default=None,
        help="verify the stored suite hashes of JSON reproduce, then exit",
    )
    args = parser.parse_args(argv)

    import os

    if args.runtime is not None:
        # 'soa' layers on top of the cohort default: eligible runs compile to
        # the struct-of-arrays kernels, everything else (Friis, lossy
        # channels) still batches through cohorts.  'cohort' and 'scalar'
        # pin the kernels off so each tier is measured in isolation.
        os.environ["REPRO_COHORT_RUNTIME"] = "0" if args.runtime == "scalar" else "1"
        os.environ["REPRO_SOA_KERNELS"] = "1" if args.runtime == "soa" else "0"

    def tiling_env(section: str) -> None:
        # 'on' means auto for the suite (small deployments pay for forced
        # CSR — see the module docstring) but forced for the macros, whose
        # scale is the sparse tier's reason to exist.
        if args.tiling is None:
            return
        if args.tiling == "off":
            os.environ["REPRO_SPATIAL_TILING"] = "0"
        else:
            os.environ["REPRO_SPATIAL_TILING"] = "auto" if section == "suite" else "1"

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    if args.check is not None:
        tiling_env("suite")
        return check(Path(args.check), args.suite_scale, log)

    path = Path(args.output) if args.output else Path(f"BENCH_{args.pr}.json")
    document = _load(path)
    document["schema"] = SCHEMA_VERSION
    document["pr"] = args.pr

    run: dict = {"environment": _environment(), "suite_scale": args.suite_scale}
    log(f"capturing {args.label!r} -> {path}")
    if not args.macros_only:
        tiling_env("suite")
        run["suite"] = capture_suite(args.suite_scale, args.cache_dir, log)
    if not args.suite_only:
        tiling_env("macros")
        run["macros"] = capture_macros(log)
        run["macros"]["service-queue-fig5"] = capture_service_macro(log)
    document.setdefault("runs", {})[args.label] = run

    speedups = compute_speedups(document)
    if speedups:
        document["speedups"] = speedups
        for name, factor in sorted(speedups.items()):
            log(f"  speedup {name:<30} {factor:6.2f}x")

    with path.open("w", encoding="utf8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    log(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
