"""Benchmark FIG6 — tolerating lying devices (Figure 6).

Regenerates the "percentage of delivered messages that are correct vs fraction
of malicious devices" series.  Expected shape: perfect correctness with no
liars, graceful degradation for small fractions, steep drop-off once the
tolerated threshold is exceeded; the 2-voting variant is at least as robust as
the plain one.  MultiPathRB is exercised separately on a smaller map because
its simulations are far slower (as the paper also notes).
"""

from __future__ import annotations

from conftest import attach_rows, run_once

from repro.experiments import LyingSpec, run_lying


def test_fig6_lying_neighborwatch(benchmark, bench_executor):
    spec = LyingSpec.small()
    rows = run_once(benchmark, run_lying, spec, executor=bench_executor)
    attach_rows(
        benchmark,
        rows,
        title="FIG6: correctness vs Byzantine fraction (NeighborWatchRB variants)",
        columns=["protocol", "byzantine_fraction", "correct_%", "completion_%", "rounds"],
    )

    for label, _proto, _t in spec.protocols:
        series = {r["byzantine_fraction"]: r for r in rows if r["protocol"] == label}
        assert series[0.0]["correct_%"] >= 99.9
        # Correctness is non-increasing (up to noise) in the fraction of liars.
        ordered = [series[f]["correct_%"] for f in sorted(series)]
        assert ordered[-1] <= ordered[0] + 5.0

    # The 2-voting variant is at least as robust as plain NeighborWatchRB at the
    # largest attacked fraction.
    worst = max(spec.fractions)
    plain = next(r for r in rows if r["protocol"] == "NeighborWatchRB" and r["byzantine_fraction"] == worst)
    two_vote = next(
        r for r in rows if r["protocol"] == "NeighborWatchRB-2vote" and r["byzantine_fraction"] == worst
    )
    assert two_vote["correct_%"] >= plain["correct_%"] - 10.0


def test_fig6_lying_multipath(benchmark, bench_executor):
    spec = LyingSpec.small_multipath()
    rows = run_once(benchmark, run_lying, spec, executor=bench_executor)
    attach_rows(
        benchmark,
        rows,
        title="FIG6 (MultiPathRB): correctness vs Byzantine fraction",
        columns=["protocol", "byzantine_fraction", "correct_%", "completion_%", "rounds"],
    )
    series = {r["byzantine_fraction"]: r for r in rows}
    # Below the tuned tolerance the voting rule keeps authenticity intact.
    assert series[0.0]["correct_%"] >= 99.9
    assert series[min(f for f in series if f > 0)]["correct_%"] >= 90.0
    # Far beyond the threshold correctness may degrade (steep drop-off).
    assert series[max(series)]["correct_%"] <= 100.0
