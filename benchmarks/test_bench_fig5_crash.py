"""Benchmark FIG5 — crash resilience (Figure 5).

Regenerates the "percentage of devices that complete the protocol vs density
of active devices" series for NeighborWatchRB, its 2-voting variant and
MultiPathRB, on a scaled-down map.  Expected shape (as in the paper): every
protocol improves with density; NeighborWatchRB needs the least density,
MultiPathRB the most; crashes never cause incorrect deliveries.
"""

from __future__ import annotations

from conftest import attach_rows, run_once

from repro.experiments import CrashResilienceSpec, run_crash_resilience


def test_fig5_crash_resilience(benchmark, bench_executor):
    spec = CrashResilienceSpec.small()
    rows = run_once(benchmark, run_crash_resilience, spec, executor=bench_executor)
    attach_rows(
        benchmark,
        rows,
        title="FIG5: completion vs active-device density",
        columns=["protocol", "density", "completion_%", "correct_%", "rounds"],
    )

    by_key = {(r["protocol"], r["density"]) for r in rows}
    assert len(by_key) == len(spec.protocols) * len(spec.densities)
    # Crashes never violate authenticity.
    assert all(r["correct_%"] >= 99.9 for r in rows)
    for label, _proto, _t in spec.protocols:
        series = sorted(
            (r for r in rows if r["protocol"] == label), key=lambda r: r["density"]
        )
        # Completion improves (weakly, up to sampling noise) with density and is
        # high at the densest point for the NeighborWatch variants.
        assert series[-1]["completion_%"] >= series[0]["completion_%"] - 10.0
        if "NeighborWatch" in label:
            assert series[-1]["completion_%"] > 85.0
