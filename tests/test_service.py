"""Tests for the distributed sweep service: queue, backend, workers, front end.

The hard contract under test is the one the whole fabric inherits from the
supervision envelope: a queue-backed sweep with any number of worker
processes — including workers killed mid-job, whose leases expire and whose
jobs requeue — produces records byte-identical to the serial sweep, and
overlapping submits never dispatch duplicate work.
"""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.driver import build_sweep_tasks, resolve_context
from repro.experiments.factories import RandomLiarFactory, UniformDeploymentFactory
from repro.experiments.spec import ExperimentSpec
from repro.registry import STORE_BACKENDS
from repro.service.backend import QueueBackend
from repro.service.frontend import submit
from repro.service.queue import EnqueueOutcome, QueueError, WorkQueue
from repro.service.worker import run_claimed_job, worker_loop
from repro.sim.config import ScenarioConfig
from repro.sim.runner import SweepExecutor, SweepTask
from repro.store import CachingSweepExecutor, SharedResultStore

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def small_task(repetitions: int = 2, *, label: str = "service-small", base_seed: int = 23) -> SweepTask:
    return SweepTask(
        label=label,
        deployment_factory=UniformDeploymentFactory(30, 5.0, 5.0),
        config=ScenarioConfig(protocol="neighborwatch", radius=3.0, message_length=2),
        fault_factory=RandomLiarFactory(1),
        repetitions=repetitions,
        base_seed=base_seed,
    )


def records(results) -> list[bytes]:
    return [
        json.dumps(result.to_record(), sort_keys=True).encode("utf8") for result in results
    ]


def tiny_spec() -> ExperimentSpec:
    """A 2-task x 2-repetition sweep spec — 4 fingerprinted jobs, seconds to run."""
    return ExperimentSpec.from_dict(
        {
            "name": "SVC-TINY",
            "title": "tiny service sweep",
            "driver": "sweep",
            "rows": "default",
            "label": "radius={radius}",
            "params": {
                "num_nodes": 25,
                "radii": [2.5, 3.0],
                "repetitions": 2,
                "base_seed": 11,
            },
            "axes": [{"name": "radius", "values": "$radii"}],
            "scenario": {"protocol": "neighborwatch", "radius": "$radius", "message_length": 2},
            "deployment": {"kind": "uniform", "num_nodes": "$num_nodes", "width": 6.0, "height": 6.0},
            "extra": {"radius": "$radius"},
        }
    )


def worker_env(**extra: str) -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC_DIR if not existing else os.pathsep.join((SRC_DIR, existing))
    env.update(extra)
    return env


def start_worker(queue_dir, worker_id, *, idle_exit=None, hold=0.0):
    command = [
        sys.executable, "-m", "repro.service", "worker",
        "--queue", str(queue_dir), "--worker-id", worker_id, "--poll", "0.05",
    ]
    if idle_exit is not None:
        command += ["--idle-exit", str(idle_exit)]
    extra = {"REPRO_SERVICE_HOLD": str(hold)} if hold else {}
    return subprocess.Popen(command, env=worker_env(**extra), stderr=subprocess.DEVNULL)


# -- queue mechanics ----------------------------------------------------------------------
class TestWorkQueue:
    def test_open_without_metadata_is_a_clear_error(self, tmp_path):
        (tmp_path / "not-a-queue").mkdir()
        with pytest.raises(QueueError, match="not a work queue"):
            WorkQueue(tmp_path / "not-a-queue")

    def test_ensure_records_store_binding_and_reopens(self, tmp_path):
        queue = WorkQueue.ensure(tmp_path / "q", lease_seconds=5.0)
        assert queue.lease_seconds == 5.0
        assert queue.store_backend == "shared"
        reopened = WorkQueue(tmp_path / "q")
        assert reopened.store_dir == queue.store_dir
        assert isinstance(reopened.open_store(), SharedResultStore)

    def test_enqueue_deduplicates_by_fingerprint(self, tmp_path):
        queue = WorkQueue.ensure(tmp_path / "q")
        task = small_task()
        first = queue.enqueue(task, 0)
        second = queue.enqueue(task, 0)
        assert isinstance(first, EnqueueOutcome) and first.status == "queued"
        assert second.status == "duplicate"
        assert second.fingerprint == first.fingerprint
        assert len(queue.job_fingerprints()) == 1
        # A different repetition is a different fingerprint, hence a new job.
        assert queue.enqueue(task, 1).status == "queued"
        assert len(queue.job_fingerprints()) == 2

    def test_duplicate_enqueue_subscribes_the_second_group(self, tmp_path):
        queue = WorkQueue.ensure(tmp_path / "q")
        task = small_task()
        fingerprint = task.fingerprint(0)
        group_a = queue.create_group([fingerprint])
        group_b = queue.create_group([fingerprint])
        queue.enqueue(task, 0, group=group_a)
        queue.enqueue(task, 0, group=group_b)
        _payload, groups = queue.read_job(fingerprint)
        assert set(groups) == {group_a, group_b}
        assert [event["event"] for event in queue.events(group_b)] == ["deduped"]

    def test_claim_is_exclusive_and_complete_releases(self, tmp_path):
        queue = WorkQueue.ensure(tmp_path / "q")
        task = small_task()
        queue.enqueue(task, 0)
        job = queue.claim_next("w1")
        assert job is not None and job.worker_id == "w1"
        assert queue.claim_next("w2") is None  # only job is claimed
        queue.complete(job, status="ok")
        assert queue.job_state(job.fingerprint) == "done"
        assert queue.claim_next("w2") is None  # done jobs are not re-claimable

    def test_expired_lease_requeues_exactly_once(self, tmp_path):
        queue = WorkQueue.ensure(tmp_path / "q", lease_seconds=0.05)
        task = small_task()
        fingerprint = task.fingerprint(0)
        group = queue.create_group([fingerprint])
        queue.enqueue(task, 0, group=group)
        job = queue.claim_next("doomed")
        assert job is not None
        time.sleep(0.1)
        assert queue.requeue_expired() == [fingerprint]
        assert queue.requeue_expired() == []  # the steal has exactly one winner
        events = [event["event"] for event in queue.events(group)]
        assert events.count("requeued") == 1
        stolen = queue.claim_next("successor")
        assert stolen is not None and stolen.fingerprint == fingerprint

    def test_renew_extends_the_lease(self, tmp_path):
        queue = WorkQueue.ensure(tmp_path / "q", lease_seconds=0.2)
        queue.enqueue(small_task(), 0)
        job = queue.claim_next("w1")
        for _ in range(3):
            time.sleep(0.1)
            queue.renew(job)
        assert queue.requeue_expired() == []

    def test_failed_marker_is_cleared_by_reenqueue(self, tmp_path):
        queue = WorkQueue.ensure(tmp_path / "q")
        task = small_task()
        queue.enqueue(task, 0)
        job = queue.claim_next("w1")
        queue.complete(job, status="failed", kind="exception", error="boom", retryable=True)
        assert queue.job_state(job.fingerprint) == "failed"
        assert queue.enqueue(task, 0).status == "duplicate"  # job file still there
        assert queue.job_state(job.fingerprint) == "pending"  # marker cleared
        assert queue.claim_next("w2") is not None

    def test_cached_result_completes_without_running(self, tmp_path):
        queue = WorkQueue.ensure(tmp_path / "q")
        store = queue.open_store()
        task = small_task(1)
        baseline = SweepExecutor(0).run_task(task)
        store.put(task.fingerprint(0), baseline[0])
        queue.enqueue(task, 0)
        job = queue.claim_next("w1")
        started = time.perf_counter()
        assert run_claimed_job(queue, store, job) == "ok"
        assert queue.done_info(job.fingerprint).get("note") == "cached"
        assert time.perf_counter() - started < 0.5  # no simulation ran


# -- the queue executor backend -----------------------------------------------------------
class TestQueueBackend:
    def drain_in_thread(self, queue_dir, *, jobs: int) -> threading.Thread:
        thread = threading.Thread(
            target=worker_loop,
            args=(str(queue_dir),),
            kwargs={"worker_id": "inline", "poll_interval": 0.02, "max_jobs": jobs},
            daemon=True,
        )
        thread.start()
        return thread

    def test_queue_backed_sweep_matches_serial(self, tmp_path):
        task = small_task(3)
        queue = WorkQueue.ensure(tmp_path / "q", lease_seconds=5.0)
        worker = self.drain_in_thread(tmp_path / "q", jobs=3)
        backend = QueueBackend(queue, poll_interval=0.02)
        with SweepExecutor(0, backend=backend) as executor:
            results = executor.run_task(task)
        worker.join(timeout=30)
        assert not worker.is_alive()
        assert records(results) == records(SweepExecutor(0).run_task(task))
        assert executor.telemetry.attempts == 3

    def test_warm_store_dispatches_nothing(self, tmp_path):
        task = small_task(2)
        queue = WorkQueue.ensure(tmp_path / "q")
        store = queue.open_store()
        for repetition, result in enumerate(SweepExecutor(0).run_task(task)):
            store.put(task.fingerprint(repetition), result)
        backend = QueueBackend(queue, poll_interval=0.02)
        with SweepExecutor(0, backend=backend) as executor:
            results = executor.run_task(task)
        assert queue.job_fingerprints() == []  # nothing was ever enqueued
        assert records(results) == records(SweepExecutor(0).run_task(task))

    def test_worker_failure_flows_through_supervision(self, tmp_path):
        queue = WorkQueue.ensure(tmp_path / "q")
        task = small_task(1)
        fingerprint = task.fingerprint(0)

        def fail_then_serve():
            job = None
            while job is None:
                queue.requeue_expired()
                job = queue.claim_next("flaky")
                time.sleep(0.01)
            queue.complete(job, status="failed", kind="worker-crash",
                           error="synthetic crash", retryable=True)
            # The supervisor retries: the re-enqueue clears the marker, so a
            # second claim appears — serve it honestly this time.
            store = queue.open_store()
            job = None
            while job is None:
                job = queue.claim_next("flaky")
                time.sleep(0.01)
            run_claimed_job(queue, store, job)

        thread = threading.Thread(target=fail_then_serve, daemon=True)
        thread.start()
        backend = QueueBackend(queue, poll_interval=0.02)
        with SweepExecutor(0, backend=backend) as executor:
            results = executor.run_task(task)
        thread.join(timeout=30)
        assert records(results) == records(SweepExecutor(0).run_task(task))
        assert executor.telemetry.retries == 1
        assert executor.telemetry.worker_crashes == 1
        assert queue.done_info(fingerprint)["status"] == "ok"


# -- kill-a-worker drill (two real worker processes) --------------------------------------
class TestWorkerProcesses:
    def test_killed_worker_lease_expires_and_sweep_stays_byte_identical(self, tmp_path):
        spec = tiny_spec()
        context = resolve_context(spec)
        queue_dir = tmp_path / "q"
        group = submit(
            spec, context,
            queue_dir=str(queue_dir), lease_seconds=0.5,
            out=io.StringIO(), err=io.StringIO(),
        )
        queue = WorkQueue(queue_dir)
        store = queue.open_store()
        assert len(queue.job_fingerprints()) == 4

        victim = start_worker(queue_dir, "victim", hold=60.0)
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                claims = [queue.claim_info(fp) for fp in queue.job_fingerprints()]
                if any(claim and claim.get("worker") == "victim" for claim in claims):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("victim worker never claimed a job")
            healthy = start_worker(queue_dir, "healthy", idle_exit=4.0)
            time.sleep(0.2)  # both workers alive concurrently
            victim.send_signal(signal.SIGKILL)
            victim.wait()
            assert healthy.wait(timeout=120) == 0
        finally:
            if victim.poll() is None:
                victim.kill()

        states = queue.group_states(group, store=store)
        assert set(states.values()) <= {"done", "cached"}
        requeued = [e for e in queue.events(group) if e["event"] == "requeued"]
        assert len(requeued) >= 1 and requeued[0]["worker"] == "victim"

        # Byte-identity of every stored record against a plain serial sweep.
        tasks = build_sweep_tasks(spec, context)
        for task in tasks:
            serial = SweepExecutor(0).run_task(task)
            stored = [store.get(task.fingerprint(rep)) for rep in range(task.repetitions)]
            assert records(stored) == records(serial)

        # No duplicate fingerprints landed in the shared store's shards.
        fingerprints = [
            json.loads(line)["fp"]
            for shard in (Path(store.cache_dir) / "shards").glob("*.jsonl")
            for line in shard.read_text().splitlines()
            if line.strip()
        ]
        assert len(fingerprints) == len(set(fingerprints))


# -- overlapping submits ------------------------------------------------------------------
class TestConcurrentSubmits:
    def test_second_submit_dispatches_zero_duplicate_runs(self, tmp_path):
        spec = tiny_spec()
        context = resolve_context(spec)
        queue_dir = tmp_path / "q"
        devnull = io.StringIO()
        first = submit(spec, context, queue_dir=str(queue_dir), out=devnull, err=devnull)
        queue = WorkQueue(queue_dir)
        jobs_after_first = queue.job_fingerprints()
        second = submit(spec, context, queue_dir=str(queue_dir), out=devnull, err=devnull)
        assert queue.job_fingerprints() == jobs_after_first  # no new job files
        second_events = [event["event"] for event in queue.events(second)]
        assert "queued" not in second_events
        assert set(second_events) == {"deduped"}

        completed = worker_loop(
            str(queue_dir), worker_id="drain", poll_interval=0.02, max_jobs=len(jobs_after_first)
        )
        assert completed == len(jobs_after_first)
        store = queue.open_store()
        for group in (first, second):
            states = queue.group_states(group, store=store)
            assert set(states.values()) == {"done"}

        # A third submit after completion: everything answered by the store.
        third = submit(spec, context, queue_dir=str(queue_dir), out=devnull, err=devnull)
        third_events = [event["event"] for event in queue.events(third)]
        assert set(third_events) == {"cached"}

    def test_warm_rerun_through_caching_executor_is_zero_dispatch(self, tmp_path):
        task = small_task(2)
        store = SharedResultStore(tmp_path / "store")
        with CachingSweepExecutor(store) as cold:
            cold_results = cold.run_task(task)
        assert store.stats.writes == 2
        rewarmed = SharedResultStore(tmp_path / "store")
        with CachingSweepExecutor(rewarmed) as warm:
            warm_results = warm.run_task(task)
        assert rewarmed.stats.misses == 0 and rewarmed.stats.hits == 2
        assert records(warm_results) == records(cold_results)


# -- CLI surface --------------------------------------------------------------------------
class TestServiceCLI:
    def test_submit_status_watch_round_trip(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(tiny_spec().to_json())
        queue_dir = tmp_path / "q"
        assert experiments_main(
            ["submit", "--spec", str(spec_path), "--queue", str(queue_dir), "--lease", "5"]
        ) == 0
        group = capsys.readouterr().out.strip().splitlines()[-1]

        assert experiments_main(["status", "--queue", str(queue_dir), group]) == 1
        out = capsys.readouterr().out
        assert "0/4 settled" in out

        worker_loop(str(queue_dir), worker_id="drain", poll_interval=0.02, max_jobs=4)
        assert experiments_main(["status", "--queue", str(queue_dir), group]) == 0
        assert "4/4 settled" in capsys.readouterr().out

        assert experiments_main(
            ["watch", "--queue", str(queue_dir), group, "--poll", "0.05", "--timeout", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "settled" in out and "queued" in out

    def test_submit_rejects_non_sweep_drivers(self, tmp_path, capsys):
        assert experiments_main(
            ["submit", "FIG7", "--queue", str(tmp_path / "q")]
        ) == 2
        err = capsys.readouterr().err
        assert "sweep" in err and "--backend queue" in err

    def test_status_unknown_group_lists_known_groups(self, tmp_path, capsys):
        WorkQueue.ensure(tmp_path / "q")
        assert experiments_main(["status", "--queue", str(tmp_path / "q"), "nope"]) == 2
        assert "unknown group" in capsys.readouterr().err

    def test_describe_lists_executor_and_store_backends(self, capsys):
        assert experiments_main(["describe", "FIG5"]) == 0
        out = capsys.readouterr().out
        assert "executor backends: serial, process-pool, chaos, queue" in out
        assert "store backends: local, shared" in out

    def test_unknown_backends_list_candidates_on_all_paths(self, capsys):
        assert experiments_main(["run", "FIG5", "--backend", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown executor backend" in err and "queue" in err
        assert experiments_main(["run", "FIG5", "--store-backend", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown store backend" in err and "shared" in err
        assert experiments_main(
            ["submit", "FIG5", "--queue", "/tmp/unused", "--store-backend", "nope"]
        ) == 2
        assert "unknown store backend" in capsys.readouterr().err

    def test_queue_backend_without_env_is_a_usage_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_DIR", raising=False)
        assert experiments_main(["run", "FIG5", "--backend", "queue"]) == 2
        assert "REPRO_QUEUE_DIR" in capsys.readouterr().err

    def test_export_meta_surfaces_fabric_and_store_counters(self, tmp_path, capsys):
        meta_path = tmp_path / "meta.json"
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(tiny_spec().to_json())
        assert experiments_main(
            [
                "run", "--spec", str(spec_path),
                "--cache-dir", str(tmp_path / "cache"), "--store-backend", "shared",
                "--export", "json", "--export-meta", str(meta_path),
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "[fabric: attempts=4" in captured.err  # uniform summary segment
        assert "torn-lines=0" in captured.err
        meta = json.loads(meta_path.read_text())
        assert meta["fabric"]["attempts"] == 4
        assert meta["store"]["writes"] == 4
        assert meta["store"]["torn_lines"] == 0
